"""The AB(functional) target adapter — the thesis's modified translation.

A transformed functional database stores set memberships where the
Chapter III mapping put the function values, so each set kind translates
differently (the dispatch Chapter VI performs by "traversing the
functional schema"):

* **ISA sets** are implicit: a subtype record shares its supertype's
  database key, so members of an occurrence are
  ``RETRIEVE ((FILE = subtype) AND (subtype = owner-dbkey))``.
* **Single-valued function sets** (carrier = member) keep
  ``(set, owner-dbkey)`` in the domain file; CONNECT / DISCONNECT are
  UPDATEs of that keyword, exactly the thesis's member-record cases.
* **One-to-many function sets** (carrier = owner) keep
  ``(set, member-dbkey)`` in the *owner's* file, one AB record per member;
  CONNECT walks the four owner-record cases of VI.D.2.a (update the NULL,
  update every scalar-multi-valued duplicate, insert a copy, insert one
  copy per duplicate) and DISCONNECT the matching VI.E cases (null out a
  singleton, delete the duplicated records otherwise).
* **Many-to-many pairs** materialize as ``link_X`` member records of two
  sets.  Links are *virtual* on this target: a link record is synthesized
  from the owner-side keyword pair, its database key being
  ``<left-key>~<right-key>``.  STORE stages a link until CONNECTs to both
  sets supply its two owners, then the owner-side insertion runs on both
  files (both functions of the pair exist in the functional schema, so
  both files carry the relationship, as Figure 3.3's asterisks show).

ERASE performs the thesis's two auxiliary RETRIEVEs — abort if the record
owns a non-null occurrence (CODASYL) or is referenced as a function value
(DAPLEX's DESTROY rule) — before the final DELETE.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.abdl.ast import (
    DeleteRequest,
    InsertRequest,
    Modifier,
    RetrieveRequest,
    TargetItem,
    UpdateRequest,
)
from repro.abdm.predicate import Conjunction, Predicate, Query
from repro.abdm.record import FILE_ATTRIBUTE, Record
from repro.abdm.values import Value
from repro.errors import (
    ConstraintViolation,
    CurrencyError,
    SchemaError,
    TranslationError,
)
from repro.kc.controller import KernelController
from repro.kms.adapter import TargetAdapter, dedupe_by_dbkey
from repro.mapping.fun_to_abdm import ABFunctionalMapping
from repro.mapping.fun_to_net import Carrier, NetworkTransformation, SetKind, SetOrigin
from repro.mapping.overlap import OverlapTable
from repro.network.currency import CurrencyIndicatorTable

#: Separator of the two side keys inside a virtual link database key.
LINK_KEY_SEPARATOR = "~"


class FunctionalTargetAdapter(TargetAdapter):
    """Translates DML operations against an AB(functional) database."""

    # FIND ANY translations depend only on (record type, UWA values),
    # both of which are in the cache key — safe to memoize.
    caches_translations = True

    def __init__(
        self,
        transformation: NetworkTransformation,
        kc: KernelController,
    ) -> None:
        super().__init__(transformation.schema, kc)
        self.transformation = transformation
        self.functional = transformation.source
        self.mapping = ABFunctionalMapping(self.functional)
        self.overlap_table = OverlapTable(self.functional)
        #: Links stored but not yet connected to both of their sets:
        #: staged dbkey -> {set name: owner dbkey}.
        self._staged_links: dict[str, dict[str, str]] = {}
        self._staged_counter = 0

    # -- provenance helpers ------------------------------------------------------

    def origin(self, set_name: str) -> SetOrigin:
        return self.transformation.origin(set_name)

    def is_link(self, record_type: str) -> bool:
        return self.transformation.is_link_record(record_type)

    def _link_sides(self, link_name: str) -> tuple[str, str]:
        info = self.transformation.links[link_name]
        return info.first_set, info.second_set

    def split_link_key(self, link_name: str, dbkey: str) -> tuple[str, str]:
        """Split a materialized link key into its two side keys.

        The key is ``<first-side-owner>~<second-side-owner>`` where the
        sides follow the link's set order (first set's owner first).
        """
        if LINK_KEY_SEPARATOR not in dbkey:
            raise TranslationError(
                f"link record key {dbkey!r} is staged or malformed; CONNECT it to "
                f"both of its sets first"
            )
        left, _, right = dbkey.partition(LINK_KEY_SEPARATOR)
        return left, right

    def _virtual_link(self, link_name: str, first_owner: str, second_owner: str) -> Record:
        first_set, second_set = self._link_sides(link_name)
        return Record.from_pairs(
            [
                (FILE_ATTRIBUTE, link_name),
                (link_name, f"{first_owner}{LINK_KEY_SEPARATOR}{second_owner}"),
                (first_set, first_owner),
                (second_set, second_owner),
            ]
        )

    # -- retrieval -----------------------------------------------------------------

    def find_any_records(self, record_type: str, extra: Sequence[Predicate] = ()) -> list[Record]:
        if self.is_link(record_type):
            raise TranslationError(
                f"FIND ANY cannot target link record type {record_type!r}; "
                f"navigate its sets with FIND FIRST/NEXT instead"
            )
        return super().find_any_records(record_type, extra)

    def fetch_by_dbkey(self, record_type: str, dbkey: str) -> Optional[Record]:
        if self.is_link(record_type):
            if dbkey in self._staged_links:
                # A staged link has no kernel representation yet.
                record = Record.from_pairs(
                    [(FILE_ATTRIBUTE, record_type), (record_type, dbkey)]
                )
                for set_name, owner in self._staged_links[dbkey].items():
                    record.set(set_name, owner)
                return record
            first_owner, second_owner = self.split_link_key(record_type, dbkey)
            if self._link_pair_exists(record_type, first_owner, second_owner):
                return self._virtual_link(record_type, first_owner, second_owner)
            return None
        records = self.kc.retrieve(
            Query.conjunction(
                [
                    Predicate("FILE", "=", record_type),
                    Predicate(self.dbkey_attribute(record_type), "=", dbkey),
                ]
            )
        )
        return records[0] if records else None

    def _link_pair_exists(self, link_name: str, first_owner: str, second_owner: str) -> bool:
        first_set, _ = self._link_sides(link_name)
        origin = self.origin(first_set)
        domain = origin.domain_type or ""
        records = self.kc.retrieve(
            Query.conjunction(
                [
                    Predicate("FILE", "=", domain),
                    Predicate(self.dbkey_attribute(domain), "=", first_owner),
                    Predicate(first_set, "=", second_owner),
                ]
            )
        )
        return bool(records)

    def member_records(
        self,
        set_name: str,
        owner_dbkey: Optional[str],
        extra: Sequence[Predicate] = (),
    ) -> list[Record]:
        member = self.member_type(set_name)  # validates the set name first
        origin = self.origin(set_name)
        if origin.kind is SetKind.SYSTEM:
            predicates = [Predicate("FILE", "=", member), *extra]
            records = self.kc.retrieve(Query.conjunction(predicates))
            return dedupe_by_dbkey(records, self.dbkey_attribute(member))
        if owner_dbkey is None:
            raise CurrencyError(
                f"set {set_name!r} needs a current occurrence to enumerate members"
            )
        if origin.kind is SetKind.ISA:
            predicates = [
                Predicate("FILE", "=", member),
                Predicate(self.dbkey_attribute(member), "=", owner_dbkey),
                *extra,
            ]
            records = self.kc.retrieve(Query.conjunction(predicates))
            return dedupe_by_dbkey(records, self.dbkey_attribute(member))
        if origin.kind is SetKind.SINGLE_VALUED:
            # The membership keyword is in the member (domain) file.
            predicates = [
                Predicate("FILE", "=", member),
                Predicate(set_name, "=", owner_dbkey),
                *extra,
            ]
            records = self.kc.retrieve(Query.conjunction(predicates))
            return dedupe_by_dbkey(records, self.dbkey_attribute(member))
        if origin.kind is SetKind.ONE_TO_MANY:
            member_keys = self._owner_side_values(set_name, owner_dbkey)
            if not member_keys:
                return []
            # One OR-clause per member key; a DNF query retrieves them all
            # in a single auxiliary request.
            clauses = []
            key_attribute = self.dbkey_attribute(member)
            for key in member_keys:
                clauses.append(
                    Conjunction(
                        [
                            Predicate("FILE", "=", member),
                            Predicate(key_attribute, "=", key),
                            *extra,
                        ]
                    )
                )
            records = self.kc.retrieve(Query(clauses))
            unique = dedupe_by_dbkey(records, key_attribute)
            order = {key: index for index, key in enumerate(member_keys)}
            unique.sort(key=lambda r: order.get(r.get(key_attribute), len(order)))
            return unique
        if origin.kind is SetKind.MANY_TO_MANY:
            domain = origin.domain_type or ""
            predicates = [
                Predicate("FILE", "=", domain),
                Predicate(self.dbkey_attribute(domain), "=", owner_dbkey),
                Predicate(set_name, "!=", None),
            ]
            records = self.kc.retrieve(Query.conjunction(predicates))
            links: list[Record] = []
            seen: set[str] = set()
            first_set, second_set = self._link_sides(origin.link_record or "")
            for record in records:
                partner_key = record.get(set_name)
                if not isinstance(partner_key, str) or partner_key in seen:
                    continue
                seen.add(partner_key)
                if set_name == first_set:
                    link = self._virtual_link(origin.link_record or "", owner_dbkey, partner_key)
                else:
                    link = self._virtual_link(origin.link_record or "", partner_key, owner_dbkey)
                if all(p.matches(link) or p.attribute == "FILE" for p in extra):
                    links.append(link)
            return links
        raise TranslationError(f"unhandled set kind {origin.kind!r} for {set_name!r}")

    def _owner_side_values(self, set_name: str, owner_dbkey: str) -> list[str]:
        """Distinct non-null values of an owner-carried set keyword."""
        origin = self.origin(set_name)
        domain = origin.domain_type or ""
        records = self.kc.retrieve(
            Query.conjunction(
                [
                    Predicate("FILE", "=", domain),
                    Predicate(self.dbkey_attribute(domain), "=", owner_dbkey),
                ]
            )
        )
        values: list[str] = []
        for record in records:
            value = record.get(set_name)
            if isinstance(value, str) and value not in values:
                values.append(value)
        return values

    def set_memberships(self, record_type: str, record: Record) -> dict[str, Optional[str]]:
        memberships: dict[str, Optional[str]] = {}
        for set_def in self.schema.sets_with_member(record_type):
            origin = self.origin(set_def.name)
            if origin.kind is SetKind.SYSTEM:
                memberships[set_def.name] = "SYSTEM"
            elif origin.kind is SetKind.ISA:
                key = record.get(self.dbkey_attribute(record_type))
                memberships[set_def.name] = key if isinstance(key, str) else None
            elif origin.kind is SetKind.SINGLE_VALUED:
                owner = record.get(set_def.name)
                memberships[set_def.name] = owner if isinstance(owner, str) else None
            elif origin.kind is SetKind.MANY_TO_MANY and self.is_link(record_type):
                owner = record.get(set_def.name)
                memberships[set_def.name] = owner if isinstance(owner, str) else None
            # ONE_TO_MANY memberships are owner-carried: the member record
            # does not know its occurrence, so the currency stays as-is.
        return memberships

    def extract_values(self, record_type: str, record: Record) -> dict[str, Value]:
        record_def = self.record_def(record_type)
        return {
            attribute.name: record.get(attribute.name)
            for attribute in record_def.attributes
        }

    # -- STORE (VI.G) -----------------------------------------------------------------

    def store(
        self,
        record_type: str,
        template: dict[str, Value],
        cit: CurrencyIndicatorTable,
    ) -> tuple[str, Record]:
        if self.is_link(record_type):
            return self._store_link(record_type)
        if record_type in self.functional.subtypes:
            dbkey = self._subtype_store_key(record_type, cit)
        elif record_type in self.functional.entity_types:
            dbkey = self.functional.entity_types[record_type].next_key()
        else:
            raise SchemaError(f"{record_type!r} is not a record type of this database")
        self._check_duplicates(record_type, template)
        node = self.functional.entity_or_subtype(record_type)
        values = {
            function.name: template[function.name]
            for function in node.functions
            if function.name in template and not function.is_entity_valued
        }
        records = self.mapping.build_records(record_type, dbkey, values)
        for record in records:
            self.kc.execute(InsertRequest(record))
        return dbkey, records[0]

    def _store_link(self, link_name: str) -> tuple[str, Record]:
        self._staged_counter += 1
        dbkey = f"{link_name}${self._staged_counter}"
        self._staged_links[dbkey] = {}
        record = Record.from_pairs([(FILE_ATTRIBUTE, link_name), (link_name, dbkey)])
        return dbkey, record

    def _subtype_store_key(self, record_type: str, cit: CurrencyIndicatorTable) -> str:
        """A subtype record's key is its supertype occurrence's key.

        STORE into a subtype auto-inserts into every ISA set (AUTOMATIC
        insertion, selection BY APPLICATION), so each ISA set must have a
        current occurrence and — with several supertypes — they must agree
        on the entity being extended.
        """
        subtype = self.functional.subtypes[record_type]
        keys: list[str] = []
        for supertype in subtype.supertypes:
            isa_set = f"{supertype}_{record_type}"
            keys.append(cit.require_set_owner(isa_set))
        if len(set(keys)) != 1:
            raise ConstraintViolation(
                f"STORE {record_type}: the current occurrences of its ISA sets "
                f"identify different entities ({', '.join(sorted(set(keys)))})"
            )
        dbkey = keys[0]
        # The entity may not already be stored in this subtype.
        if self.fetch_by_dbkey(record_type, dbkey) is not None:
            raise ConstraintViolation(
                f"STORE {record_type}: entity {dbkey!r} is already a {record_type}"
            )
        # Overlap constraints (VI.G): the entity's existing terminal
        # subtypes must all overlap with the target.
        if self.functional.is_terminal(record_type):
            existing = []
            for terminal in self.functional.terminal_subtypes():
                if terminal.name == record_type:
                    continue
                found = self.kc.execute(
                    RetrieveRequest(
                        Query.conjunction(
                            [
                                Predicate("FILE", "=", terminal.name),
                                Predicate(terminal.name, "=", dbkey),
                            ]
                        ),
                        (TargetItem(terminal.name),),
                    )
                ).records
                if found:
                    existing.append(terminal.name)
            self.overlap_table.check_store(record_type, existing)
        return dbkey

    def _check_duplicates(self, record_type: str, template: dict[str, Value]) -> None:
        """One auxiliary RETRIEVE per uniqueness constraint on the type."""
        for constraint in self.functional.uniqueness:
            if constraint.within != record_type:
                continue
            predicates = [Predicate("FILE", "=", record_type)]
            missing = False
            for item in constraint.functions:
                if item not in template or template[item] is None:
                    missing = True
                    break
                predicates.append(Predicate(item, "=", template[item]))
            if missing:
                continue
            duplicates = self.kc.execute(
                RetrieveRequest(Query.conjunction(predicates), (TargetItem(record_type),))
            ).records
            if duplicates:
                raise ConstraintViolation(
                    f"STORE {record_type}: DUPLICATES ARE NOT ALLOWED for "
                    f"{', '.join(constraint.functions)}"
                )

    # -- CONNECT (VI.D) -----------------------------------------------------------------

    def connect(
        self,
        set_name: str,
        member_dbkey: str,
        cit: CurrencyIndicatorTable,
    ) -> Optional[str]:
        origin = self.origin(set_name)
        if origin.kind in (SetKind.SYSTEM, SetKind.ISA):
            # VI.D.1: automatic-insertion sets cannot be used in CONNECT.
            raise ConstraintViolation(
                f"CONNECT: set {set_name!r} has AUTOMATIC insertion and cannot be "
                f"connected manually"
            )
        owner_dbkey = cit.require_set_owner(set_name)
        if origin.kind is SetKind.SINGLE_VALUED:
            # Information in the member record (VI.D.2.b): update every AB
            # record of the member with the new owner key.  An
            # already-connected member must be DISCONNECTed first (the
            # thesis's own modification recipe: disconnect, modify,
            # reconnect).
            member = self.member_type(set_name)
            current = self.fetch_by_dbkey(member, member_dbkey)
            if current is not None and current.get(set_name) is not None:
                raise ConstraintViolation(
                    f"CONNECT: record {member_dbkey!r} is already a member of "
                    f"an occurrence of {set_name!r}; DISCONNECT it first"
                )
            self.kc.execute(
                UpdateRequest(
                    Query.conjunction(
                        [
                            Predicate("FILE", "=", member),
                            Predicate(self.dbkey_attribute(member), "=", member_dbkey),
                        ]
                    ),
                    Modifier(set_name, value=owner_dbkey),
                )
            )
            return None
        if origin.kind is SetKind.ONE_TO_MANY:
            # No two-occurrence exclusivity here: the set realizes a
            # multi-valued *function*, and the functional model freely
            # lets two entities' value sets share a member (the network
            # one-to-many shape is the transformation's approximation, V.A).
            self._owner_side_add(set_name, owner_dbkey, member_dbkey)
            return None
        if origin.kind is SetKind.MANY_TO_MANY:
            return self._connect_link(set_name, member_dbkey, owner_dbkey, cit)
        raise TranslationError(f"unhandled set kind for CONNECT on {set_name!r}")

    def _connect_link(
        self,
        set_name: str,
        link_dbkey: str,
        owner_dbkey: str,
        cit: CurrencyIndicatorTable,
    ) -> Optional[str]:
        staged = self._staged_links.get(link_dbkey)
        if staged is None:
            raise ConstraintViolation(
                f"CONNECT: link record {link_dbkey!r} is already materialized; "
                f"DISCONNECT it before reconnecting"
            )
        origin = self.origin(set_name)
        link_name = origin.link_record or ""
        staged[set_name] = owner_dbkey
        first_set, second_set = self._link_sides(link_name)
        if first_set not in staged or second_set not in staged:
            return None  # waiting for the other side
        first_owner = staged[first_set]
        second_owner = staged[second_set]
        # Materialize the pair on both sides: each side's owner file gains
        # the partner's key under its own function attribute.
        self._owner_side_add(first_set, first_owner, second_owner)
        self._owner_side_add(second_set, second_owner, first_owner)
        del self._staged_links[link_dbkey]
        return f"{first_owner}{LINK_KEY_SEPARATOR}{second_owner}"

    def _owner_side_add(self, set_name: str, owner_dbkey: str, value_key: str) -> None:
        """The four owner-record CONNECT cases of VI.D.2.a."""
        origin = self.origin(set_name)
        domain = origin.domain_type or ""
        key_attribute = self.dbkey_attribute(domain)
        group = self.kc.retrieve(
            Query.conjunction(
                [
                    Predicate("FILE", "=", domain),
                    Predicate(key_attribute, "=", owner_dbkey),
                ]
            )
        )
        if not group:
            raise SchemaError(
                f"CONNECT: no {domain!r} record with database key {owner_dbkey!r}"
            )
        existing = [
            v for v in (r.get(set_name) for r in group) if isinstance(v, str)
        ]
        if value_key in existing:
            return  # already connected
        if not existing:
            # Cases 1 and 2: the function set is null — replace the NULL in
            # every AB record of the owner (one UPDATE covers both cases;
            # scalar multi-valued duplicates all match the query).
            self.kc.execute(
                UpdateRequest(
                    Query.conjunction(
                        [
                            Predicate("FILE", "=", domain),
                            Predicate(key_attribute, "=", owner_dbkey),
                        ]
                    ),
                    Modifier(set_name, value=value_key),
                )
            )
            return
        # Cases 3 and 4: the set already has members — insert one duplicate
        # record per distinct pattern of the *other* keywords, carrying the
        # new member key in the set attribute.
        seen_patterns: set[tuple[tuple[str, Value], ...]] = set()
        for record in group:
            pattern = tuple(
                (attribute, value)
                for attribute, value in record.pairs()
                if attribute != set_name
            )
            if pattern in seen_patterns:
                continue
            seen_patterns.add(pattern)
            copy = Record.from_pairs(record.pairs())
            copy.set(set_name, value_key)
            self.kc.execute(InsertRequest(copy))

    # -- DISCONNECT (VI.E) ------------------------------------------------------------------

    def disconnect(
        self,
        set_name: str,
        member_dbkey: str,
        cit: CurrencyIndicatorTable,
    ) -> None:
        origin = self.origin(set_name)
        if origin.kind in (SetKind.SYSTEM, SetKind.ISA):
            raise ConstraintViolation(
                f"DISCONNECT: set {set_name!r} has FIXED retention and cannot be "
                f"disconnected"
            )
        if origin.kind is SetKind.SINGLE_VALUED:
            owner_dbkey = cit.require_set_owner(set_name)
            member = self.member_type(set_name)
            # The member record is, by the schema transformation, in a
            # singleton function set: null the value out (VI.E last case).
            self.kc.execute(
                UpdateRequest(
                    Query.conjunction(
                        [
                            Predicate("FILE", "=", member),
                            Predicate(self.dbkey_attribute(member), "=", member_dbkey),
                            Predicate(set_name, "=", owner_dbkey),
                        ]
                    ),
                    Modifier(set_name, value=None),
                )
            )
            return
        if origin.kind is SetKind.ONE_TO_MANY:
            owner_dbkey = cit.require_set_owner(set_name)
            self._owner_side_remove(set_name, owner_dbkey, member_dbkey)
            return
        if origin.kind is SetKind.MANY_TO_MANY:
            link_name = origin.link_record or ""
            first_set, second_set = self._link_sides(link_name)
            first_owner, second_owner = self.split_link_key(link_name, member_dbkey)
            # Dropping a link from either of its sets dissolves the pair:
            # both owner-side keywords go.
            self._owner_side_remove(first_set, first_owner, second_owner)
            self._owner_side_remove(second_set, second_owner, first_owner)
            return
        raise TranslationError(f"unhandled set kind for DISCONNECT on {set_name!r}")

    def _owner_side_remove(self, set_name: str, owner_dbkey: str, value_key: str) -> None:
        """The owner-record DISCONNECT cases of VI.E."""
        origin = self.origin(set_name)
        domain = origin.domain_type or ""
        key_attribute = self.dbkey_attribute(domain)
        existing = self._owner_side_values(set_name, owner_dbkey)
        if value_key not in existing:
            raise ConstraintViolation(
                f"DISCONNECT: {value_key!r} is not a member of the current "
                f"occurrence of set {set_name!r}"
            )
        query = Query.conjunction(
            [
                Predicate("FILE", "=", domain),
                Predicate(key_attribute, "=", owner_dbkey),
                Predicate(set_name, "=", value_key),
            ]
        )
        if len(existing) > 1:
            # Multiple members: delete the duplicated AB records that carry
            # this member's key.
            self.kc.execute(DeleteRequest(query))
        else:
            # Singleton: null the value out, keeping the record.
            self.kc.execute(UpdateRequest(query, Modifier(set_name, value=None)))

    # -- MODIFY (VI.F) -------------------------------------------------------------------------

    def modify(self, record_type: str, dbkey: str, item: str, value: Value) -> None:
        self.check_item(record_type, item)
        self.kc.execute(
            UpdateRequest(
                Query.conjunction(
                    [
                        Predicate("FILE", "=", record_type),
                        Predicate(self.dbkey_attribute(record_type), "=", dbkey),
                    ]
                ),
                Modifier(item, value=value),
            )
        )

    # -- ERASE (VI.H) --------------------------------------------------------------------------

    def erase(self, record_type: str, dbkey: str) -> None:
        if self.is_link(record_type):
            # Erasing a link dissolves the many-to-many pair.
            if dbkey in self._staged_links:
                del self._staged_links[dbkey]
                return
            first_set, second_set = self._link_sides(record_type)
            first_owner, second_owner = self.split_link_key(record_type, dbkey)
            self._owner_side_remove(first_set, first_owner, second_owner)
            self._owner_side_remove(second_set, second_owner, first_owner)
            return
        # First auxiliary RETRIEVE family: the CODASYL constraint — the
        # record may not own a non-null set occurrence.
        for set_def in self.schema.sets_with_owner(record_type):
            origin = self.origin(set_def.name)
            if origin.kind is SetKind.ISA:
                found = self.kc.execute(
                    RetrieveRequest(
                        Query.conjunction(
                            [
                                Predicate("FILE", "=", set_def.member_name),
                                Predicate(set_def.member_name, "=", dbkey),
                            ]
                        ),
                        (TargetItem(set_def.member_name),),
                    )
                ).records
            elif origin.carrier is Carrier.MEMBER:
                found = self.kc.execute(
                    RetrieveRequest(
                        Query.conjunction(
                            [
                                Predicate("FILE", "=", set_def.member_name),
                                Predicate(set_def.name, "=", dbkey),
                            ]
                        ),
                        (TargetItem(set_def.name),),
                    )
                ).records
            else:  # owner-carried: the keyword sits in this record's file
                found = self.kc.execute(
                    RetrieveRequest(
                        Query.conjunction(
                            [
                                Predicate("FILE", "=", record_type),
                                Predicate(self.dbkey_attribute(record_type), "=", dbkey),
                                Predicate(set_def.name, "!=", None),
                            ]
                        ),
                        (TargetItem(set_def.name),),
                    )
                ).records
            if found:
                raise ConstraintViolation(
                    f"ERASE {record_type}: record owns a non-null occurrence of "
                    f"set {set_def.name!r}"
                )
        # Second auxiliary RETRIEVE family: the DAPLEX constraint — the
        # entity may not be referenced as a function value.
        for set_def in self.schema.sets_with_member(record_type):
            origin = self.origin(set_def.name)
            if origin.carrier is not Carrier.OWNER:
                continue
            domain = origin.domain_type or ""
            found = self.kc.execute(
                RetrieveRequest(
                    Query.conjunction(
                        [
                            Predicate("FILE", "=", domain),
                            Predicate(set_def.name, "=", dbkey),
                        ]
                    ),
                    (TargetItem(set_def.name),),
                )
            ).records
            if found:
                raise ConstraintViolation(
                    f"ERASE {record_type}: entity is referenced by function "
                    f"{set_def.name!r} (DAPLEX DESTROY constraint)"
                )
        self.kc.execute(
            DeleteRequest(
                Query.conjunction(
                    [
                        Predicate("FILE", "=", record_type),
                        Predicate(self.dbkey_attribute(record_type), "=", dbkey),
                    ]
                )
            )
        )
