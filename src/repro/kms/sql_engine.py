"""The SQL language interface: statement translation to ABDL.

The relational interface completes MLDS's multi-lingual promise: SQL
statements over an AB(relational) database translate almost one-to-one
into kernel requests —

* ``INSERT`` → ABDL INSERT (after a primary-key uniqueness probe);
* single-table ``SELECT`` → one RETRIEVE, with WHERE compiled into the
  DNF query, projections into the target list, aggregates and GROUP BY
  into the target/BY clauses;
* two-table equi-join ``SELECT`` → ABDL **RETRIEVE-COMMON**, the fifth
  kernel operation the CODASYL translation never needed;
* ``UPDATE`` → one ABDL UPDATE per SET assignment (the same repetition
  rule the CODASYL MODIFY translation follows);
* ``DELETE`` → ABDL DELETE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.abdl.ast import (
    ALL_ATTRIBUTES,
    DeleteRequest,
    InsertRequest,
    Modifier,
    RetrieveCommonRequest,
    RetrieveRequest,
    TargetItem,
    UpdateRequest,
)
from repro.abdm.predicate import Conjunction, Predicate, Query
from repro.abdm.values import Value
from repro.errors import ConstraintViolation, SchemaError, TranslationError
from repro.kc.controller import KernelController
from repro.mapping.rel_to_abdm import ABRelationalMapping
from repro.qc.lru import MISSING
from repro.qc import runtime as qc_runtime
from repro.relational import sql
from repro.relational.model import RelationalSchema


@dataclass
class _SelectPlan:
    """A compiled single-table SELECT: the kernel request plus the row
    shape, pure in (statement text, schema) — the schema is fixed for an
    engine's lifetime, so the plan caches on exact statement text."""

    table: str
    request: RetrieveRequest
    columns: list[str]


@dataclass
class SqlResult:
    """Outcome of one SQL statement."""

    statement: str
    columns: list[str] = field(default_factory=list)
    rows: list[dict[str, Value]] = field(default_factory=list)
    touched: int = 0
    requests: list[str] = field(default_factory=list)


class SqlEngine:
    """Executes parsed SQL against one AB(relational) database."""

    def __init__(
        self,
        schema: RelationalSchema,
        kc: KernelController,
        mapping: Optional[ABRelationalMapping] = None,
    ) -> None:
        self.schema = schema
        self.kc = kc
        self.mapping = mapping or ABRelationalMapping(schema)
        # Statement→plan translation cache (single-table SELECTs only;
        # joins and mutations have side conditions and bypass).  Dies
        # with the engine, i.e. with its schema.
        self._plans = qc_runtime.new_cache("translate", prefix="qc.translate")
        if kc.obs.enabled:
            self._plans.bind_metrics(kc.obs.metrics)

    def invalidate_translations(self) -> None:
        """Drop cached SELECT plans (schema change)."""
        self._plans.clear()

    def translation_cache_snapshot(self) -> dict[str, object]:
        return self._plans.snapshot()

    # -- public API --------------------------------------------------------------

    def execute(self, statement: Union[str, sql.SqlStatement]) -> SqlResult:
        source: Optional[str] = None
        if isinstance(statement, str):
            source = statement
            statement = sql.parse_statement(statement)
        with self.kc.obs.tracer.span("kms.translate") as span:
            log_start = len(self.kc.request_log)
            if isinstance(statement, sql.Select):
                result = self._select(statement, source)
            elif isinstance(statement, sql.Insert):
                result = self._insert(statement)
            elif isinstance(statement, sql.Update):
                result = self._update(statement)
            elif isinstance(statement, sql.Delete):
                result = self._delete(statement)
            else:
                raise TranslationError(f"unknown statement {type(statement).__name__}")
            result.requests = self.kc.request_log[log_start:]
            if span:
                span.record(
                    language="sql",
                    statement=type(statement).__name__,
                    requests=len(result.requests),
                )
        return result

    def run(self, text: str) -> list[SqlResult]:
        return [self.execute(s) for s in sql.parse_script(text)]

    # -- WHERE compilation ----------------------------------------------------------

    def _compile_where(
        self,
        table: str,
        where: Optional[sql.Where],
    ) -> Query:
        relation = self.schema.relation(table)
        clauses = []
        for clause in where.clauses if where else ((),):
            predicates = [Predicate("FILE", "=", table)]
            for comparison in clause:
                if comparison.is_join:
                    raise TranslationError(
                        "column-to-column comparisons need a two-table FROM"
                    )
                self._check_ref(comparison.left, (table,))
                relation.require_column(comparison.left.column)
                predicates.append(
                    Predicate(comparison.left.column, comparison.operator, comparison.value)
                )
            clauses.append(Conjunction(predicates))
        return Query(clauses)

    def _check_ref(self, ref: sql.ColumnRef, tables: tuple[str, ...]) -> str:
        """Resolve a column reference to its table."""
        if ref.table is not None:
            if ref.table not in tables:
                raise SchemaError(f"{ref.render()} names a table not in FROM")
            self.schema.relation(ref.table).require_column(ref.column)
            return ref.table
        owners = [t for t in tables if self.schema.relation(t).column(ref.column)]
        if not owners:
            raise SchemaError(f"no FROM table has a column {ref.column!r}")
        if len(owners) > 1:
            raise SchemaError(f"column {ref.column!r} is ambiguous; qualify it")
        return owners[0]

    # -- SELECT -------------------------------------------------------------------------

    def _select(self, statement: sql.Select, source: Optional[str] = None) -> SqlResult:
        if len(statement.tables) == 2:
            return self._select_join(statement)
        plan = self._select_plan(statement, source)
        records = self.kc.execute(plan.request).records
        result = SqlResult(plan.table, columns=list(plan.columns))
        for record in records:
            result.rows.append({c: record.get(self._record_key(c)) for c in result.columns})
        return result

    def _select_plan(self, statement: sql.Select, source: Optional[str]) -> _SelectPlan:
        """Build (or recall) the plan for a single-table SELECT.

        Only statements that arrived as text can cache — the source text
        is the key; pre-parsed AST callers pay the (cheap) rebuild.
        """
        use_cache = (
            source is not None
            and qc_runtime.config.translation_cache_enabled
            and self._plans.enabled
        )
        if use_cache:
            cached = self._plans.get(source)
            if cached is not MISSING:
                return cached
        table = statement.tables[0]
        relation = self.schema.relation(table)
        query = self._compile_where(table, statement.where)
        target: list[TargetItem] = []
        columns: list[str] = []
        group_column = None
        if statement.group_by is not None:
            self._check_ref(statement.group_by, statement.tables)
            group_column = statement.group_by.column
        for item in statement.items:
            if item.star and not item.aggregate:
                target.append(ALL_ATTRIBUTES)
                columns.extend(relation.column_names)
            elif item.aggregate:
                attribute = "*" if item.star else item.ref.column
                if not item.star:
                    self._check_ref(item.ref, statement.tables)
                target.append(TargetItem(attribute, item.aggregate))
                columns.append(item.render())
            else:
                self._check_ref(item.ref, statement.tables)
                target.append(TargetItem(item.ref.column))
                columns.append(item.ref.column)
        columns = self._dedupe(columns)
        if group_column and group_column not in columns:
            columns.insert(0, group_column)
        plan = _SelectPlan(table, RetrieveRequest(query, target, by=group_column), columns)
        if use_cache:
            self._plans.put(source, plan)
        return plan

    @staticmethod
    def _record_key(column: str) -> str:
        return column  # aggregate columns already render as AVG(x) etc.

    @staticmethod
    def _dedupe(names: list[str]) -> list[str]:
        seen: list[str] = []
        for name in names:
            if name not in seen:
                seen.append(name)
        return seen

    def _select_join(self, statement: sql.Select) -> SqlResult:
        left_table, right_table = statement.tables
        if statement.group_by is not None:
            raise TranslationError("GROUP BY is not supported on joins in this subset")
        join: Optional[sql.SqlComparison] = None
        residual: list[sql.SqlComparison] = []
        if statement.where is None or len(statement.where.clauses) != 1:
            raise TranslationError(
                "a two-table SELECT needs a conjunctive WHERE with one "
                "cross-table equality"
            )
        for comparison in statement.where.clauses[0]:
            if comparison.is_join:
                if join is not None:
                    raise TranslationError("only one join equality is supported")
                if comparison.operator != "=":
                    raise TranslationError("joins must be equalities")
                join = comparison
            else:
                residual.append(comparison)
        if join is None:
            raise TranslationError("a two-table SELECT needs a join equality")
        left_col_table = self._check_ref(join.left, statement.tables)
        right_col_table = self._check_ref(join.right, statement.tables)
        if {left_col_table, right_col_table} != {left_table, right_table}:
            raise TranslationError("the join equality must span both tables")
        if left_col_table != left_table:
            join = sql.SqlComparison(join.right, "=", right=join.left)
        # Residual predicates split by table into the two sub-queries.
        left_predicates = [Predicate("FILE", "=", left_table)]
        right_predicates = [Predicate("FILE", "=", right_table)]
        for comparison in residual:
            owner = self._check_ref(comparison.left, statement.tables)
            predicate = Predicate(
                comparison.left.column, comparison.operator, comparison.value
            )
            (left_predicates if owner == left_table else right_predicates).append(predicate)
        request = RetrieveCommonRequest(
            Query.conjunction(left_predicates),
            join.left.column,
            Query.conjunction(right_predicates),
            join.right.column,  # type: ignore[union-attr]
        )
        records = self.kc.execute(request).raw_records
        columns: list[str] = []
        refs: list[tuple[str, str]] = []  # (record attribute, owning table)
        for item in statement.items:
            if item.aggregate:
                raise TranslationError("aggregates over joins are not in this subset")
            if item.star:
                for table in statement.tables:
                    for name in self.schema.relation(table).column_names:
                        refs.append((name, table))
                        columns.append(f"{table}.{name}")
                continue
            owner = self._check_ref(item.ref, statement.tables)
            refs.append((item.ref.column, owner))
            columns.append(item.render())
        result = SqlResult(f"{left_table}⋈{right_table}", columns=columns)
        for record in records:
            row: dict[str, Value] = {}
            for (attribute, owner), column in zip(refs, columns):
                # RETRIEVE-COMMON prefixes right-side collisions.
                value = record.get(attribute)
                prefixed = record.get(f"{owner}.{attribute}")
                if owner == right_table and prefixed is not None:
                    value = prefixed
                row[column] = value
            result.rows.append(row)
        return result

    # -- INSERT -----------------------------------------------------------------------

    def _insert(self, statement: sql.Insert) -> SqlResult:
        relation = self.schema.relation(statement.table)
        columns = list(statement.columns) or relation.column_names
        if len(columns) != len(statement.values):
            raise SchemaError(
                f"INSERT INTO {statement.table}: {len(columns)} columns but "
                f"{len(statement.values)} values"
            )
        values = dict(zip(columns, statement.values))
        if relation.primary_key:
            predicates = [Predicate("FILE", "=", statement.table)]
            complete = True
            for key_column in relation.primary_key:
                if values.get(key_column) is None:
                    complete = False
                    break
                predicates.append(Predicate(key_column, "=", values[key_column]))
            if complete and self.kc.retrieve(Query.conjunction(predicates)):
                raise ConstraintViolation(
                    f"INSERT INTO {statement.table}: duplicate primary key "
                    f"({', '.join(relation.primary_key)})"
                )
        dbkey = self.mapping.mint_key(statement.table)
        record = self.mapping.build_record(statement.table, dbkey, values)
        self.kc.execute(InsertRequest(record))
        return SqlResult(statement.table, touched=1)

    # -- UPDATE / DELETE ------------------------------------------------------------------

    def _update(self, statement: sql.Update) -> SqlResult:
        relation = self.schema.relation(statement.table)
        query = self._compile_where(statement.table, statement.where)
        touched = 0
        for column, value in statement.assignments:
            column_def = relation.require_column(column)
            if not column_def.type.accepts(value):
                raise SchemaError(
                    f"column {statement.table}.{column} rejects {value!r}"
                )
            outcome = self.kc.execute(
                UpdateRequest(query, Modifier(column, value=value))
            )
            touched = max(touched, outcome.count)
        return SqlResult(statement.table, touched=touched)

    def _delete(self, statement: sql.Delete) -> SqlResult:
        query = self._compile_where(statement.table, statement.where)
        outcome = self.kc.execute(DeleteRequest(query))
        return SqlResult(statement.table, touched=outcome.count)
