"""KMS — the Kernel Mapping Subsystem (CODASYL-DML → ABDL translation).

The package splits Chapter VI's translation in two: the
statement-semantics engine (:class:`~repro.kms.engine.DMLEngine`) that
owns the currency table, user work area and request buffers, and a
:class:`~repro.kms.adapter.TargetAdapter` per kernel-database layout —
:class:`~repro.kms.network_adapter.NetworkTargetAdapter` for AB(network)
databases (the original Emdi translation) and
:class:`~repro.kms.functional_adapter.FunctionalTargetAdapter` for
AB(functional) databases (the thesis's modified translation).
"""

from repro.kms.adapter import TargetAdapter, dedupe_by_dbkey
from repro.kms.engine import DMLEngine
from repro.kms.functional_adapter import FunctionalTargetAdapter, LINK_KEY_SEPARATOR
from repro.kms.network_adapter import NetworkTargetAdapter
from repro.kms.results import StatementResult, Status

__all__ = [
    "DMLEngine",
    "FunctionalTargetAdapter",
    "LINK_KEY_SEPARATOR",
    "NetworkTargetAdapter",
    "StatementResult",
    "Status",
    "TargetAdapter",
    "dedupe_by_dbkey",
]
