"""The DAPLEX language interface: DML execution over AB(functional).

This is the functional side of MLDS (Figure 1.2): DAPLEX statements are
translated into ABDL requests against the same AB(functional) database
the CODASYL-DML interface manipulates — so the two user languages
genuinely share one kernel database, which the integration tests verify
by updating through one interface and observing through the other.

Translation outline:

* ``FOR EACH t SUCH THAT ...`` — comparisons over functions *declared on
  the iterated type* compile into the RETRIEVE's query; comparisons over
  inherited functions or nested paths are evaluated per candidate with
  auxiliary retrieves (value inheritance walks the supertype chain via
  the shared database key);
* ``PRINT`` projects paths the same way, one output row per entity;
* ``LET fn(x) = v`` becomes ``UPDATE ((FILE = type) AND (type = key))
  (fn = v)`` against the declaring type's file;
* ``FOR A NEW`` mints a key (base entity) or extends a supertype entity
  selected by the OF clause (subtype), then INSERTs the built records;
* ``DESTROY`` enforces the DAPLEX reference constraint (abort when the
  entity is a function value anywhere) and deletes the entity's records
  from the named type and every subtype below it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.abdl.ast import DeleteRequest, InsertRequest, Modifier, UpdateRequest
from repro.abdm.predicate import Predicate, Query
from repro.abdm.values import Value, compare
from repro.errors import ConstraintViolation, ExecutionError, SchemaError, TranslationError
from repro.functional import daplex_dml as dml
from repro.functional.model import Function, FunctionalSchema
from repro.kc.controller import KernelController
from repro.mapping.fun_to_abdm import ABFunctionalMapping
from repro.qc.lru import MISSING
from repro.qc import runtime as qc_runtime


@dataclass
class DaplexResult:
    """Outcome of one DAPLEX statement."""

    statement: str
    rows: list[dict[str, Value]] = field(default_factory=list)
    touched: int = 0  # entities created / updated / destroyed
    requests: list[str] = field(default_factory=list)


class DaplexEngine:
    """Executes parsed DAPLEX DML against one functional database."""

    def __init__(self, schema: FunctionalSchema, kc: KernelController) -> None:
        self.schema = schema
        self.kc = kc
        self.mapping = ABFunctionalMapping(schema)
        # SUCH THAT→(kernel query, post-filter) translation cache, keyed
        # on (type name, rendered condition) — pure in the schema, which
        # is fixed for the engine's lifetime.
        self._splits = qc_runtime.new_cache("translate", prefix="qc.translate")
        if kc.obs.enabled:
            self._splits.bind_metrics(kc.obs.metrics)

    def invalidate_translations(self) -> None:
        """Drop cached condition splits (schema change)."""
        self._splits.clear()

    def translation_cache_snapshot(self) -> dict[str, object]:
        return self._splits.snapshot()

    # -- public API -----------------------------------------------------------------

    def execute(self, statement: dml.DaplexStatement | str) -> DaplexResult:
        if isinstance(statement, str):
            statement = dml.parse_statement(statement)
        with self.kc.obs.tracer.span("kms.translate") as span:
            log_start = len(self.kc.request_log)
            if isinstance(statement, dml.ForEach):
                result = self._for_each(statement)
            elif isinstance(statement, dml.ForNew):
                result = self._for_new(statement)
            else:
                raise TranslationError(f"unknown statement {type(statement).__name__}")
            result.requests = self.kc.request_log[log_start:]
            if span:
                span.record(
                    language="daplex",
                    statement=type(statement).__name__,
                    requests=len(result.requests),
                )
        return result

    def run(self, text: str) -> list[DaplexResult]:
        return [self.execute(s) for s in dml.parse_program(text)]

    # -- FOR EACH -------------------------------------------------------------------

    def _for_each(self, statement: dml.ForEach) -> DaplexResult:
        type_name = statement.type_name
        if not self.schema.is_entity_name(type_name):
            raise SchemaError(f"{type_name!r} is not an entity type or subtype")
        direct, deferred = self._split_condition(statement, type_name)
        candidates = self._candidates(type_name, direct)
        result = DaplexResult(statement.type_name)
        for dbkey in candidates:
            if not self._deferred_holds(deferred, type_name, dbkey):
                continue
            for action in statement.actions:
                if isinstance(action, dml.PrintAction):
                    row = {
                        expr.render(): self._evaluate_print(expr, type_name, dbkey)
                        for expr in action.expressions
                    }
                    result.rows.append(row)
                elif isinstance(action, dml.LetAction):
                    self._let(action, type_name, dbkey)
                    result.touched += 1
                elif isinstance(action, dml.DestroyAction):
                    self._destroy(type_name, dbkey)
                    result.touched += 1
                else:
                    raise TranslationError(f"unknown action {type(action).__name__}")
        return result

    def _split_condition(
        self,
        statement: dml.ForEach,
        type_name: str,
    ) -> tuple[Optional[Query], Optional[dml.Condition]]:
        """Divide the SUCH THAT clause into kernel query and post-filter.

        Only a purely conjunctive condition whose every comparison is a
        direct (non-inherited, non-nested) function of the iterated type
        can compile entirely into the RETRIEVE; any other shape keeps the
        whole condition as a per-candidate filter.  A mixed conjunction
        pushes its direct comparisons down *and* re-checks the rest.
        """
        condition = statement.condition
        if condition is None:
            return None, None
        if len(condition.clauses) != 1:
            return None, condition  # disjunctions filter post-hoc
        use_cache = qc_runtime.config.translation_cache_enabled and self._splits.enabled
        key = (type_name, condition.render()) if use_cache else None
        if use_cache:
            cached = self._splits.get(key)
            if cached is not MISSING:
                return cached
        node = self.schema.entity_or_subtype(type_name)
        direct_names = {f.name for f in node.functions if not f.set_valued}
        predicates = []
        leftovers = []
        for comparison in condition.clauses[0]:
            if (
                len(comparison.path.functions) == 1
                and comparison.path.functions[0] in direct_names
            ):
                predicates.append(
                    Predicate(comparison.path.functions[0], comparison.operator, comparison.value)
                )
            else:
                leftovers.append(comparison)
        direct_query = None
        if predicates:
            direct_query = Query.conjunction(
                [Predicate("FILE", "=", type_name), *predicates]
            )
        deferred = dml.Condition([leftovers]) if leftovers else None
        if use_cache:
            self._splits.put(key, (direct_query, deferred))
        return direct_query, deferred

    def _candidates(self, type_name: str, direct: Optional[Query]) -> list[str]:
        query = direct or Query.single("FILE", "=", type_name)
        records = self.kc.retrieve(query)
        key_attribute = self.mapping.dbkey_attribute(type_name)
        seen: list[str] = []
        for record in records:
            key = record.get(key_attribute)
            if isinstance(key, str) and key not in seen:
                seen.append(key)
        return seen

    def _deferred_holds(
        self,
        deferred: Optional[dml.Condition],
        type_name: str,
        dbkey: str,
    ) -> bool:
        if deferred is None:
            return True
        for clause in deferred.clauses:
            if all(
                compare(
                    self._evaluate_path(c.path, type_name, dbkey),
                    c.value,
                    c.operator,
                )
                for c in clause
            ):
                return True
        return False

    # -- path evaluation (value inheritance) ----------------------------------------------

    def _declaring_type(self, type_name: str, function_name: str) -> tuple[str, Function]:
        """The type (self or ancestor) declaring *function_name*."""
        for candidate in [type_name, *self.schema.supertype_chain(type_name)]:
            node = self.schema.entity_or_subtype(candidate)
            function = node.function(function_name)
            if function is not None:
                return candidate, function
        raise SchemaError(f"{type_name!r} has no function {function_name!r}")

    def _raw_function_values(
        self,
        type_name: str,
        function_name: str,
        dbkey: str,
    ) -> list[Value]:
        """Distinct non-null fn(entity) values (one element unless fn is
        multi-valued), read from the declaring type's file."""
        declaring, _ = self._declaring_type(type_name, function_name)
        records = self.kc.retrieve(
            Query.conjunction(
                [
                    Predicate("FILE", "=", declaring),
                    Predicate(declaring, "=", dbkey),
                ]
            )
        )
        values: list[Value] = []
        for record in records:
            value = record.get(function_name)
            if value is not None and value not in values:
                values.append(value)
        return values

    def _function_value(self, type_name: str, function_name: str, dbkey: str) -> Value:
        """Read fn(entity), walking up the ISA chain for inherited functions."""
        declaring, function = self._declaring_type(type_name, function_name)
        if function.set_valued:
            # Multi-valued: render the distinct values as a joined list.
            values = self._raw_function_values(type_name, function_name, dbkey)
            return ", ".join(str(v) for v in values) if values else None
        records = self.kc.retrieve(
            Query.conjunction(
                [
                    Predicate("FILE", "=", declaring),
                    Predicate(declaring, "=", dbkey),
                ]
            )
        )
        return records[0].get(function_name) if records else None

    def _evaluate_print(self, expr, type_name: str, dbkey: str) -> Value:
        """Evaluate a PRINT expression: a path or an aggregate over one."""
        if isinstance(expr, dml.AggregateExpr):
            return self._evaluate_aggregate(expr, type_name, dbkey)
        return self._evaluate_path(expr, type_name, dbkey)

    def _evaluate_aggregate(
        self,
        expr: "dml.AggregateExpr",
        type_name: str,
        dbkey: str,
    ) -> Value:
        """COUNT/TOTAL/AVERAGE/MAXIMUM/MINIMUM over a function application.

        The outermost function of the path supplies the value set (its
        distinct values across the entity's duplicated AB records); inner
        steps must be single-valued entity navigation.
        """
        path = expr.path
        if not path.functions:
            raise TranslationError("aggregates need a function application")
        current_type = type_name
        current_key: Value = dbkey
        for function_name in reversed(path.functions[1:]):
            if not isinstance(current_key, str):
                return None
            _, function = self._declaring_type(current_type, function_name)
            if function.set_valued:
                raise TranslationError(
                    f"{function_name!r} is multi-valued; only the outermost "
                    f"function of an aggregate may be"
                )
            if not function.is_entity_valued:
                raise TranslationError(
                    f"{function_name!r} is scalar and cannot be dereferenced"
                )
            current_key = self._function_value(current_type, function_name, current_key)
            current_type = function.range_type_name or ""
        if not isinstance(current_key, str):
            return None
        values = self._raw_function_values(current_type, path.functions[0], current_key)
        if expr.operator == "COUNT":
            return len(values)
        numeric = [v for v in values if isinstance(v, (int, float))]
        if not numeric:
            return None
        if expr.operator == "TOTAL":
            return sum(numeric)
        if expr.operator == "AVERAGE":
            return sum(numeric) / len(numeric)
        if expr.operator == "MAXIMUM":
            return max(numeric)
        return min(numeric)

    def _evaluate_path(self, path: dml.FunctionPath, type_name: str, dbkey: str) -> Value:
        if not path.functions:
            return dbkey
        current_type = type_name
        current_key: Value = dbkey
        # Apply innermost-first; entity-valued steps switch the type.
        for index, function_name in enumerate(reversed(path.functions)):
            if not isinstance(current_key, str):
                return None
            declaring, function = self._declaring_type(current_type, function_name)
            value = self._function_value(current_type, function_name, current_key)
            is_last = index == len(path.functions) - 1
            if function.is_entity_valued and not is_last:
                current_type = function.range_type_name or ""
                current_key = value
            elif is_last:
                return value
            else:
                raise TranslationError(
                    f"{function_name!r} is scalar and cannot be dereferenced further"
                )
        return current_key

    # -- LET ----------------------------------------------------------------------------

    def _let(self, action: dml.LetAction, type_name: str, dbkey: str) -> None:
        if len(action.path.functions) != 1:
            raise TranslationError("LET assigns a direct function of the loop variable")
        function_name = action.path.functions[0]
        declaring, function = self._declaring_type(type_name, function_name)
        if function.is_entity_valued and action.value is not None:
            if not isinstance(action.value, str):
                raise SchemaError(
                    f"{function_name!r} is entity-valued; LET takes a database key"
                )
        self.kc.execute(
            UpdateRequest(
                Query.conjunction(
                    [
                        Predicate("FILE", "=", declaring),
                        Predicate(declaring, "=", dbkey),
                    ]
                ),
                Modifier(function_name, value=action.value),
            )
        )

    # -- FOR A NEW ------------------------------------------------------------------------

    def _for_new(self, statement: dml.ForNew) -> DaplexResult:
        type_name = statement.type_name
        values: dict[str, Value] = {}
        for action in statement.lets:
            if len(action.path.functions) != 1:
                raise TranslationError("FOR A NEW LET assigns a direct function")
            values[action.path.functions[0]] = action.value
        node = self.schema.entity_or_subtype(type_name)
        known = {f.name for f in node.functions}
        for name in values:
            if name not in known:
                raise SchemaError(f"{type_name!r} declares no function {name!r}")
        if type_name in self.schema.entity_types:
            if statement.selector is not None:
                raise TranslationError(
                    f"{type_name!r} is a base entity type; the OF clause applies "
                    f"to subtypes"
                )
            dbkey = self.schema.entity_types[type_name].next_key()
        else:
            dbkey = self._select_supertype_entity(statement)
        self._check_uniqueness(type_name, values)
        for record in self.mapping.build_records(type_name, dbkey, values):
            self.kc.execute(InsertRequest(record))
        result = DaplexResult(type_name, touched=1)
        result.rows.append({type_name: dbkey})
        return result

    def _select_supertype_entity(self, statement: dml.ForNew) -> str:
        subtype = self.schema.subtypes[statement.type_name]
        if statement.selector is None:
            raise TranslationError(
                f"{statement.type_name!r} is a subtype; FOR A NEW needs an "
                f"OF <supertype> SUCH THAT clause"
            )
        selector = statement.selector
        if selector.type_name not in (
            subtype.supertypes[0],
            *self.schema.supertype_chain(statement.type_name),
        ):
            raise SchemaError(
                f"{selector.type_name!r} is not a supertype of {statement.type_name!r}"
            )
        probe = dml.ForEach(selector.type_name, selector.type_name, selector.condition, [])
        direct, deferred = self._split_condition(probe, selector.type_name)
        keys = [
            key
            for key in self._candidates(selector.type_name, direct)
            if self._deferred_holds(deferred, selector.type_name, key)
        ]
        if len(keys) != 1:
            raise ExecutionError(
                f"the OF clause selected {len(keys)} {selector.type_name!r} "
                f"entities; FOR A NEW needs exactly one"
            )
        dbkey = keys[0]
        existing = self.kc.retrieve(
            Query.conjunction(
                [
                    Predicate("FILE", "=", statement.type_name),
                    Predicate(statement.type_name, "=", dbkey),
                ]
            )
        )
        if existing:
            raise ConstraintViolation(
                f"entity {dbkey!r} is already a {statement.type_name!r}"
            )
        return dbkey

    def _check_uniqueness(self, type_name: str, values: dict[str, Value]) -> None:
        for constraint in self.schema.uniqueness:
            if constraint.within != type_name:
                continue
            predicates = [Predicate("FILE", "=", type_name)]
            complete = True
            for item in constraint.functions:
                if values.get(item) is None:
                    complete = False
                    break
                predicates.append(Predicate(item, "=", values[item]))
            if complete and self.kc.retrieve(Query.conjunction(predicates)):
                raise ConstraintViolation(
                    f"FOR A NEW {type_name}: UNIQUE "
                    f"{', '.join(constraint.functions)} violated"
                )

    # -- DESTROY ----------------------------------------------------------------------------

    def _destroy(self, type_name: str, dbkey: str) -> None:
        # DAPLEX constraint: abort when the entity is referenced by any
        # database function (the rule the thesis's ERASE honours).
        for holder_name in self.schema.type_names():
            holder = self.schema.entity_or_subtype(holder_name)
            for function in holder.functions:
                if not function.is_entity_valued:
                    continue
                range_name = function.range_type_name or ""
                hierarchy = {type_name, *self.schema.hierarchy_below(type_name)}
                chain = {range_name, *self.schema.supertype_chain(type_name)}
                if range_name not in hierarchy and range_name not in chain:
                    continue
                found = self.kc.retrieve(
                    Query.conjunction(
                        [
                            Predicate("FILE", "=", holder_name),
                            Predicate(function.name, "=", dbkey),
                        ]
                    )
                )
                if found:
                    raise ConstraintViolation(
                        f"DESTROY {type_name} {dbkey}: referenced by "
                        f"{holder_name}.{function.name}"
                    )
        # Delete the entity from this type and its whole subtype hierarchy.
        for member in self.schema.hierarchy_below(type_name):
            self.kc.execute(
                DeleteRequest(
                    Query.conjunction(
                        [
                            Predicate("FILE", "=", member),
                            Predicate(member, "=", dbkey),
                        ]
                    )
                )
            )
