"""Saving and loading an MLDS instance.

The thesis's MLDS keeps descriptor and template files on disk (the
ddl_info structures of Figure 4.20); this module provides the modern
equivalent: a JSON snapshot of the whole system — every schema in its
own DDL text, the database-key counters, and the exact per-backend
record contents — restorable into an identical :class:`~repro.core.MLDS`.

.. code-block:: python

    from repro.persistence import save_mlds, load_mlds

    save_mlds(mlds, "university.mlds.json")
    restored = load_mlds("university.mlds.json")

The snapshot restores the *exact* backend partitioning (records are
placed back on their original backend), so simulated response times and
set-iteration orders are reproducible across save/load.

Format history:

* **1** — schemas, timing, key counters, per-backend records.
* **2** — adds ``wal`` (the durability watermark: the last committed
  WAL transaction the snapshot contains, written when the system has a
  write-ahead log attached — see :mod:`repro.wal`) and ``placement``
  (round-robin placement counters, so inserts after a restore land on
  the same backends they would have without the restart).

Version-1 snapshots still load: they simply carry no WAL watermark
(recovery treats them as "replay everything") and no placement counters
(post-restore placement restarts from backend 0, the historical
behavior).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.abdm.record import Record
from repro.core.mlds import MLDS
from repro.errors import MLDSError
from repro.mbds.placement import (
    HashShardPlacement,
    LeastLoadedPlacement,
    RoundRobinPlacement,
)
from repro.mbds.timing import TimingModel

#: Snapshot format version, bumped on incompatible layout changes.
FORMAT_VERSION = 2

#: Snapshot versions :func:`load_mlds` can restore.
SUPPORTED_VERSIONS = (1, 2)


def _dump_records(mlds: MLDS) -> list[list[dict]]:
    """Per-backend record dumps (pairs + textual portion)."""
    dumps: list[list[dict]] = []
    for backend in mlds.kds.controller.backends:
        rows = []
        for record in backend.store.all_records():
            rows.append({"pairs": record.pairs(), "text": record.text})
        dumps.append(rows)
    return dumps


def _placement_state(mlds: MLDS) -> Optional[dict]:
    placement = mlds.kds.controller.placement
    if isinstance(placement, RoundRobinPlacement):
        return {"kind": "round_robin", "counters": dict(placement._counters)}
    if isinstance(placement, LeastLoadedPlacement):
        return {"kind": "least_loaded"}
    if isinstance(placement, HashShardPlacement):
        return {
            "kind": "hash_shard",
            "key_attributes": dict(placement.key_attributes),
            "tainted": sorted(placement.tainted_files),
        }
    return None


def save_mlds(mlds: MLDS, path: Union[str, Path]) -> None:
    """Write a complete JSON snapshot of *mlds* to *path*."""
    timing = mlds.kds.controller.timing
    wal = mlds.kds.wal
    snapshot = {
        "format": FORMAT_VERSION,
        "backend_count": mlds.kds.controller.backend_count,
        "wal": wal.checkpoint_state() if wal is not None else None,
        "placement": _placement_state(mlds),
        "timing": {
            "broadcast_ms": timing.broadcast_ms,
            "access_ms": timing.access_ms,
            "page_scan_ms": timing.page_scan_ms,
            "records_per_page": timing.records_per_page,
            "select_record_ms": timing.select_record_ms,
            "merge_record_ms": timing.merge_record_ms,
            "insert_ms": timing.insert_ms,
        },
        "functional": {
            name: {
                "ddl": schema.render(),
                "key_counters": {
                    entity.name: entity.last_key
                    for entity in schema.entity_types.values()
                },
            }
            for name, schema in mlds._functional.items()
        },
        "network": {
            name: {
                "ddl": schema.render(),
                "key_counters": dict(mlds._network_mappings[name]._key_counters),
            }
            for name, schema in mlds._network.items()
        },
        "relational": {
            name: {
                "ddl": schema.render(),
                "key_counters": dict(mlds._relational_mappings[name]._key_counters),
            }
            for name, schema in mlds._relational.items()
        },
        "hierarchical": {
            name: {
                "ddl": schema.render(),
                "key_counters": dict(mlds._hierarchical_mappings[name]._key_counters),
                "sequence": mlds._hierarchical_mappings[name]._sequence,
            }
            for name, schema in mlds._hierarchical.items()
        },
        "backends": _dump_records(mlds),
    }
    Path(path).write_text(json.dumps(snapshot, indent=1))


def load_mlds(
    path: Union[str, Path],
    *,
    engine=None,
    workers: Optional[int] = None,
    pruning: bool = False,
    placement=None,
    store_factory=None,
    obs=None,
) -> MLDS:
    """Restore an :class:`MLDS` from a snapshot written by :func:`save_mlds`.

    The kernel knobs (*engine*, *workers*, *pruning*, *placement*,
    *store_factory*, *obs*) are not part of the snapshot — they describe
    the machine, not the data — so callers pick them at load time,
    defaulting to the serial, unpruned, untraced, round-robin
    configuration.  The snapshot's placement *state* (round-robin
    counters, hash-shard taints, load counts) is re-applied when the
    chosen policy matches the kind that wrote it.

    Records are restored through each backend's store, which rebuilds
    hash indexes and clustering as it inserts; cached broadcast-pruning
    summaries are explicitly invalidated afterwards so a pruned RETRIEVE
    issued immediately after the load sees the restored contents.
    """
    snapshot = json.loads(Path(path).read_text())
    version = snapshot.get("format")
    if version not in SUPPORTED_VERSIONS:
        raise MLDSError(
            f"snapshot format {version!r} is not supported "
            f"(expected one of {SUPPORTED_VERSIONS})"
        )
    timing = TimingModel(**snapshot["timing"])
    mlds = MLDS(
        backend_count=snapshot["backend_count"],
        timing=timing,
        placement=placement,
        engine=engine,
        workers=workers,
        pruning=pruning,
        store_factory=store_factory,
        obs=obs,
    )
    for name, entry in snapshot["functional"].items():
        schema = mlds.define_functional_database(entry["ddl"])
        for entity_name, last_key in entry["key_counters"].items():
            schema.entity_types[entity_name].last_key = last_key
    for name, entry in snapshot["network"].items():
        mlds.define_network_database(entry["ddl"])
        mlds._network_mappings[name]._key_counters.update(entry["key_counters"])
    for name, entry in snapshot["relational"].items():
        mlds.define_relational_database(entry["ddl"])
        mlds._relational_mappings[name]._key_counters.update(entry["key_counters"])
    for name, entry in snapshot.get("hierarchical", {}).items():
        mlds.define_hierarchical_database(entry["ddl"])
        mapping = mlds._hierarchical_mappings[name]
        mapping._key_counters.update(entry["key_counters"])
        mapping._sequence = entry["sequence"]
    backends = mlds.kds.controller.backends
    if len(snapshot["backends"]) != len(backends):
        raise MLDSError("snapshot backend count does not match")
    for backend, rows in zip(backends, snapshot["backends"]):
        if not rows:
            continue
        # One bulk call per backend: indexes and clustering build
        # collect-then-sort-once instead of per-record, with the exact
        # store state the per-record path produced (see ABStore.bulk_insert).
        backend.store.bulk_insert(
            Record.from_pairs(
                [(attribute, value) for attribute, value in row["pairs"]],
                text=row.get("text", ""),
            )
            for row in rows
        )
    placement_state = snapshot.get("placement")
    restored = mlds.kds.controller.placement
    kind = placement_state.get("kind") if placement_state else None
    if kind == "round_robin" and isinstance(restored, RoundRobinPlacement):
        restored._counters.update(placement_state.get("counters", {}))
    elif kind == "hash_shard" and isinstance(restored, HashShardPlacement):
        restored.key_attributes.update(placement_state.get("key_attributes", {}))
        restored._tainted.update(placement_state.get("tainted", ()))
    if isinstance(restored, LeastLoadedPlacement):
        # Whatever the snapshot said, the true load is what was restored.
        restored.rebalance(mlds.kds.controller.distribution())
    # Restoring bypassed Backend.execute, so any cached content summaries
    # no longer describe the stores; drop them (they rebuild lazily).
    mlds.kds.controller.invalidate_summaries()
    return mlds
