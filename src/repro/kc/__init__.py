"""KC — the Kernel Controller subsystem."""

from repro.kc.controller import KernelController

__all__ = ["KernelController"]
