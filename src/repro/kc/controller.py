"""The Kernel Controller (KC).

KC sits between the kernel mapping subsystem and the kernel database
system: every ABDL request the translation produces passes through KC for
execution (thesis I.B.1).  This implementation additionally keeps a
*request log* — the rendered text of every request executed on behalf of
the run-unit — which is how the test suite asserts that a CODASYL-DML
statement translated into exactly the ABDL the thesis's chapters show.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.mbds.sessions import KernelSession

from repro.abdl.ast import (
    ALL_ATTRIBUTES,
    Request,
    RetrieveRequest,
    TargetItem,
)
from repro.abdl.executor import RequestResult
from repro.abdm.predicate import Query
from repro.abdm.record import Record
from repro.mbds.kds import KernelDatabaseSystem


class KernelController:
    """Executes ABDL requests on the shared KDS for one run-unit.

    *session* optionally binds the run-unit to a kernel session (see
    :meth:`repro.mbds.kds.KernelDatabaseSystem.create_session`): every
    request then executes under kernel concurrency control — two-phase
    locks and session-owned WAL transactions — so many run-units can
    share the kernel simultaneously.  Without one, requests take the
    legacy single-caller path unchanged.
    """

    def __init__(
        self,
        kds: KernelDatabaseSystem,
        session: Optional["KernelSession"] = None,
    ) -> None:
        self.kds = kds
        self.session = session
        #: Rendered text of every request executed (oldest first).
        self.request_log: list[str] = []

    @property
    def obs(self):
        """The kernel's observability bundle (shared across run-units)."""
        return self.kds.obs

    def execute(self, request: Request) -> RequestResult:
        """Execute one request, logging its ABDL text."""
        with self.obs.tracer.span("kc.dispatch") as span:
            rendered = request.render()
            self.request_log.append(rendered)
            result = self.kds.execute(request, session=self.session).result
            if span:
                span.record(abdl=rendered)
        return result

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """Group the requests executed inside into one kernel transaction.

        Commits on normal exit, aborts (journal and in-memory) on error —
        see :meth:`repro.mbds.kds.KernelDatabaseSystem.transaction`.  A
        session-bound run-unit gets its session's concurrent transaction
        protocol (locks held to commit, file-granular undo on abort).
        """
        if self.session is not None:
            with self.kds.session_transaction(self.session):
                yield
            return
        with self.kds.transaction():
            yield

    def retrieve(
        self,
        query: Query,
        target: Sequence[TargetItem] = (ALL_ATTRIBUTES,),
        by: Optional[str] = None,
    ) -> list[Record]:
        """Convenience retrieval returning the projected records."""
        return self.execute(RetrieveRequest(query, target, by)).records

    def last_requests(self, count: int) -> list[str]:
        """The most recent *count* logged request texts."""
        return self.request_log[-count:]

    def clear_log(self) -> None:
        self.request_log.clear()
