"""Compilation of DNF queries into specialized matcher closures.

Interpreted matching walks three layers per record — ``Query.matches`` →
``Conjunction.matches`` → ``Predicate.matches`` → ``values.compare`` —
re-dispatching on the operator string every time.  :func:`compile_query`
does that dispatch **once**, flattening the query into a closure over the
record's keyword map (a plain ``dict[str, Value]``), so the per-record
cost is a dict lookup and a native comparison.

Correctness contract: for every query and record,
``compile_query(q).matches(r) == q.matches(r)`` — bit-identical selection,
proven against :mod:`repro.abdm.values` semantics:

* Equality compiles to ``m.get(attr, _MISSING) == value``.  On the kernel
  value domain (int/float/str/None) Python ``==`` agrees exactly with
  :func:`~repro.abdm.values.values_equal`: ``None`` equals only ``None``,
  mixed string/number pairs are unequal, int/float mix numerically, and
  the private ``_MISSING`` sentinel equals nothing — which reproduces the
  "absent keyword never satisfies" rule for free.
* ``!=`` requires the keyword to be *present* with a differing value
  (the kernel compares keywords, not absences).
* Ordering operators guard with ``isinstance`` checks that mirror
  :func:`~repro.abdm.values.comparable`: strings order against strings,
  numbers against numbers, nulls and absences against nothing.  A
  predicate ordering against a null value can never be satisfied and
  compiles to a constant ``False``.

The module is pure — caching lives with the callers (each store keeps a
bounded LRU from :mod:`repro.qc.runtime` keyed on the rendered query).
"""

from __future__ import annotations

import operator as _op
from typing import Callable, Mapping

from repro.abdm.predicate import Conjunction, Predicate, Query
from repro.abdm.record import Record
from repro.abdm.values import Value

#: Absent-keyword sentinel; compares unequal to every kernel value.
_MISSING = object()

#: A compiled matcher over a record's keyword map.
MatchFn = Callable[[Mapping[str, Value]], bool]

_ORDER_OPS: dict[str, Callable[[Value, Value], bool]] = {
    "<": _op.lt,
    "<=": _op.le,
    ">": _op.gt,
    ">=": _op.ge,
}


def _false(keyword_map: Mapping[str, Value]) -> bool:
    return False


def _true(keyword_map: Mapping[str, Value]) -> bool:
    return True


def compile_predicate(predicate: Predicate) -> MatchFn:
    """Compile one keyword predicate to a closure over the keyword map."""
    attribute = predicate.attribute
    value = predicate.value
    op = predicate.operator

    if op == "=":

        def eq(m: Mapping[str, Value]) -> bool:
            return m.get(attribute, _MISSING) == value

        return eq

    if op == "!=":

        def ne(m: Mapping[str, Value]) -> bool:
            v = m.get(attribute, _MISSING)
            return v is not _MISSING and v != value

        return ne

    relation = _ORDER_OPS[op]
    if value is None:
        # Ordering against the null marker is never satisfied.
        return _false
    if isinstance(value, str):

        def order_str(m: Mapping[str, Value]) -> bool:
            v = m.get(attribute, _MISSING)
            return isinstance(v, str) and relation(v, value)

        return order_str

    def order_num(m: Mapping[str, Value]) -> bool:
        v = m.get(attribute, _MISSING)
        return isinstance(v, (int, float)) and relation(v, value)

    return order_num


def compile_conjunction(clause: Conjunction) -> MatchFn:
    """Compile one DNF clause (an empty clause matches everything)."""
    fns = tuple(compile_predicate(p) for p in clause.predicates)
    if not fns:
        return _true
    if len(fns) == 1:
        return fns[0]
    if len(fns) == 2:
        first, second = fns

        def pair(m: Mapping[str, Value]) -> bool:
            return first(m) and second(m)

        return pair

    def conj(m: Mapping[str, Value]) -> bool:
        for fn in fns:
            if not fn(m):
                return False
        return True

    return conj


class CompiledQuery:
    """A query flattened into a single matcher closure.

    ``matches`` accepts a :class:`~repro.abdm.record.Record` (mirroring
    ``Query.matches``); ``fn`` is the raw closure over a keyword map for
    callers already holding one.
    """

    __slots__ = ("query", "source", "fn")

    def __init__(self, query: Query) -> None:
        self.query = query
        self.source = query.render()
        clause_fns = tuple(compile_conjunction(c) for c in query.clauses)
        if not clause_fns:
            # An empty disjunction selects nothing (any(()) is False).
            self.fn: MatchFn = _false
        elif len(clause_fns) == 1:
            self.fn = clause_fns[0]
        else:

            def disj(m: Mapping[str, Value]) -> bool:
                for fn in clause_fns:
                    if fn(m):
                        return True
                return False

            self.fn = disj

    def matches(self, record: Record) -> bool:
        """Exactly ``self.query.matches(record)``, minus the dispatch."""
        return self.fn(record.keyword_map())

    def __repr__(self) -> str:
        return f"CompiledQuery({self.source})"


def compile_query(query: Query) -> CompiledQuery:
    """Compile *query* into a :class:`CompiledQuery`."""
    return CompiledQuery(query)
