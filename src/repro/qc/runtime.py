"""Process-wide configuration and shared caches for the qc subsystem.

Four cache layers hang off this module:

``compile``
    Per-store LRUs of :class:`~repro.qc.compile.CompiledQuery` keyed on the
    rendered query (created via :func:`new_cache`).
``parse``
    Module-global memos for ABDL request parsing and network-DML statement
    parsing, keyed on exact source text (:data:`request_parse_cache`,
    :data:`dml_parse_cache`).
``translate``
    Per-adapter/engine LRUs of statement→ABDL translations (created via
    :func:`new_cache`; they die with their session, so a schema reload —
    which always opens fresh sessions — naturally invalidates them).
``result``
    Per-backend RETRIEVE result caches guarded by mutation epochs
    (created via :func:`new_cache`).

:class:`QCConfig` is a mutable singleton (:data:`config`) so the CLI flags
``--no-compile`` / ``--cache-sizes`` and the tests can flip layers on and
off without threading a config object through every constructor.  Layers
fall back to the uncached path both when their flag is off and when their
size is 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

from repro.qc.lru import LRUCache

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry, NullMetrics

#: Default LRU bounds per cache layer.
DEFAULT_SIZES = {
    "compile": 256,
    "parse": 512,
    "translate": 256,
    "result": 128,
}

#: Layer names accepted by ``--cache-sizes`` and :meth:`QCConfig.set_sizes`.
LAYERS = tuple(DEFAULT_SIZES)


@dataclass
class QCConfig:
    """Feature switches and LRU bounds for every cache layer."""

    compile_enabled: bool = True
    parse_cache_enabled: bool = True
    translation_cache_enabled: bool = True
    result_cache_enabled: bool = True
    #: Access-path planning over attribute indexes (``--no-index-plan``).
    #: Off, every indexed store falls back to the compiled full scan —
    #: the ablation baseline bench_range_index.py measures against.
    plan_enabled: bool = True
    sizes: dict[str, int] = field(default_factory=lambda: dict(DEFAULT_SIZES))

    def size(self, layer: str) -> int:
        return self.sizes.get(layer, DEFAULT_SIZES.get(layer, 0))

    def set_sizes(self, spec: str) -> None:
        """Apply a ``layer=size,layer=size`` spec (the --cache-sizes flag).

        A size of 0 disables that layer's caches created afterwards.
        """
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"bad cache-size entry {part!r} (want layer=size)")
            layer, _, raw = part.partition("=")
            layer = layer.strip()
            if layer not in DEFAULT_SIZES:
                raise ValueError(f"unknown cache layer {layer!r} (known: {', '.join(LAYERS)})")
            self.sizes[layer] = int(raw)

    def reset(self) -> None:
        self.compile_enabled = True
        self.parse_cache_enabled = True
        self.translation_cache_enabled = True
        self.result_cache_enabled = True
        self.plan_enabled = True
        self.sizes = dict(DEFAULT_SIZES)


#: The process-wide configuration singleton.
config = QCConfig()


def new_cache(layer: str, prefix: str | None = None) -> LRUCache:
    """Create a cache for *layer* sized from the current config."""
    return LRUCache(config.size(layer), prefix=prefix or f"qc.{layer}")


#: Global memo for ``abdl.parser.parse_request`` (exact source text → AST).
request_parse_cache = new_cache("parse", prefix="qc.parse.abdl")

#: Global memo for ``network.dml`` statement/transaction parsing.
dml_parse_cache = new_cache("parse", prefix="qc.parse.dml")

_GLOBAL_CACHES = (request_parse_cache, dml_parse_cache)


def apply_sizes(spec: str) -> None:
    """Apply a ``--cache-sizes`` spec, resizing the live global caches.

    Per-store/engine/backend caches created *after* this call pick the
    new bounds up from the config; the process-global parse caches
    already exist and are resized in place.
    """
    config.set_sizes(spec)
    for cache in _GLOBAL_CACHES:
        cache.resize(config.size("parse"))


def bind_metrics(metrics: Union["MetricsRegistry", "NullMetrics"]) -> None:
    """Mirror the global parse caches into *metrics*.

    Last caller wins — with several instrumented MLDS instances in one
    process, the global parse-layer counters land in the most recently
    bound registry (per-store and per-backend caches are bound per
    instance and unaffected).
    """
    for cache in _GLOBAL_CACHES:
        cache.bind_metrics(metrics)


def global_snapshots() -> list[dict[str, object]]:
    """Snapshots of the process-global caches (for ``.caches``)."""
    return [cache.snapshot() for cache in _GLOBAL_CACHES]


def reset() -> None:
    """Restore defaults and empty the global caches (test isolation)."""
    from repro.obs.metrics import NULL_METRICS

    config.reset()
    for cache in _GLOBAL_CACHES:
        cache.clear()
        cache.resize(config.size("parse"))
        cache.bind_metrics(NULL_METRICS)
        cache.hits = cache.misses = cache.evictions = 0
