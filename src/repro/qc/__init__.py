"""Query compilation and multi-layer caching (PR 4).

The hot-path levers, from the thesis's "response time bounded by the
hardware" goal:

* :mod:`repro.qc.compile` — DNF queries flattened into matcher closures
  over the record keyword map (bit-identical to interpreted matching).
* :mod:`repro.qc.lru` — the bounded, counter-instrumented LRU every
  layer is built from.
* :mod:`repro.qc.runtime` — the config singleton, cache factory, and
  process-global parse memos.
"""

from repro.qc.compile import CompiledQuery, compile_query
from repro.qc.lru import LRUCache, MISSING
from repro.qc import runtime

__all__ = [
    "CompiledQuery",
    "compile_query",
    "LRUCache",
    "MISSING",
    "runtime",
]
