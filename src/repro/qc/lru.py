"""A small, thread-safe, bounded LRU cache with hit/miss/eviction counters.

Every cache layer in :mod:`repro.qc` — compiled queries, parse memos,
KMS translation memos, backend result caches — is an :class:`LRUCache`.
The cache keeps its own local counters (always, for ``.caches`` and the
tests) and mirrors them into an :class:`~repro.obs.metrics.MetricsRegistry`
when one is bound, under ``<prefix>.hits`` / ``.misses`` / ``.evictions``
— so an instrumented run sees every cache layer in one registry export.

A cache with ``maxsize <= 0`` is disabled: :meth:`get` always misses
(without counting) and :meth:`put` is a no-op, which is how the
``--cache-sizes`` CLI flag turns individual layers off.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Union

from repro.obs.metrics import MetricsRegistry, NULL_METRICS, NullMetrics

#: Sentinel distinguishing "not cached" from a cached ``None``.
MISSING = object()


class LRUCache:
    """Bounded mapping with least-recently-used eviction."""

    def __init__(
        self,
        maxsize: int,
        prefix: str = "qc.cache",
        metrics: Union[MetricsRegistry, NullMetrics] = NULL_METRICS,
    ) -> None:
        self.maxsize = int(maxsize)
        self.prefix = prefix
        self._metrics = metrics
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def bind_metrics(self, metrics: Union[MetricsRegistry, NullMetrics]) -> None:
        """Mirror this cache's counters into *metrics* from now on."""
        self._metrics = metrics

    # -- hot path --------------------------------------------------------------

    def get(self, key: Hashable) -> Any:
        """The cached value for *key*, or :data:`MISSING`."""
        if self.maxsize <= 0:
            return MISSING
        with self._lock:
            value = self._data.get(key, MISSING)
            if value is MISSING:
                self.misses += 1
                self._metrics.inc(f"{self.prefix}.misses")
                return MISSING
            self._data.move_to_end(key)
            self.hits += 1
            self._metrics.inc(f"{self.prefix}.hits")
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) *key*, evicting the LRU entry when full."""
        if self.maxsize <= 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                self._metrics.inc(f"{self.prefix}.evictions")

    # -- maintenance -----------------------------------------------------------

    def clear(self) -> None:
        """Drop every entry (counters are kept — they are cumulative)."""
        with self._lock:
            self._data.clear()

    def resize(self, maxsize: int) -> None:
        """Change the bound; shrinking evicts LRU entries to fit."""
        with self._lock:
            self.maxsize = int(maxsize)
            if self.maxsize <= 0:
                self._data.clear()
                return
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                self._metrics.inc(f"{self.prefix}.evictions")

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def snapshot(self) -> dict[str, Any]:
        """Counters and occupancy, JSON-ready (the ``.caches`` command)."""
        with self._lock:
            return {
                "prefix": self.prefix,
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:
        return (
            f"LRUCache({self.prefix}, {len(self)}/{self.maxsize}, "
            f"{self.hits}h/{self.misses}m/{self.evictions}e)"
        )
