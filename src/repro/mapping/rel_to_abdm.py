"""Relational-to-ABDM mapping: the AB(relational) database.

One AB file per relation; one record per tuple, carrying ``(FILE,
relation)``, ``(relation, dbkey)`` and one keyword per column.  This is
the simplest of MLDS's data-model transformations — the relational model
is already attribute-shaped — and it completes the mapping family of
Figure 4.1's dbid_node union (relational, hierarchical, network,
functional).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.abdm.record import FILE_ATTRIBUTE, Record
from repro.abdm.values import Value
from repro.errors import SchemaError
from repro.relational.model import RelationalSchema


class ABRelationalMapping:
    """The relational-to-ABDM mapping for one schema."""

    def __init__(self, schema: RelationalSchema) -> None:
        self.schema = schema
        self._key_counters: dict[str, int] = {}

    def file_names(self) -> list[str]:
        return list(self.schema.relations)

    def dbkey_attribute(self, relation: str) -> str:
        return relation

    def mint_key(self, relation: str) -> str:
        count = self._key_counters.get(relation, 0) + 1
        self._key_counters[relation] = count
        return f"{relation}${count}"

    def build_record(
        self,
        relation_name: str,
        dbkey: str,
        values: Mapping[str, Value],
    ) -> Record:
        """Build one AB(relational) tuple record, type-checking columns."""
        relation = self.schema.relation(relation_name)
        known = {c.name for c in relation.columns}
        for name in values:
            if name not in known:
                raise SchemaError(
                    f"relation {relation_name!r} has no column {name!r}"
                )
        pairs: list[tuple[str, Value]] = [
            (FILE_ATTRIBUTE, relation_name),
            (relation_name, dbkey),
        ]
        for column in relation.columns:
            value = values.get(column.name)
            if not column.type.accepts(value):
                raise SchemaError(
                    f"column {relation_name}.{column.name} ({column.type.name}) "
                    f"rejects {value!r}"
                )
            if (
                column.length
                and isinstance(value, str)
                and len(value) > column.length
            ):
                raise SchemaError(
                    f"column {relation_name}.{column.name} CHAR({column.length}) "
                    f"rejects {value!r}"
                )
            pairs.append((column.name, value))
        return Record.from_pairs(pairs)

    def extract_values(self, relation_name: str, record: Record) -> dict[str, Value]:
        relation = self.schema.relation(relation_name)
        return {c.name: record.get(c.name) for c in relation.columns}
