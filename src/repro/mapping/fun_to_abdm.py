"""Functional-to-ABDM mapping: the AB(functional) database (thesis III.C.1).

The mapping creates one AB file per entity type and subtype.  Every record
of a file begins ``(FILE, type-name)`` followed by ``(type-name,
unique-key)`` — the *artificial attribute* whose value is the database key
— and then one keyword per function.  Relationship-valued keywords hold
the database key of the related entity (the asterisked values of
Figure 3.3):

* a subtype record's key *is* its supertype's key (the thesis pairs "its
  entity supertype and its unique key"), which keeps ISA set occurrences
  implicit: the student record for person ``person$7`` is the record of
  file ``student`` whose ``(student, person$7)`` keyword matches;
* a single-valued entity function ``f`` yields ``(f, owner-dbkey)`` in
  the *domain* type's file — the member side of the transformed set;
* multi-valued functions (scalar or entity) multiply records: a faculty
  member teaching three courses contributes three AB records to file
  ``faculty``, identical except for the ``teaching`` keyword.  When an
  instance has several multi-valued functions populated, the records form
  the cross product of the value lists (each empty list contributing a
  single NULL), which is the representation Chapter VI's CONNECT /
  DISCONNECT cases manipulate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.abdm.record import FILE_ATTRIBUTE, Record
from repro.abdm.values import Value
from repro.errors import SchemaError, TransformError
from repro.functional.model import EntityType, Function, FunctionalSchema

#: A function value supplied by a loader: one kernel value, or a list of
#: them for multi-valued functions.
FunctionValue = Union[Value, Sequence[Value]]


@dataclass
class ABFileLayout:
    """Layout of one AB(functional) file (Figure 3.3 rows)."""

    type_name: str
    #: Attribute order: FILE, the type name (dbkey), then function names.
    attributes: list[str] = field(default_factory=list)
    #: Names of multi-valued (record-multiplying) functions.
    multivalued: list[str] = field(default_factory=list)


class ABFunctionalMapping:
    """The functional-to-ABDM mapping for one schema.

    Shared by the database loader (build AB records from instance values)
    and the kernel formatting subsystem (collapse AB records back into
    logical instances).
    """

    def __init__(self, schema: FunctionalSchema) -> None:
        self.schema = schema

    # -- structural view ----------------------------------------------------------

    def file_names(self) -> list[str]:
        """One AB file per entity type and subtype (step 1 of III.C.1)."""
        return self.schema.type_names()

    def layout(self, type_name: str) -> ABFileLayout:
        """The keyword layout of *type_name*'s file."""
        node = self.schema.entity_or_subtype(type_name)
        layout = ABFileLayout(type_name, [FILE_ATTRIBUTE, type_name])
        for function in node.functions:
            layout.attributes.append(function.name)
            if function.set_valued:
                layout.multivalued.append(function.name)
        return layout

    def dbkey_attribute(self, type_name: str) -> str:
        """The artificial attribute holding the database key."""
        return type_name

    # -- building records -----------------------------------------------------------

    def build_records(
        self,
        type_name: str,
        dbkey: str,
        values: Mapping[str, FunctionValue],
    ) -> list[Record]:
        """Build the AB records for one entity instance.

        *values* maps function names to values; entity-valued functions
        take the related instance's database key (a string).  Unknown
        function names raise; missing functions default to NULL.
        """
        node = self.schema.entity_or_subtype(type_name)
        known = {f.name for f in node.functions}
        for name in values:
            if name not in known:
                raise SchemaError(
                    f"{type_name!r} has no function {name!r} "
                    f"(declared functions: {sorted(known)})"
                )
        single_pairs: list[tuple[str, Value]] = [
            (FILE_ATTRIBUTE, type_name),
            (type_name, dbkey),
        ]
        multi_lists: list[tuple[str, list[Value]]] = []
        for function in node.functions:
            supplied = values.get(function.name)
            if function.set_valued:
                if supplied is None:
                    expansion: list[Value] = [None]
                elif isinstance(supplied, (list, tuple)):
                    expansion = list(supplied) or [None]
                else:
                    expansion = [supplied]
                multi_lists.append((function.name, expansion))
            else:
                if isinstance(supplied, (list, tuple)):
                    raise SchemaError(
                        f"function {type_name}.{function.name} is single-valued "
                        f"but got a list"
                    )
                single_pairs.append((function.name, supplied))
        if not multi_lists:
            return [Record.from_pairs(single_pairs)]
        records = []
        names = [name for name, _ in multi_lists]
        for combination in itertools.product(*(vals for _, vals in multi_lists)):
            pairs = list(single_pairs)
            pairs.extend(zip(names, combination))
            records.append(Record.from_pairs(pairs))
        return records

    # -- collapsing records ------------------------------------------------------------

    def collapse(self, type_name: str, records: Sequence[Record]) -> dict[str, FunctionValue]:
        """Collapse the AB records of one instance back to function values.

        Inverse of :meth:`build_records`: scalar keywords come from the
        first record; multi-valued functions gather the distinct non-null
        values across the group (order of first appearance).
        """
        if not records:
            return {}
        node = self.schema.entity_or_subtype(type_name)
        values: dict[str, FunctionValue] = {}
        values[type_name] = records[0].get(type_name)
        for function in node.functions:
            if function.set_valued:
                seen: list[Value] = []
                for record in records:
                    value = record.get(function.name)
                    if value is not None and value not in seen:
                        seen.append(value)
                values[function.name] = seen
            else:
                values[function.name] = records[0].get(function.name)
        return values

    def group_by_dbkey(
        self,
        type_name: str,
        records: Iterable[Record],
    ) -> dict[str, list[Record]]:
        """Bucket AB records by database key (one logical instance each)."""
        key_attribute = self.dbkey_attribute(type_name)
        groups: dict[str, list[Record]] = {}
        for record in records:
            key = record.get(key_attribute)
            if isinstance(key, str):
                groups.setdefault(key, []).append(record)
        return groups

    # -- inheritance -----------------------------------------------------------------

    def inherited_files(self, type_name: str) -> list[str]:
        """Files holding inherited values for *type_name* (its ancestors)."""
        return self.schema.supertype_chain(type_name)
