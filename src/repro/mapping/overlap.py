"""The Overlap Table (thesis V.E and VI.G).

Functional subtypes are disjoint unless an overlap constraint declares
otherwise.  The transformation realizes the constraints as a table that
STORE consults before adding a record: an entity may join a terminal
subtype only if every terminal subtype it already belongs to overlaps
with the target.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConstraintViolation
from repro.functional.model import FunctionalSchema


class OverlapTable:
    """Pairwise co-membership permissions between terminal subtypes."""

    def __init__(self, schema: FunctionalSchema) -> None:
        self.schema = schema
        self._allowed: set[frozenset[str]] = set()
        for overlap in schema.overlaps:
            for left in overlap.left:
                for right in overlap.right:
                    if left != right:
                        self._allowed.add(frozenset((left, right)))

    def allowed(self, first: str, second: str) -> bool:
        """True when an entity may belong to both terminal types at once.

        Types on the same ISA chain always co-exist (a faculty *is* an
        employee); disjoint terminal subtypes need an explicit constraint.
        """
        if first == second:
            return True
        if first in self.schema.supertype_chain(second):
            return True
        if second in self.schema.supertype_chain(first):
            return True
        return frozenset((first, second)) in self._allowed

    def check_store(self, target_type: str, existing_types: Iterable[str]) -> None:
        """Verify that storing into *target_type* respects the table.

        *existing_types* are the terminal types the entity (by database
        key) already belongs to.  Raises :class:`ConstraintViolation` on
        the first disallowed pair — the STORE must then be aborted, as
        Chapter VI.G requires.
        """
        for existing in existing_types:
            if not self.allowed(target_type, existing):
                raise ConstraintViolation(
                    f"overlap constraint violation: an entity of {existing!r} "
                    f"may not also join {target_type!r} (no OVERLAP declared)"
                )

    def pairs(self) -> list[tuple[str, str]]:
        """The explicitly allowed pairs (for display/tests)."""
        return sorted(tuple(sorted(pair)) for pair in self._allowed)
