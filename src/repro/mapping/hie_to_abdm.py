"""Hierarchical-to-ABDM mapping: the AB(hierarchical) database.

One AB file per segment type.  Each segment occurrence's record carries
``(FILE, segment)``, ``(segment, dbkey)``, ``(parent, parent-dbkey)``
(NULL for roots), ``(hseq, n)`` — a monotonically increasing insertion
sequence number that realizes DL/I's *hierarchic order* deterministically
across MBDS backends — and one keyword per field.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.abdm.record import FILE_ATTRIBUTE, Record
from repro.abdm.values import Value
from repro.errors import SchemaError
from repro.hierarchical.model import HierarchicalSchema

#: Keyword holding the parent occurrence's database key.
PARENT_ATTRIBUTE = "parent"
#: Keyword holding the hierarchic insertion sequence number.
SEQUENCE_ATTRIBUTE = "hseq"


class ABHierarchicalMapping:
    """The hierarchical-to-ABDM mapping for one schema."""

    def __init__(self, schema: HierarchicalSchema) -> None:
        self.schema = schema
        self._key_counters: dict[str, int] = {}
        self._sequence = 0

    def file_names(self) -> list[str]:
        return list(self.schema.segments)

    def dbkey_attribute(self, segment: str) -> str:
        return segment

    def mint_key(self, segment: str) -> str:
        count = self._key_counters.get(segment, 0) + 1
        self._key_counters[segment] = count
        return f"{segment}${count}"

    def next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    def build_record(
        self,
        segment_name: str,
        dbkey: str,
        values: Mapping[str, Value],
        parent_dbkey: Optional[str],
        sequence: Optional[int] = None,
    ) -> Record:
        """Build one AB(hierarchical) segment record, type-checking fields."""
        segment = self.schema.segment(segment_name)
        known = {f.name for f in segment.fields}
        reserved = {PARENT_ATTRIBUTE, SEQUENCE_ATTRIBUTE, segment_name, FILE_ATTRIBUTE}
        for name in values:
            if name not in known:
                raise SchemaError(
                    f"segment {segment_name!r} has no field {name!r}"
                )
        if known & reserved:
            raise SchemaError(
                f"segment {segment_name!r} uses a reserved field name "
                f"({', '.join(sorted(known & reserved))})"
            )
        if segment.is_root and parent_dbkey is not None:
            raise SchemaError(f"root segment {segment_name!r} takes no parent")
        if not segment.is_root and parent_dbkey is None:
            raise SchemaError(f"segment {segment_name!r} requires a parent key")
        pairs: list[tuple[str, Value]] = [
            (FILE_ATTRIBUTE, segment_name),
            (segment_name, dbkey),
            (PARENT_ATTRIBUTE, parent_dbkey),
            (SEQUENCE_ATTRIBUTE, sequence if sequence is not None else self.next_sequence()),
        ]
        for segment_field in segment.fields:
            value = values.get(segment_field.name)
            if not segment_field.type.accepts(value):
                raise SchemaError(
                    f"field {segment_name}.{segment_field.name} "
                    f"({segment_field.type.name}) rejects {value!r}"
                )
            if (
                segment_field.length
                and isinstance(value, str)
                and len(value) > segment_field.length
            ):
                raise SchemaError(
                    f"field {segment_name}.{segment_field.name} "
                    f"CHAR({segment_field.length}) rejects {value!r}"
                )
            pairs.append((segment_field.name, value))
        return Record.from_pairs(pairs)

    def extract_values(self, segment_name: str, record: Record) -> dict[str, Value]:
        segment = self.schema.segment(segment_name)
        return {f.name: record.get(f.name) for f in segment.fields}
