"""Hierarchical-to-relational schema transformation (the Zawis interface).

The thesis's Chapter VII names the companion work: "that of Zawis, which
implements a means for accessing a hierarchical database via SQL
transactions" — the second cross-model pair on the road to MMDS.  The
transformation is the classic one: every segment type becomes a relation
whose columns are

* the segment's own database key (named after the segment, like every
  AB dbkey attribute),
* ``parent`` — the parent occurrence's key (omitted for roots),
* the segment's fields.

Because the AB(hierarchical) records already carry exactly these
keywords, the relational view needs **no data conversion**: the SQL
engine's retrievals run directly against the hierarchical files, and
parent-child joins are equi-joins between a segment's ``parent`` column
and its parent's key column — handed to ABDL's RETRIEVE-COMMON.

SQL over a hierarchical database is *read-mostly*: SELECT and field
UPDATEs translate cleanly, but INSERT and DELETE must go through DL/I
(ISRT needs a parent position; DLET deletes subtrees), so the engine
subclass rejects them with a pointer to the right interface.
"""

from __future__ import annotations

from repro.errors import TranslationError
from repro.hierarchical.model import FieldType, HierarchicalSchema
from repro.kc.controller import KernelController
from repro.kms.sql_engine import SqlEngine, SqlResult
from repro.mapping.rel_to_abdm import ABRelationalMapping
from repro.relational import sql
from repro.relational.model import Column, ColumnType, Relation, RelationalSchema

_TYPE_MAP = {
    FieldType.INT: ColumnType.INT,
    FieldType.FLOAT: ColumnType.FLOAT,
    FieldType.CHAR: ColumnType.CHAR,
}


def relational_view(schema: HierarchicalSchema) -> RelationalSchema:
    """Build the relational view of a hierarchical schema."""
    view = RelationalSchema(schema.name)
    for segment_name in schema.hierarchical_order():
        segment = schema.segment(segment_name)
        columns = [Column(segment_name, ColumnType.CHAR)]
        if not segment.is_root:
            columns.append(Column("parent", ColumnType.CHAR))
        for segment_field in segment.fields:
            columns.append(
                Column(
                    segment_field.name,
                    _TYPE_MAP[segment_field.type],
                    segment_field.length,
                )
            )
        view.add_relation(Relation(segment_name, columns, primary_key=[segment_name]))
    return view


class HierarchicalSqlEngine(SqlEngine):
    """SQL over a hierarchical database: SELECT and UPDATE only.

    The relational view exposes the key and ``parent`` columns for joins,
    but they are navigation structure, not data — updating them would
    corrupt the trees, and inserts/deletes need DL/I's positional
    semantics — so those paths are rejected with explicit guidance.
    """

    def __init__(
        self,
        hierarchical: HierarchicalSchema,
        kc: KernelController,
    ) -> None:
        view = relational_view(hierarchical)
        super().__init__(view, kc, ABRelationalMapping(view))
        self.hierarchical = hierarchical

    def _insert(self, statement: sql.Insert) -> SqlResult:
        raise TranslationError(
            "INSERT is not available through the SQL view of a hierarchical "
            "database; use the DL/I interface's ISRT call"
        )

    def _delete(self, statement: sql.Delete) -> SqlResult:
        raise TranslationError(
            "DELETE is not available through the SQL view of a hierarchical "
            "database (it would orphan subtrees); use the DL/I interface's "
            "DLET call"
        )

    def _update(self, statement: sql.Update) -> SqlResult:
        segment = self.hierarchical.segment(statement.table)
        protected = {statement.table, "parent"}
        for column, _ in statement.assignments:
            if column in protected:
                raise TranslationError(
                    f"column {column!r} is hierarchy structure and cannot be "
                    f"updated through SQL"
                )
            segment.require_field(column)
        return super()._update(statement)
