"""Functional-to-network schema transformation (thesis Chapter V).

The transformer turns a :class:`~repro.functional.FunctionalSchema` into a
:class:`~repro.network.NetworkSchema` plus a :class:`NetworkTransformation`
— the bookkeeping the modified KMS needs to translate CODASYL-DML against
the AB(functional) database.  The six functional constructs map as follows:

* **Entity types** become record types of the same name, each made the
  member of a set owned by SYSTEM (``system_<name>``, AUTOMATIC/FIXED).
* **Entity subtypes** become record types plus one ISA set per supertype,
  named ``<supertype>_<subtype>``, owned by the supertype's record type
  (AUTOMATIC/FIXED).
* **Non-entity types** map onto network attribute types: strings to
  CHARACTER of the declared length, integers to INTEGER, floating points
  to FLOAT, enumerations (and booleans) to CHARACTER of the longest
  literal.
* **Scalar functions** become attributes of the record type; **scalar
  multi-valued functions** become attributes whose duplicates flag is
  cleared (only one occurrence may be stored per record — the
  AB(functional) database realizes the multiple values as duplicated
  records).
* **Single-valued entity functions** become sets named after the function,
  owned by the *range* type's record and membered by the *domain* type's
  record (MANUAL/OPTIONAL, selection BY APPLICATION).
* **Multi-valued entity functions** become either one-to-many sets (owner
  = domain, member = range) or — when the range type declares an inverse
  multi-valued function back to the domain — a ``link_X`` record type with
  two sets, one owned by each side, as in Figure 5.1's ``teaching`` /
  ``taught_by`` / ``link_1`` trio.
* **Uniqueness constraints** clear the duplicates flag of the constrained
  attributes (rendered as ``DUPLICATES ARE NOT ALLOWED FOR ...``).
* **Overlap constraints** populate the overlap table consulted by STORE.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import TransformError
from repro.functional.model import (
    EntitySubtype,
    EntityType,
    Function,
    FunctionalSchema,
    ScalarKind,
    ScalarType,
)
from repro.network.model import (
    AttributeType,
    InsertionMode,
    NetAttribute,
    NetRecordType,
    NetSetType,
    NetworkSchema,
    RetentionMode,
    SelectionMode,
    SetSelect,
    SYSTEM_OWNER,
)


class SetKind(enum.Enum):
    """Why a set type exists in the transformed schema."""

    SYSTEM = "system"  # entity type membership under SYSTEM
    ISA = "isa"  # subtype under its supertype
    SINGLE_VALUED = "single_valued"  # single-valued entity function
    ONE_TO_MANY = "one_to_many"  # multi-valued function without inverse
    MANY_TO_MANY = "many_to_many"  # one side of a link_X pair


class Carrier(enum.Enum):
    """Which AB(functional) file holds the set-membership keyword.

    Single-valued functions store ``(set-name, owner-dbkey)`` in the
    *member* (domain) file; one-to-many and many-to-many functions store
    ``(set-name, member-dbkey)`` in the *owner* (domain) file; ISA and
    SYSTEM memberships are implicit in the shared database key.
    """

    MEMBER = "member"
    OWNER = "owner"
    IMPLICIT = "implicit"


@dataclass
class SetOrigin:
    """Provenance of one transformed set type."""

    set_name: str
    kind: SetKind
    carrier: Carrier
    #: Function that produced the set (None for SYSTEM/ISA sets).
    function_name: Optional[str] = None
    #: Type the function is declared on (its domain).
    domain_type: Optional[str] = None
    #: The function's range type (or the subtype for ISA sets).
    range_type: Optional[str] = None
    #: The partner set of a many-to-many pair (the other link side).
    partner_set: Optional[str] = None
    #: The link record joining a many-to-many pair.
    link_record: Optional[str] = None


@dataclass
class LinkInfo:
    """One ``link_X`` record type realizing a many-to-many function pair."""

    name: str
    first_set: str  # set owned by the first side's record type
    second_set: str
    first_type: str  # record/entity type of the first side
    second_type: str


@dataclass
class NetworkTransformation:
    """The transformer's full output.

    *schema* is the user-visible network schema; the remaining fields give
    the KMS the provenance information Chapter VI's translation rules
    dispatch on.
    """

    source: FunctionalSchema
    schema: NetworkSchema
    set_origins: dict[str, SetOrigin] = field(default_factory=dict)
    links: dict[str, LinkInfo] = field(default_factory=dict)

    def origin(self, set_name: str) -> SetOrigin:
        try:
            return self.set_origins[set_name]
        except KeyError as exc:
            raise TransformError(f"set {set_name!r} has no transformation origin") from exc

    def dbkey_attribute(self, record_name: str) -> str:
        """The attribute carrying a record's database key.

        By the AB(functional) conventions this is the record type's own
        name: the second keyword of every record is ``(type, dbkey)``.
        """
        return record_name

    def is_link_record(self, record_name: str) -> bool:
        return record_name in self.links


def scalar_to_attribute(name: str, scalar: ScalarType) -> NetAttribute:
    """Map one non-entity (scalar) type onto a network attribute (V.C)."""
    if scalar.kind is ScalarKind.STRING:
        return NetAttribute(name, AttributeType.CHARACTER, length=scalar.length)
    if scalar.kind is ScalarKind.INTEGER:
        return NetAttribute(name, AttributeType.INTEGER)
    if scalar.kind is ScalarKind.FLOAT:
        return NetAttribute(name, AttributeType.FLOAT)
    if scalar.kind in (ScalarKind.ENUMERATION, ScalarKind.BOOLEAN):
        return NetAttribute(name, AttributeType.CHARACTER, length=scalar.total_length)
    raise TransformError(f"cannot map scalar kind {scalar.kind!r}")


class FunctionalToNetworkTransformer:
    """Implements the Chapter V transformation algorithms."""

    def __init__(self, source: FunctionalSchema) -> None:
        self.source = source
        self.result = NetworkTransformation(source, NetworkSchema(f"{source.name}_net"))
        self._link_counter = 0
        self._linked_functions: set[tuple[str, str]] = set()

    # -- public entry point ----------------------------------------------------

    def transform(self) -> NetworkTransformation:
        """Run the whole transformation and return its output."""
        # Pass 1: record types for every entity type and subtype, with their
        # scalar attributes, plus SYSTEM / ISA sets (V.A, V.B, V.C).
        for entity in self.source.entity_types.values():
            self._transform_entity_type(entity)
        for subtype in self.source.subtypes.values():
            self._transform_subtype(subtype)
        # Pass 2: function sets.  Done after every record type exists so the
        # owner/member references always resolve (V.A's function rules).
        for type_name in self.source.type_names():
            node = self.source.entity_or_subtype(type_name)
            for function in node.functions:
                if not function.entity_valued:
                    continue
                if function.set_valued:
                    self._transform_multivalued(type_name, function)
                else:
                    self._transform_single_valued(type_name, function)
        # Pass 3: uniqueness constraints (V.D) as a loop following the type
        # transformations, exactly as the thesis implements it.
        self._apply_uniqueness()
        return self.result

    # -- entity types (V.A) -------------------------------------------------------

    def _transform_entity_type(self, entity: EntityType) -> None:
        record = NetRecordType(entity.name)
        self._add_scalar_attributes(record, entity.functions)
        self.result.schema.add_record(record)
        set_name = f"system_{entity.name}"
        self.result.schema.add_set(
            NetSetType(
                set_name,
                SYSTEM_OWNER,
                entity.name,
                insertion=InsertionMode.AUTOMATIC,
                retention=RetentionMode.FIXED,
                select=SetSelect(SelectionMode.BY_APPLICATION),
            )
        )
        self.result.set_origins[set_name] = SetOrigin(
            set_name, SetKind.SYSTEM, Carrier.IMPLICIT, range_type=entity.name
        )

    # -- entity subtypes (V.B) -------------------------------------------------------

    def _transform_subtype(self, subtype: EntitySubtype) -> None:
        record = NetRecordType(subtype.name)
        self._add_scalar_attributes(record, subtype.functions)
        self.result.schema.add_record(record)
        for supertype in subtype.supertypes:
            set_name = f"{supertype}_{subtype.name}"
            self.result.schema.add_set(
                NetSetType(
                    set_name,
                    supertype,
                    subtype.name,
                    insertion=InsertionMode.AUTOMATIC,
                    retention=RetentionMode.FIXED,
                    select=SetSelect(SelectionMode.BY_APPLICATION),
                )
            )
            self.result.set_origins[set_name] = SetOrigin(
                set_name,
                SetKind.ISA,
                Carrier.IMPLICIT,
                domain_type=supertype,
                range_type=subtype.name,
            )

    # -- scalar attributes (V.A / V.C) --------------------------------------------------

    def _add_scalar_attributes(self, record: NetRecordType, functions: list[Function]) -> None:
        # The database-key attribute comes first, mirroring the AB record
        # layout ``(FILE, type) (type, dbkey) ...``.
        record.attributes.append(
            NetAttribute(record.name, AttributeType.CHARACTER, length=0)
        )
        for function in functions:
            if function.entity_valued:
                continue
            scalar = function.result_scalar
            if scalar is None:
                raise TransformError(
                    f"function {record.name}.{function.name} has no resolved scalar type"
                )
            attribute = scalar_to_attribute(function.name, scalar)
            if function.is_scalar_multivalued:
                # Only one occurrence of a scalar multi-valued value may be
                # stored per record (V.A): the duplicates flag is cleared.
                attribute.duplicates_allowed = False
            record.attributes.append(attribute)

    # -- single-valued entity functions (V.A) ----------------------------------------------

    def _transform_single_valued(self, domain: str, function: Function) -> None:
        range_type = function.range_type_name
        assert range_type is not None
        set_name = function.name
        if self.result.schema.has_set(set_name):
            raise TransformError(
                f"function set name {set_name!r} collides with an existing set; "
                f"rename the function on {domain!r}"
            )
        self.result.schema.add_set(
            NetSetType(
                set_name,
                range_type,  # owner (and ancestor) is the range record type
                domain,  # member is the domain record type
                insertion=InsertionMode.MANUAL,
                retention=RetentionMode.OPTIONAL,
                select=SetSelect(SelectionMode.BY_APPLICATION),
            )
        )
        self.result.set_origins[set_name] = SetOrigin(
            set_name,
            SetKind.SINGLE_VALUED,
            Carrier.MEMBER,
            function_name=function.name,
            domain_type=domain,
            range_type=range_type,
        )

    # -- multi-valued entity functions (V.A) ------------------------------------------------

    def _transform_multivalued(self, domain: str, function: Function) -> None:
        if (domain, function.name) in self._linked_functions:
            return  # already consumed as the inverse of a many-to-many pair
        range_type = function.range_type_name
        assert range_type is not None
        inverse = self._find_inverse(domain, function)
        if inverse is not None:
            self._transform_many_to_many(domain, function, range_type, inverse)
        else:
            self._transform_one_to_many(domain, function, range_type)

    def _find_inverse(self, domain: str, function: Function) -> Optional[Function]:
        """Find an unconsumed multi-valued function on the range type whose
        own range is *domain* (the many-to-many test of V.A)."""
        range_type = function.range_type_name
        if range_type is None or not self.source.is_entity_name(range_type):
            return None
        for candidate in self.source.entity_or_subtype(range_type).functions:
            if candidate.is_multivalued_entity and candidate.range_type_name == domain:
                if range_type == domain and candidate.name == function.name:
                    continue  # a self-referential function is not its own inverse
                if (range_type, candidate.name) in self._linked_functions:
                    continue
                return candidate
        return None

    def _transform_many_to_many(
        self,
        domain: str,
        function: Function,
        range_type: str,
        inverse: Function,
    ) -> None:
        self._link_counter += 1
        link_name = f"link_{self._link_counter}"
        link_record = NetRecordType(
            link_name,
            [NetAttribute(link_name, AttributeType.CHARACTER, length=0)],
        )
        self.result.schema.add_record(link_record)
        for set_name, owner in ((function.name, domain), (inverse.name, range_type)):
            if self.result.schema.has_set(set_name):
                raise TransformError(
                    f"function set name {set_name!r} collides with an existing set"
                )
            self.result.schema.add_set(
                NetSetType(
                    set_name,
                    owner,
                    link_name,
                    insertion=InsertionMode.MANUAL,
                    retention=RetentionMode.OPTIONAL,
                    select=SetSelect(SelectionMode.BY_APPLICATION),
                )
            )
        self.result.set_origins[function.name] = SetOrigin(
            function.name,
            SetKind.MANY_TO_MANY,
            Carrier.OWNER,
            function_name=function.name,
            domain_type=domain,
            range_type=range_type,
            partner_set=inverse.name,
            link_record=link_name,
        )
        self.result.set_origins[inverse.name] = SetOrigin(
            inverse.name,
            SetKind.MANY_TO_MANY,
            Carrier.OWNER,
            function_name=inverse.name,
            domain_type=range_type,
            range_type=domain,
            partner_set=function.name,
            link_record=link_name,
        )
        self.result.links[link_name] = LinkInfo(
            link_name, function.name, inverse.name, domain, range_type
        )
        self._linked_functions.add((domain, function.name))
        self._linked_functions.add((range_type, inverse.name))

    def _transform_one_to_many(self, domain: str, function: Function, range_type: str) -> None:
        set_name = function.name
        if self.result.schema.has_set(set_name):
            raise TransformError(
                f"function set name {set_name!r} collides with an existing set"
            )
        self.result.schema.add_set(
            NetSetType(
                set_name,
                domain,  # owner is the domain record type
                range_type,  # member is the range record type
                insertion=InsertionMode.MANUAL,
                retention=RetentionMode.OPTIONAL,
                select=SetSelect(SelectionMode.BY_APPLICATION),
            )
        )
        self.result.set_origins[set_name] = SetOrigin(
            set_name,
            SetKind.ONE_TO_MANY,
            Carrier.OWNER,
            function_name=function.name,
            domain_type=domain,
            range_type=range_type,
        )

    # -- uniqueness constraints (V.D) ----------------------------------------------------

    def _apply_uniqueness(self) -> None:
        for constraint in self.source.uniqueness:
            record = self.result.schema.record(constraint.within)
            for function_name in constraint.functions:
                attribute = record.attribute(function_name)
                if attribute is None:
                    raise TransformError(
                        f"UNIQUE names {function_name!r}, which did not map to an "
                        f"attribute of record {constraint.within!r} (entity-valued "
                        f"functions cannot carry uniqueness here)"
                    )
                attribute.duplicates_allowed = False


def transform_schema(source: FunctionalSchema) -> NetworkTransformation:
    """Transform *source* into a network schema (the LIL's mapping step)."""
    return FunctionalToNetworkTransformer(source).transform()
