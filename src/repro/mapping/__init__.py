"""Data-model transformations (thesis Chapters III and V).

* :mod:`repro.mapping.fun_to_net` — the direct functional-to-network
  schema transformer (the thesis's selected strategy);
* :mod:`repro.mapping.fun_to_abdm` — the functional-to-ABDM mapping
  defining the AB(functional) database layout;
* :mod:`repro.mapping.net_to_abdm` — the network-to-ABDM mapping defining
  the AB(network) layout (the Emdi baseline target);
* :mod:`repro.mapping.rel_to_abdm` / :mod:`repro.mapping.hie_to_abdm` —
  the AB(relational) and AB(hierarchical) layouts for the other two
  language interfaces;
* :mod:`repro.mapping.hie_to_rel` — the hierarchical-to-relational view
  behind SQL-over-hierarchical sessions (the Chapter VII Zawis pair);
* :mod:`repro.mapping.two_step` — the two-step transformation baseline
  used to benchmark the direct strategy against the alternatives;
* :mod:`repro.mapping.overlap` — the overlap table consulted by STORE.
"""

from repro.mapping.fun_to_abdm import ABFileLayout, ABFunctionalMapping, FunctionValue
from repro.mapping.fun_to_net import (
    Carrier,
    FunctionalToNetworkTransformer,
    LinkInfo,
    NetworkTransformation,
    SetKind,
    SetOrigin,
    transform_schema,
)
from repro.mapping.hie_to_abdm import ABHierarchicalMapping, PARENT_ATTRIBUTE, SEQUENCE_ATTRIBUTE
from repro.mapping.hie_to_rel import HierarchicalSqlEngine, relational_view
from repro.mapping.net_to_abdm import ABNetworkLayout, ABNetworkMapping
from repro.mapping.rel_to_abdm import ABRelationalMapping
from repro.mapping.overlap import OverlapTable
from repro.mapping.two_step import (
    IntermediateForm,
    lower_to_intermediate,
    raise_to_network,
    transform_schema_two_step,
)

__all__ = [
    "ABFileLayout",
    "ABFunctionalMapping",
    "ABHierarchicalMapping",
    "ABNetworkLayout",
    "ABNetworkMapping",
    "ABRelationalMapping",
    "HierarchicalSqlEngine",
    "PARENT_ATTRIBUTE",
    "SEQUENCE_ATTRIBUTE",
    "Carrier",
    "FunctionValue",
    "FunctionalToNetworkTransformer",
    "IntermediateForm",
    "LinkInfo",
    "NetworkTransformation",
    "OverlapTable",
    "SetKind",
    "SetOrigin",
    "lower_to_intermediate",
    "raise_to_network",
    "relational_view",
    "transform_schema",
    "transform_schema_two_step",
]
