"""The two-step transformation baseline (thesis III.B.1 alternatives).

Rodeck weighed three strategies for letting CODASYL-DML reach a functional
database: the **direct language interface** (one-step functional-to-network
schema transformation, the one the thesis implements), **AB-AB
postprocessing** and **high-level preprocessing** — both of which route
through an intermediate representation and therefore pay a second pass.

To turn the thesis's qualitative argument ("a one-step schema
transformation, a faster schema transformation") into a measurable claim,
this module implements an honest two-step pipeline: step one lowers the
functional schema into the AB(functional) intermediate description (file
layouts plus a relationship catalog, exactly what an AB-AB interface would
receive), and step two reconstructs a network schema from that
intermediate form alone, re-deriving what the direct transformer reads
straight off the functional schema.  The outputs are equivalent — the
benchmark compares the cost, not the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.functional.model import FunctionalSchema
from repro.mapping.fun_to_abdm import ABFunctionalMapping
from repro.mapping.fun_to_net import (
    Carrier,
    LinkInfo,
    NetworkTransformation,
    SetKind,
    SetOrigin,
    scalar_to_attribute,
)
from repro.network.model import (
    AttributeType,
    InsertionMode,
    NetAttribute,
    NetRecordType,
    NetSetType,
    NetworkSchema,
    RetentionMode,
    SelectionMode,
    SetSelect,
    SYSTEM_OWNER,
)


@dataclass
class IntermediateFile:
    """Step-one output: one AB(functional) file description."""

    type_name: str
    is_subtype: bool
    supertypes: list[str] = field(default_factory=list)
    #: (attribute, scalar-type, multivalued) triples for scalar functions.
    scalar_items: list[tuple[str, object, bool]] = field(default_factory=list)
    #: (function, range-type, multivalued) triples for entity functions.
    entity_items: list[tuple[str, str, bool]] = field(default_factory=list)
    unique_items: list[str] = field(default_factory=list)


@dataclass
class IntermediateForm:
    """The full step-one intermediate description."""

    name: str
    files: list[IntermediateFile] = field(default_factory=list)


def lower_to_intermediate(schema: FunctionalSchema) -> IntermediateForm:
    """Step one: lower the functional schema to the AB-level description."""
    mapping = ABFunctionalMapping(schema)
    form = IntermediateForm(schema.name)
    for type_name in mapping.file_names():
        node = schema.entity_or_subtype(type_name)
        is_subtype = type_name in schema.subtypes
        entry = IntermediateFile(
            type_name,
            is_subtype,
            supertypes=list(getattr(node, "supertypes", [])),
            unique_items=schema.unique_functions_of(type_name),
        )
        for function in node.functions:
            if function.is_entity_valued:
                entry.entity_items.append(
                    (function.name, function.range_type_name or "", function.set_valued)
                )
            else:
                entry.scalar_items.append(
                    (function.name, function.result_scalar, function.set_valued)
                )
        form.files.append(entry)
    return form


def raise_to_network(form: IntermediateForm) -> NetworkTransformation:
    """Step two: reconstruct a network schema from the intermediate form."""
    schema = NetworkSchema(f"{form.name}_net")
    # Rebuild a throw-away functional shell so NetworkTransformation's
    # source link stays usable for provenance queries.
    result = NetworkTransformation(FunctionalSchema(form.name), schema)
    by_name = {entry.type_name: entry for entry in form.files}
    link_counter = 0
    consumed: set[tuple[str, str]] = set()
    for entry in form.files:
        record = NetRecordType(entry.type_name)
        record.attributes.append(
            NetAttribute(entry.type_name, AttributeType.CHARACTER, length=0)
        )
        for name, scalar, multivalued in entry.scalar_items:
            attribute = scalar_to_attribute(name, scalar)  # type: ignore[arg-type]
            if multivalued or name in entry.unique_items:
                attribute.duplicates_allowed = False
            record.attributes.append(attribute)
        schema.add_record(record)
        if entry.is_subtype:
            for supertype in entry.supertypes:
                set_name = f"{supertype}_{entry.type_name}"
                schema.add_set(
                    NetSetType(
                        set_name,
                        supertype,
                        entry.type_name,
                        insertion=InsertionMode.AUTOMATIC,
                        retention=RetentionMode.FIXED,
                        select=SetSelect(SelectionMode.BY_APPLICATION),
                    )
                )
                result.set_origins[set_name] = SetOrigin(
                    set_name,
                    SetKind.ISA,
                    Carrier.IMPLICIT,
                    domain_type=supertype,
                    range_type=entry.type_name,
                )
        else:
            set_name = f"system_{entry.type_name}"
            schema.add_set(
                NetSetType(
                    set_name,
                    SYSTEM_OWNER,
                    entry.type_name,
                    insertion=InsertionMode.AUTOMATIC,
                    retention=RetentionMode.FIXED,
                    select=SetSelect(SelectionMode.BY_APPLICATION),
                )
            )
            result.set_origins[set_name] = SetOrigin(
                set_name, SetKind.SYSTEM, Carrier.IMPLICIT, range_type=entry.type_name
            )
    # Second sweep for relationship items, mirroring the direct
    # transformer's pass 2 but reading the intermediate catalog.
    for entry in form.files:
        for name, range_type, multivalued in entry.entity_items:
            if (entry.type_name, name) in consumed:
                continue
            if not multivalued:
                schema.add_set(
                    NetSetType(
                        name,
                        range_type,
                        entry.type_name,
                        insertion=InsertionMode.MANUAL,
                        retention=RetentionMode.OPTIONAL,
                        select=SetSelect(SelectionMode.BY_APPLICATION),
                    )
                )
                result.set_origins[name] = SetOrigin(
                    name,
                    SetKind.SINGLE_VALUED,
                    Carrier.MEMBER,
                    function_name=name,
                    domain_type=entry.type_name,
                    range_type=range_type,
                )
                continue
            inverse: Optional[tuple[str, str, bool]] = None
            partner = by_name.get(range_type)
            if partner is not None:
                for candidate in partner.entity_items:
                    cand_name, cand_range, cand_multi = candidate
                    if not cand_multi or cand_range != entry.type_name:
                        continue
                    if range_type == entry.type_name and cand_name == name:
                        continue
                    if (range_type, cand_name) in consumed:
                        continue
                    inverse = candidate
                    break
            if inverse is None:
                schema.add_set(
                    NetSetType(
                        name,
                        entry.type_name,
                        range_type,
                        insertion=InsertionMode.MANUAL,
                        retention=RetentionMode.OPTIONAL,
                        select=SetSelect(SelectionMode.BY_APPLICATION),
                    )
                )
                result.set_origins[name] = SetOrigin(
                    name,
                    SetKind.ONE_TO_MANY,
                    Carrier.OWNER,
                    function_name=name,
                    domain_type=entry.type_name,
                    range_type=range_type,
                )
                continue
            link_counter += 1
            link_name = f"link_{link_counter}"
            schema.add_record(
                NetRecordType(
                    link_name,
                    [NetAttribute(link_name, AttributeType.CHARACTER, length=0)],
                )
            )
            inverse_name = inverse[0]
            for set_name, owner in ((name, entry.type_name), (inverse_name, range_type)):
                schema.add_set(
                    NetSetType(
                        set_name,
                        owner,
                        link_name,
                        insertion=InsertionMode.MANUAL,
                        retention=RetentionMode.OPTIONAL,
                        select=SetSelect(SelectionMode.BY_APPLICATION),
                    )
                )
            result.set_origins[name] = SetOrigin(
                name,
                SetKind.MANY_TO_MANY,
                Carrier.OWNER,
                function_name=name,
                domain_type=entry.type_name,
                range_type=range_type,
                partner_set=inverse_name,
                link_record=link_name,
            )
            result.set_origins[inverse_name] = SetOrigin(
                inverse_name,
                SetKind.MANY_TO_MANY,
                Carrier.OWNER,
                function_name=inverse_name,
                domain_type=range_type,
                range_type=entry.type_name,
                partner_set=name,
                link_record=link_name,
            )
            result.links[link_name] = LinkInfo(
                link_name, name, inverse_name, entry.type_name, range_type
            )
            consumed.add((entry.type_name, name))
            consumed.add((range_type, inverse_name))
    return result


def transform_schema_two_step(schema: FunctionalSchema) -> NetworkTransformation:
    """The full two-step pipeline (the benchmark baseline)."""
    return raise_to_network(lower_to_intermediate(schema))
