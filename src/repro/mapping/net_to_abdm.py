"""Network-to-ABDM mapping: the AB(network) database (thesis III.A).

The Banerjee/Wortherly mapping retains the network's records and sets in
attribute-based constructs: each record type becomes an AB file whose
records carry ``(FILE, record-type)``, ``(record-type, dbkey)``, one
keyword per data-item, and one keyword per set type in which the record
type is a *member* — the keyword's attribute is the set name and its value
is the owning record's database key (NULL while disconnected).

This is the target layout of the original Emdi CODASYL-DML translation,
kept here both because MLDS supports native network databases alongside
transformed functional ones, and because it is the baseline the thesis's
modified translation is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.abdm.record import FILE_ATTRIBUTE, Record
from repro.abdm.values import Value
from repro.errors import SchemaError
from repro.network.model import NetworkSchema


@dataclass
class ABNetworkLayout:
    """Keyword layout of one AB(network) file."""

    record_type: str
    attributes: list[str] = field(default_factory=list)
    member_sets: list[str] = field(default_factory=list)


class ABNetworkMapping:
    """The network-to-ABDM mapping for one schema."""

    def __init__(self, schema: NetworkSchema) -> None:
        self.schema = schema
        self._key_counters: dict[str, int] = {}

    # -- structure ---------------------------------------------------------------

    def file_names(self) -> list[str]:
        return list(self.schema.records)

    def layout(self, record_type: str) -> ABNetworkLayout:
        record = self.schema.record(record_type)
        layout = ABNetworkLayout(record_type)
        layout.attributes = [FILE_ATTRIBUTE, record_type] + [
            a.name for a in record.attributes if a.name != record_type
        ]
        layout.member_sets = [s.name for s in self.schema.sets_with_member(record_type)]
        return layout

    def dbkey_attribute(self, record_type: str) -> str:
        return record_type

    # -- keys ---------------------------------------------------------------------

    def mint_key(self, record_type: str) -> str:
        """Mint the next database key for *record_type*."""
        count = self._key_counters.get(record_type, 0) + 1
        self._key_counters[record_type] = count
        return f"{record_type}${count}"

    # -- records -------------------------------------------------------------------

    def build_record(
        self,
        record_type: str,
        dbkey: str,
        values: Mapping[str, Value],
        memberships: Optional[Mapping[str, Optional[str]]] = None,
    ) -> Record:
        """Build one AB(network) record.

        *values* maps data-item names to values; *memberships* maps set
        names to owner database keys (missing sets default to NULL, i.e.
        disconnected).
        """
        record_def = self.schema.record(record_type)
        item_names = {a.name for a in record_def.attributes}
        for name in values:
            if name not in item_names:
                raise SchemaError(
                    f"record type {record_type!r} has no data item {name!r}"
                )
        memberships = memberships or {}
        member_sets = [s.name for s in self.schema.sets_with_member(record_type)]
        for set_name in memberships:
            if set_name not in member_sets:
                raise SchemaError(
                    f"record type {record_type!r} is not a member of set {set_name!r}"
                )
        pairs: list[tuple[str, Value]] = [
            (FILE_ATTRIBUTE, record_type),
            (record_type, dbkey),
        ]
        for attribute in record_def.attributes:
            if attribute.name == record_type:
                continue
            pairs.append((attribute.name, values.get(attribute.name)))
        for set_name in member_sets:
            pairs.append((set_name, memberships.get(set_name)))
        return Record.from_pairs(pairs)

    def extract_values(self, record_type: str, record: Record) -> dict[str, Value]:
        """Project an AB record onto the record type's data items."""
        record_def = self.schema.record(record_type)
        return {
            attribute.name: record.get(attribute.name)
            for attribute in record_def.attributes
        }
