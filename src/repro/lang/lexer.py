"""A configurable lexer and token stream shared by the language front-ends.

The lexer recognizes:

* identifiers / keywords: ``[A-Za-z_][A-Za-z0-9_$]*`` (``$`` appears inside
  database keys such as ``person$3``); words found in the configured keyword
  set are case-insensitively normalized to upper case and typed KEYWORD,
* numbers: integer and floating literals (typed NUMBER, value is ``int`` or
  ``float``),
* strings: single-quoted, with ``''`` as the escape for an embedded quote,
* punctuation: the longest match from the configured symbol list.

Comments run from ``--`` to end of line (the DAPLEX/Ada convention; harmless
to the other languages because none of them uses ``--`` as an operator).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from repro.errors import LexError, ParseError


class TokenType(enum.Enum):
    """Lexical classes produced by :class:`Lexer`."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: TokenType
    text: str
    value: Union[int, float, str, None]
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.text!r})"


_DEFAULT_SYMBOLS = (
    "<=", ">=", "!=", "..",
    "(", ")", "<", ">", "=", ",", ";", ":", ".", "*", "-", "+", "/",
)


class Lexer:
    """Tokenizer configured with a keyword vocabulary and symbol list."""

    def __init__(
        self,
        keywords: Iterable[str],
        symbols: Sequence[str] = _DEFAULT_SYMBOLS,
    ) -> None:
        self._keywords = {k.upper() for k in keywords}
        # Longest-first so that multi-character symbols win.
        self._symbols = sorted(symbols, key=len, reverse=True)

    def tokenize(self, text: str) -> list[Token]:
        """Tokenize *text*, returning the token list terminated by EOF."""
        tokens: list[Token] = []
        pos = 0
        line = 1
        line_start = 0
        length = len(text)
        while pos < length:
            ch = text[pos]
            if ch == "\n":
                line += 1
                pos += 1
                line_start = pos
                continue
            if ch in " \t\r":
                pos += 1
                continue
            if text.startswith("--", pos):
                end = text.find("\n", pos)
                pos = length if end < 0 else end
                continue
            column = pos - line_start + 1
            if ch == "'":
                token, pos = self._lex_string(text, pos, line, column)
            elif ch.isdigit() or (
                ch == "." and pos + 1 < length and text[pos + 1].isdigit()
            ):
                token, pos = self._lex_number(text, pos, line, column)
            elif ch.isalpha() or ch == "_":
                token, pos = self._lex_word(text, pos, line, column)
            else:
                token, pos = self._lex_symbol(text, pos, line, column)
            tokens.append(token)
        tokens.append(Token(TokenType.EOF, "", None, line, length - line_start + 1))
        return tokens

    def _lex_string(self, text: str, pos: int, line: int, column: int) -> tuple[Token, int]:
        start = pos
        pos += 1
        chunks: list[str] = []
        while pos < len(text):
            ch = text[pos]
            if ch == "'":
                if text.startswith("''", pos):
                    chunks.append("'")
                    pos += 2
                    continue
                pos += 1
                return (
                    Token(TokenType.STRING, text[start:pos], "".join(chunks), line, column),
                    pos,
                )
            if ch == "\n":
                break
            chunks.append(ch)
            pos += 1
        raise LexError("unterminated string literal", line, column)

    def _lex_number(self, text: str, pos: int, line: int, column: int) -> tuple[Token, int]:
        start = pos
        length = len(text)
        while pos < length and text[pos].isdigit():
            pos += 1
        is_float = False
        # A '..' range operator must not be eaten as a float's decimal point.
        if pos < length and text[pos] == "." and not text.startswith("..", pos):
            nxt = text[pos + 1] if pos + 1 < length else ""
            if nxt.isdigit():
                is_float = True
                pos += 1
                while pos < length and text[pos].isdigit():
                    pos += 1
        # Scientific notation: digits [.digits] (e|E) [+|-] digits.  The
        # exponent marker is only consumed when a digit follows, so an
        # identifier starting with 'e' after a number still lexes apart.
        if pos < length and text[pos] in "eE":
            exp_end = pos + 1
            if exp_end < length and text[exp_end] in "+-":
                exp_end += 1
            if exp_end < length and text[exp_end].isdigit():
                pos = exp_end
                while pos < length and text[pos].isdigit():
                    pos += 1
                is_float = True
        raw = text[start:pos]
        value: Union[int, float] = float(raw) if is_float else int(raw)
        return Token(TokenType.NUMBER, raw, value, line, column), pos

    def _lex_word(self, text: str, pos: int, line: int, column: int) -> tuple[Token, int]:
        start = pos
        length = len(text)
        while pos < length and (text[pos].isalnum() or text[pos] in "_$"):
            pos += 1
        raw = text[start:pos]
        upper = raw.upper()
        if upper in self._keywords:
            # text carries the normalized keyword; value keeps the raw
            # spelling so a keyword used as a name round-trips faithfully.
            return Token(TokenType.KEYWORD, upper, raw, line, column), pos
        return Token(TokenType.IDENT, raw, raw, line, column), pos

    def _lex_symbol(self, text: str, pos: int, line: int, column: int) -> tuple[Token, int]:
        for symbol in self._symbols:
            if text.startswith(symbol, pos):
                return (
                    Token(TokenType.SYMBOL, symbol, symbol, line, column),
                    pos + len(symbol),
                )
        raise LexError(f"unexpected character {text[pos]!r}", line, column)


class TokenStream:
    """A cursor over a token list with the usual recursive-descent helpers."""

    def __init__(self, tokens: Sequence[Token]) -> None:
        self._tokens = list(tokens)
        self._pos = 0

    # -- inspection -----------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    @property
    def current(self) -> Token:
        return self.peek()

    def at_end(self) -> bool:
        return self.current.type is TokenType.EOF

    def at_keyword(self, *names: str) -> bool:
        token = self.current
        return token.type is TokenType.KEYWORD and token.text in names

    def at_symbol(self, *symbols: str) -> bool:
        token = self.current
        return token.type is TokenType.SYMBOL and token.text in symbols

    # -- consumption ----------------------------------------------------------

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def accept_keyword(self, *names: str) -> Optional[Token]:
        if self.at_keyword(*names):
            return self.advance()
        return None

    def accept_symbol(self, *symbols: str) -> Optional[Token]:
        if self.at_symbol(*symbols):
            return self.advance()
        return None

    def expect_keyword(self, *names: str) -> Token:
        token = self.accept_keyword(*names)
        if token is None:
            raise self.error(f"expected {' or '.join(names)}")
        return token

    def expect_symbol(self, *symbols: str) -> Token:
        token = self.accept_symbol(*symbols)
        if token is None:
            raise self.error(f"expected {' or '.join(repr(s) for s in symbols)}")
        return token

    def expect_ident(self, what: str = "identifier") -> Token:
        token = self.current
        if token.type is TokenType.IDENT:
            return self.advance()
        # Unreserved keywords may still serve as names (e.g. an attribute
        # called 'name' under a DDL that reserves NAME); hand back an
        # IDENT token carrying the raw spelling so rendering round-trips.
        if token.type is TokenType.KEYWORD:
            self.advance()
            raw = token.value if isinstance(token.value, str) else token.text
            return Token(TokenType.IDENT, raw, raw, token.line, token.column)
        raise self.error(f"expected {what}")

    def expect_eof(self) -> None:
        if not self.at_end():
            raise self.error("unexpected trailing input")

    # -- errors ---------------------------------------------------------------

    def error(self, message: str) -> ParseError:
        token = self.current
        found = token.text or "end of input"
        return ParseError(f"{message}, found {found!r}", token.line, token.column)
