"""Shared lexing infrastructure for the three MLDS language front-ends.

ABDL, DAPLEX and CODASYL (schema DDL and DML) share token shapes — keywords,
identifiers, numbers, quoted strings and punctuation — so one configurable
lexer plus one cursor-style token stream serves all of them.
"""

from repro.lang.lexer import Lexer, Token, TokenStream, TokenType

__all__ = ["Lexer", "Token", "TokenStream", "TokenType"]
