"""SQL front-end: DDL and DML parsers for the relational interface.

The subset MLDS's relational interface needs:

.. code-block:: sql

    -- DDL
    DATABASE registrar;
    CREATE TABLE enrollment (sid INT, cid INT, grade CHAR(2),
                             PRIMARY KEY (sid, cid));

    -- DML
    INSERT INTO enrollment VALUES (1, 7, 'A');
    INSERT INTO enrollment (sid, cid) VALUES (2, 7);
    SELECT sid, grade FROM enrollment WHERE cid = 7 AND grade <> 'F';
    SELECT cid, COUNT(*), AVG(points) FROM results GROUP BY cid;
    SELECT name, grade FROM student, enrollment WHERE student.sid = enrollment.sid;
    UPDATE enrollment SET grade = 'B' WHERE sid = 1;
    DELETE FROM enrollment WHERE grade = 'F';

WHERE clauses are conjunctions optionally OR-ed together (the DNF the
kernel wants); ``<>`` and ``!=`` are both accepted.  A two-table FROM
clause requires exactly one cross-table equality in the WHERE — the
equi-join MLDS hands to ABDL's RETRIEVE-COMMON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.abdm.values import Value
from repro.errors import ParseError
from repro.lang.lexer import Lexer, TokenStream, TokenType
from repro.relational.model import Column, ColumnType, Relation, RelationalSchema

# -- AST ---------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    """A possibly table-qualified column reference."""

    column: str
    table: Optional[str] = None

    def render(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class SqlComparison:
    """``ref op literal`` or — for join conditions — ``ref op ref``."""

    left: ColumnRef
    operator: str
    value: Value = None
    right: Optional[ColumnRef] = None

    @property
    def is_join(self) -> bool:
        return self.right is not None


@dataclass(frozen=True)
class Where:
    """A WHERE clause in disjunctive normal form."""

    clauses: tuple[tuple[SqlComparison, ...], ...]

    def __init__(self, clauses: Sequence[Sequence[SqlComparison]]) -> None:
        object.__setattr__(self, "clauses", tuple(tuple(c) for c in clauses))

    def comparisons(self):
        for clause in self.clauses:
            yield from clause


@dataclass(frozen=True)
class SelectItem:
    """One projection item: column, ``*`` or an aggregate."""

    ref: Optional[ColumnRef] = None
    aggregate: Optional[str] = None  # COUNT/AVG/SUM/MIN/MAX
    star: bool = False

    def render(self) -> str:
        if self.star and self.aggregate:
            return f"{self.aggregate}(*)"
        if self.star:
            return "*"
        if self.aggregate:
            return f"{self.aggregate}({self.ref.render()})"
        return self.ref.render()


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]
    tables: tuple[str, ...]
    where: Optional[Where] = None
    group_by: Optional[ColumnRef] = None

    def __init__(self, items, tables, where=None, group_by=None) -> None:
        object.__setattr__(self, "items", tuple(items))
        object.__setattr__(self, "tables", tuple(tables))
        object.__setattr__(self, "where", where)
        object.__setattr__(self, "group_by", group_by)


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]  # empty = positional over the full heading
    values: tuple[Value, ...]

    def __init__(self, table, columns, values) -> None:
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "values", tuple(values))


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Value], ...]
    where: Optional[Where] = None

    def __init__(self, table, assignments, where=None) -> None:
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "assignments", tuple(assignments))
        object.__setattr__(self, "where", where)


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Where] = None


SqlStatement = Union[Select, Insert, Update, Delete]

# -- lexing -----------------------------------------------------------------------

_KEYWORDS = (
    "DATABASE",
    "CREATE",
    "TABLE",
    "PRIMARY",
    "KEY",
    "INT",
    "INTEGER",
    "FLOAT",
    "CHAR",
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "AND",
    "OR",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "NULL",
    "COUNT",
    "AVG",
    "SUM",
    "MIN",
    "MAX",
)

_SYMBOLS = ("<=", ">=", "<>", "!=", "(", ")", ",", ";", ".", "*", "=", "<", ">", "-")

_lexer = Lexer(_KEYWORDS, _SYMBOLS)

# -- DDL ---------------------------------------------------------------------------


def parse_relational_schema(text: str) -> RelationalSchema:
    """Parse ``DATABASE name; CREATE TABLE ...`` DDL text."""
    stream = TokenStream(_lexer.tokenize(text))
    stream.expect_keyword("DATABASE")
    schema = RelationalSchema(stream.expect_ident("database name").text)
    stream.expect_symbol(";")
    while not stream.at_end():
        stream.expect_keyword("CREATE")
        stream.expect_keyword("TABLE")
        schema.add_relation(_parse_table(stream))
    return schema


def _parse_table(stream: TokenStream) -> Relation:
    relation = Relation(stream.expect_ident("table name").text)
    stream.expect_symbol("(")
    while True:
        if stream.accept_keyword("PRIMARY"):
            stream.expect_keyword("KEY")
            stream.expect_symbol("(")
            relation.primary_key.append(stream.expect_ident("key column").text)
            while stream.accept_symbol(","):
                relation.primary_key.append(stream.expect_ident("key column").text)
            stream.expect_symbol(")")
        else:
            name = stream.expect_ident("column name").text
            if stream.accept_keyword("INT") or stream.accept_keyword("INTEGER"):
                relation.columns.append(Column(name, ColumnType.INT))
            elif stream.accept_keyword("FLOAT"):
                relation.columns.append(Column(name, ColumnType.FLOAT))
            else:
                stream.expect_keyword("CHAR")
                length = 0
                if stream.accept_symbol("("):
                    token = stream.current
                    if token.type is not TokenType.NUMBER:
                        raise stream.error("expected a CHAR length")
                    stream.advance()
                    length = int(token.value)  # type: ignore[arg-type]
                    stream.expect_symbol(")")
                relation.columns.append(Column(name, ColumnType.CHAR, length))
        if not stream.accept_symbol(","):
            break
    stream.expect_symbol(")")
    stream.expect_symbol(";")
    if not relation.columns:
        raise ParseError(f"table {relation.name!r} declares no columns")
    return relation


# -- DML ---------------------------------------------------------------------------


def parse_statement(text: str) -> SqlStatement:
    """Parse one SQL DML statement."""
    stream = TokenStream(_lexer.tokenize(text))
    statement = _parse_statement(stream)
    stream.accept_symbol(";")
    stream.expect_eof()
    return statement


def parse_script(text: str) -> list[SqlStatement]:
    """Parse a sequence of SQL DML statements."""
    stream = TokenStream(_lexer.tokenize(text))
    statements = []
    while not stream.at_end():
        statements.append(_parse_statement(stream))
        stream.accept_symbol(";")
    return statements


def _parse_statement(stream: TokenStream) -> SqlStatement:
    if stream.accept_keyword("SELECT"):
        return _parse_select(stream)
    if stream.accept_keyword("INSERT"):
        return _parse_insert(stream)
    if stream.accept_keyword("UPDATE"):
        return _parse_update(stream)
    if stream.accept_keyword("DELETE"):
        stream.expect_keyword("FROM")
        table = stream.expect_ident("table name").text
        where = _parse_where(stream) if stream.accept_keyword("WHERE") else None
        return Delete(table, where)
    raise stream.error("expected SELECT, INSERT, UPDATE or DELETE")


_AGGREGATES = ("COUNT", "AVG", "SUM", "MIN", "MAX")


def _parse_select(stream: TokenStream) -> Select:
    items = [_parse_select_item(stream)]
    while stream.accept_symbol(","):
        items.append(_parse_select_item(stream))
    stream.expect_keyword("FROM")
    tables = [stream.expect_ident("table name").text]
    while stream.accept_symbol(","):
        tables.append(stream.expect_ident("table name").text)
    if len(tables) > 2:
        raise ParseError("this SQL subset joins at most two tables")
    where = _parse_where(stream) if stream.accept_keyword("WHERE") else None
    group_by = None
    if stream.accept_keyword("GROUP"):
        stream.expect_keyword("BY")
        group_by = _parse_column_ref(stream)
    return Select(items, tables, where, group_by)


def _parse_select_item(stream: TokenStream) -> SelectItem:
    if stream.accept_symbol("*"):
        return SelectItem(star=True)
    if stream.at_keyword(*_AGGREGATES):
        aggregate = stream.advance().text
        stream.expect_symbol("(")
        if stream.accept_symbol("*"):
            stream.expect_symbol(")")
            return SelectItem(aggregate=aggregate, star=True)
        ref = _parse_column_ref(stream)
        stream.expect_symbol(")")
        return SelectItem(ref, aggregate)
    return SelectItem(_parse_column_ref(stream))


def _parse_column_ref(stream: TokenStream) -> ColumnRef:
    first = stream.expect_ident("column name").text
    if stream.accept_symbol("."):
        return ColumnRef(stream.expect_ident("column name").text, table=first)
    return ColumnRef(first)


def _parse_where(stream: TokenStream) -> Where:
    clauses = [[_parse_comparison(stream)]]
    while True:
        if stream.accept_keyword("AND"):
            clauses[-1].append(_parse_comparison(stream))
        elif stream.accept_keyword("OR"):
            clauses.append([_parse_comparison(stream)])
        else:
            break
    return Where(clauses)


def _parse_comparison(stream: TokenStream) -> SqlComparison:
    left = _parse_column_ref(stream)
    token = stream.current
    if token.type is not TokenType.SYMBOL or token.text not in (
        "=",
        "<>",
        "!=",
        "<",
        "<=",
        ">",
        ">=",
    ):
        raise stream.error("expected a comparison operator")
    operator = stream.advance().text
    if operator == "<>":
        operator = "!="
    token = stream.current
    if token.type in (TokenType.IDENT,) or (
        token.type is TokenType.KEYWORD and stream.peek(1).text == "."
    ):
        right = _parse_column_ref(stream)
        return SqlComparison(left, operator, right=right)
    return SqlComparison(left, operator, value=_parse_literal(stream))


def _parse_literal(stream: TokenStream) -> Value:
    token = stream.current
    if token.type in (TokenType.STRING, TokenType.NUMBER):
        stream.advance()
        return token.value  # type: ignore[return-value]
    if stream.accept_symbol("-"):
        number = stream.current
        if number.type is not TokenType.NUMBER:
            raise stream.error("expected a number after unary minus")
        stream.advance()
        return -number.value  # type: ignore[operator]
    if stream.accept_keyword("NULL"):
        return None
    raise stream.error("expected a literal value")


def _parse_insert(stream: TokenStream) -> Insert:
    stream.expect_keyword("INTO")
    table = stream.expect_ident("table name").text
    columns: list[str] = []
    if stream.accept_symbol("("):
        columns.append(stream.expect_ident("column name").text)
        while stream.accept_symbol(","):
            columns.append(stream.expect_ident("column name").text)
        stream.expect_symbol(")")
    stream.expect_keyword("VALUES")
    stream.expect_symbol("(")
    values = [_parse_literal(stream)]
    while stream.accept_symbol(","):
        values.append(_parse_literal(stream))
    stream.expect_symbol(")")
    return Insert(table, columns, values)


def _parse_update(stream: TokenStream) -> Update:
    table = stream.expect_ident("table name").text
    stream.expect_keyword("SET")
    assignments = [_parse_assignment(stream)]
    while stream.accept_symbol(","):
        assignments.append(_parse_assignment(stream))
    where = _parse_where(stream) if stream.accept_keyword("WHERE") else None
    return Update(table, assignments, where)


def _parse_assignment(stream: TokenStream) -> tuple[str, Value]:
    column = stream.expect_ident("column name").text
    stream.expect_symbol("=")
    return column, _parse_literal(stream)
