"""The relational data model (MLDS's SQL-side schemas).

MLDS supports a relational/SQL language interface alongside the network
and functional ones (thesis Figure 1.2; the rel_dbid_node arm of the
dbid_node union in Figure 4.1).  The model here is deliberately classic:
a schema is a set of relations; a relation is a named heading of typed
columns, optionally with a PRIMARY KEY column list whose combined value
must be unique.

The relational-to-ABDM mapping is the simplest of the three: one AB file
per relation, one record per tuple, ``(FILE, relation)`` then
``(relation, dbkey)`` then one keyword per column.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """Relational column types, mapped onto the three kernel domains."""

    INT = "int"
    FLOAT = "float"
    CHAR = "char"

    def accepts(self, value: object) -> bool:
        if value is None:
            return True
        if self is ColumnType.INT:
            return isinstance(value, int)
        if self is ColumnType.FLOAT:
            return isinstance(value, (int, float))
        return isinstance(value, str)


@dataclass
class Column:
    """One column of a relation heading."""

    name: str
    type: ColumnType
    length: int = 0  # CHAR(n) limit; 0 = unbounded

    def render(self) -> str:
        if self.type is ColumnType.CHAR and self.length:
            return f"{self.name} CHAR({self.length})"
        return f"{self.name} {self.type.name}"


@dataclass
class Relation:
    """A relation: name, heading, optional primary key."""

    name: str
    columns: list[Column] = field(default_factory=list)
    primary_key: list[str] = field(default_factory=list)

    def column(self, name: str) -> Optional[Column]:
        for column in self.columns:
            if column.name == name:
                return column
        return None

    def require_column(self, name: str) -> Column:
        column = self.column(name)
        if column is None:
            raise SchemaError(f"relation {self.name!r} has no column {name!r}")
        return column

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def render(self) -> str:
        parts = [c.render() for c in self.columns]
        if self.primary_key:
            parts.append(f"PRIMARY KEY ({', '.join(self.primary_key)})")
        return f"CREATE TABLE {self.name} ({', '.join(parts)});"


class RelationalSchema:
    """A relational database schema (rel_dbid_node)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.relations: dict[str, Relation] = {}

    def add_relation(self, relation: Relation) -> Relation:
        if relation.name in self.relations:
            raise SchemaError(f"relation {relation.name!r} already declared")
        seen = set()
        for column in relation.columns:
            if column.name in seen:
                raise SchemaError(
                    f"relation {relation.name!r} declares column "
                    f"{column.name!r} twice"
                )
            seen.add(column.name)
        for key_column in relation.primary_key:
            relation.require_column(key_column)
        self.relations[relation.name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError as exc:
            raise SchemaError(f"unknown relation {name!r} in schema {self.name!r}") from exc

    def has_relation(self, name: str) -> bool:
        return name in self.relations

    def render(self) -> str:
        """Render as parseable DDL (round-trips through the SQL parser)."""
        chunks = [f"DATABASE {self.name};"]
        chunks.extend(r.render() for r in self.relations.values())
        return "\n".join(chunks) + "\n"

    def __repr__(self) -> str:
        return f"RelationalSchema({self.name!r}, {len(self.relations)} relations)"
