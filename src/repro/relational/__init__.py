"""The relational data model and its SQL front-end.

MLDS's relational interface (one of the four language interfaces of
Figure 1.2): classic relations over the kernel's value domains, defined
with ``CREATE TABLE`` DDL and manipulated with a SQL subset covering
SELECT (projections, WHERE in DNF, aggregates, GROUP BY, and two-table
equi-joins via the kernel's RETRIEVE-COMMON), INSERT, UPDATE and DELETE.
"""

from repro.relational import sql
from repro.relational.model import Column, ColumnType, Relation, RelationalSchema
from repro.relational.sql import parse_relational_schema, parse_script, parse_statement

__all__ = [
    "Column",
    "ColumnType",
    "Relation",
    "RelationalSchema",
    "parse_relational_schema",
    "parse_script",
    "parse_statement",
    "sql",
]
