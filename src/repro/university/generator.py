"""Deterministic synthetic population for the University database.

The thesis never lists the University database's contents, only its
schema, so the examples, tests and benchmarks need a population.  The
generator below produces one deterministically from a seed and a size
parameter, honouring every schema constraint:

* unique ``name`` within ``person`` and unique ``(title, semester)``
  within ``course``;
* every faculty member belongs to a department (the ``dept`` set) and
  teaches courses, with the inverse ``taught_by`` kept consistent;
* students have advisors and enrollments; support staff have supervisors;
* the ``student``/``faculty`` and ``student``/``support_staff`` overlap
  constraints are exercised: a fraction of employees are also students;
* employees carry multi-valued ``phones`` (the scalar multi-valued case).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


_FIRST_NAMES = (
    "Alice", "Brian", "Carla", "David", "Elena", "Frank", "Grace", "Hugo",
    "Irene", "James", "Karen", "Louis", "Maria", "Nathan", "Olive", "Peter",
    "Quinn", "Rosa", "Simon", "Tanya", "Ulric", "Vera", "Walter", "Xenia",
    "Yusuf", "Zelda",
)
_LAST_NAMES = (
    "Adams", "Baker", "Clark", "Davis", "Evans", "Foster", "Garcia", "Hughes",
    "Ingram", "Jones", "Keller", "Lewis", "Morris", "Nolan", "Owens", "Price",
    "Quincy", "Reyes", "Stone", "Turner", "Unger", "Vargas", "Wells", "Xu",
    "Young", "Zhang",
)
_DEPT_NAMES = (
    "computer_science", "mathematics", "physics", "oceanography",
    "operations_research", "electrical_eng", "national_security", "meteorology",
)
_COURSE_TOPICS = (
    "Databases", "Operating Systems", "Compilers", "Networks", "Algorithms",
    "Calculus", "Mechanics", "Thermodynamics", "Acoustics", "Optimization",
    "Cryptology", "Statistics", "Signal Processing", "Avionics", "Logistics",
)
_SEMESTERS = ("fall", "winter", "spring", "summer")
_RANKS = ("instructor", "assistant", "associate", "professor")
_MAJORS = ("computer science", "mathematics", "physics", "engineering")
_SKILLS = ("admin", "lab tech", "librarian", "registrar")


@dataclass
class PersonSpec:
    """One generated person and the roles they play."""

    name: str
    age: int
    is_employee: bool = False
    is_student: bool = False
    is_faculty: bool = False
    is_support_staff: bool = False
    salary: float = 0.0
    phones: list[int] = field(default_factory=list)
    rank: str = ""
    dept_index: int = -1  # department a faculty member belongs to
    teaching: list[int] = field(default_factory=list)  # course indices
    skill: str = ""
    supervisor_index: int = -1  # person index of a support-staff supervisor
    major: str = ""
    gpa: float = 0.0
    advisor_index: int = -1  # person index of the student's advisor
    enrollment: list[int] = field(default_factory=list)


@dataclass
class CourseSpec:
    """One generated course."""

    title: str
    dept: str
    semester: str
    credits: int
    taught_by: list[int] = field(default_factory=list)  # person indices


@dataclass
class DepartmentSpec:
    dname: str
    budget: int


@dataclass
class UniversityData:
    """The full generated population."""

    departments: list[DepartmentSpec]
    persons: list[PersonSpec]
    courses: list[CourseSpec]

    @property
    def counts(self) -> dict[str, int]:
        return {
            "departments": len(self.departments),
            "persons": len(self.persons),
            "students": sum(1 for p in self.persons if p.is_student),
            "employees": sum(1 for p in self.persons if p.is_employee),
            "faculty": sum(1 for p in self.persons if p.is_faculty),
            "support_staff": sum(1 for p in self.persons if p.is_support_staff),
            "courses": len(self.courses),
        }


def generate_university(
    persons: int = 60,
    courses: int = 20,
    departments: int = 4,
    seed: int = 1987,
) -> UniversityData:
    """Generate a deterministic University population.

    Roughly 30% of persons are faculty, 15% support staff and 60%
    students (overlapping: some employees are also students, which the
    OVERLAP constraint permits for faculty and support staff).
    """
    rng = random.Random(seed)
    departments = max(1, min(departments, len(_DEPT_NAMES)))
    dept_specs = [
        DepartmentSpec(_DEPT_NAMES[i], budget=100_000 + 25_000 * i)
        for i in range(departments)
    ]

    person_specs: list[PersonSpec] = []
    used_names: set[str] = set()
    while len(person_specs) < persons:
        name = f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"
        if name in used_names:
            name = f"{name} {len(person_specs)}"
        used_names.add(name)
        person_specs.append(PersonSpec(name=name, age=rng.randint(18, 70)))

    count = len(person_specs)
    faculty_count = max(1, count * 3 // 10)
    staff_count = max(1, count * 3 // 20)
    student_count = max(1, count * 6 // 10)

    faculty_indices = list(range(faculty_count))
    staff_indices = list(range(faculty_count, faculty_count + staff_count))
    remaining = list(range(faculty_count + staff_count, count))
    student_indices = remaining[:student_count]
    # Exercise the overlap constraint: a few employees are also students.
    overlap_students = faculty_indices[: max(1, faculty_count // 10)]
    student_indices = student_indices + overlap_students

    course_specs: list[CourseSpec] = []
    used_titles: set[tuple[str, str]] = set()
    while len(course_specs) < courses:
        topic = rng.choice(_COURSE_TOPICS)
        level = rng.choice(("Introductory", "Intermediate", "Advanced"))
        title = f"{level} {topic}"
        semester = rng.choice(_SEMESTERS)
        if (title, semester) in used_titles:
            title = f"{title} {len(course_specs) + 1}"
        used_titles.add((title, semester))
        course_specs.append(
            CourseSpec(
                title=title,
                dept=rng.choice(dept_specs).dname,
                semester=semester,
                credits=rng.randint(1, 5),
            )
        )

    for index in faculty_indices:
        person = person_specs[index]
        person.is_employee = True
        person.is_faculty = True
        person.salary = float(rng.randint(30, 90) * 1000)
        person.phones = [rng.randint(2000000, 9999999) for _ in range(rng.randint(1, 3))]
        person.rank = rng.choice(_RANKS)
        person.dept_index = rng.randrange(len(dept_specs))
        taught = rng.sample(range(len(course_specs)), k=min(3, len(course_specs)))
        person.teaching = taught
        for course_index in taught:
            course_specs[course_index].taught_by.append(index)

    for index in staff_indices:
        person = person_specs[index]
        person.is_employee = True
        person.is_support_staff = True
        person.salary = float(rng.randint(18, 45) * 1000)
        person.phones = [rng.randint(2000000, 9999999)]
        person.skill = rng.choice(_SKILLS)
        person.supervisor_index = rng.choice(faculty_indices)

    for index in student_indices:
        person = person_specs[index]
        person.is_student = True
        person.major = rng.choice(_MAJORS)
        person.gpa = round(rng.uniform(2.0, 4.0), 2)
        person.advisor_index = rng.choice(faculty_indices)
        person.enrollment = rng.sample(
            range(len(course_specs)), k=min(rng.randint(1, 4), len(course_specs))
        )

    return UniversityData(dept_specs, person_specs, course_specs)
