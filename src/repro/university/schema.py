"""The University database schema (thesis Figures 2.1 / 2.2).

Shipman's University database is the running example of the thesis; its
functional schema exercises every construct the transformer handles:

* entity types: ``person``, ``department``, ``course``;
* entity subtypes: ``employee`` and ``student`` under ``person``;
  ``faculty`` and ``support_staff`` under ``employee`` (so ``person`` and
  ``employee`` are non-terminal, the rest terminal);
* non-entity types: a string type, enumerations (``rank_type``,
  ``semester_type``), a ranged integer, a non-entity subtype, a derived
  non-entity and a numeric constant;
* scalar functions (``name``, ``title``, ...), a scalar multi-valued
  function (``phones``), single-valued entity functions (``advisor``,
  ``dept``, ``supervisor``), a one-to-many multi-valued function
  (``enrollment``) and the many-to-many pair ``teaching`` / ``taught_by``
  that the transformer turns into the ``LINK_1`` record with the
  ``teaching`` and ``taught_by`` sets of Figure 5.1;
* the uniqueness constraint on ``title, semester`` within ``course``
  (Figure 5.3) and an overlap constraint letting a person be both a
  student and an employee.
"""

from __future__ import annotations

from repro.functional import FunctionalSchema, parse_schema

#: DAPLEX DDL for the University database.
UNIVERSITY_DAPLEX = """\
DATABASE university;

TYPE name_string IS STRING(30);
TYPE rank_type IS (instructor, assistant, associate, professor);
TYPE semester_type IS (fall, winter, spring, summer);
TYPE credit_value IS INTEGER RANGE 1..5;
SUBTYPE dept_string IS name_string;
DERIVED gpa_value IS FLOAT RANGE 0.0..4.0;
CONSTANT max_course_load IS 5;

TYPE person IS
ENTITY
    name : name_string;
    age  : INTEGER;
END ENTITY;

TYPE department IS
ENTITY
    dname  : STRING(20);
    budget : INTEGER;
END ENTITY;

TYPE course IS
ENTITY
    title     : STRING(40);
    dept      : dept_string;
    semester  : semester_type;
    credits   : credit_value;
    taught_by : SET OF faculty;
END ENTITY;

TYPE employee IS person
ENTITY
    salary : FLOAT;
    phones : SET OF INTEGER;
END ENTITY;

TYPE student IS person
ENTITY
    major      : STRING(20);
    gpa        : gpa_value;
    advisor    : faculty;
    enrollment : SET OF course;
END ENTITY;

TYPE faculty IS employee
ENTITY
    rank     : rank_type;
    dept     : department;
    teaching : SET OF course;
END ENTITY;

TYPE support_staff IS employee
ENTITY
    skill      : STRING(20);
    supervisor : employee;
END ENTITY;

UNIQUE title, semester WITHIN course;
UNIQUE name WITHIN person;
OVERLAP student WITH faculty, support_staff;
"""


def university_schema() -> FunctionalSchema:
    """Parse and return a fresh validated University schema."""
    return parse_schema(UNIVERSITY_DAPLEX)
