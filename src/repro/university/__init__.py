"""The University database: the thesis's running example, ready to load."""

from repro.university.generator import (
    CourseSpec,
    DepartmentSpec,
    PersonSpec,
    UniversityData,
    generate_university,
)
from repro.university.loader import UniversityKeys, load_university
from repro.university.schema import UNIVERSITY_DAPLEX, university_schema

__all__ = [
    "CourseSpec",
    "DepartmentSpec",
    "PersonSpec",
    "UNIVERSITY_DAPLEX",
    "UniversityData",
    "UniversityKeys",
    "generate_university",
    "load_university",
    "university_schema",
]
