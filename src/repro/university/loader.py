"""Loading a generated University population into MLDS.

The loader drives the native (DAPLEX-side) load path: it creates every
entity through :class:`~repro.core.loader.FunctionalLoader`, wiring the
entity-valued functions with database keys so the transformed network
sets come out populated — faculty in their ``dept`` occurrences, students
under their ``advisor``, the ``teaching``/``taught_by`` pair consistent
on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mlds import MLDS
from repro.functional.model import FunctionalSchema
from repro.university.generator import UniversityData, generate_university
from repro.university.schema import UNIVERSITY_DAPLEX


@dataclass
class UniversityKeys:
    """Database keys of every loaded instance, by generator index."""

    departments: list[str] = field(default_factory=list)
    persons: list[str] = field(default_factory=list)
    courses: list[str] = field(default_factory=list)


def load_university(
    mlds: MLDS,
    data: UniversityData | None = None,
    name_override: str | None = None,
) -> tuple[FunctionalSchema, UniversityKeys]:
    """Define and populate the University database in *mlds*.

    Returns the functional schema and the key book-keeping.  Pass a
    pre-generated *data* population for custom sizes; the default is the
    standard 60-person population.
    """
    daplex = UNIVERSITY_DAPLEX
    if name_override:
        daplex = daplex.replace("DATABASE university;", f"DATABASE {name_override};", 1)
    schema = mlds.define_functional_database(daplex)
    data = data or generate_university()
    loader = mlds.functional_loader(schema.name)
    keys = UniversityKeys()

    for dept in data.departments:
        keys.departments.append(
            loader.create("department", dname=dept.dname, budget=dept.budget)
        )

    # Pass 1: person (and course) instances so every key exists before the
    # entity-valued functions reference them.
    for person in data.persons:
        keys.persons.append(loader.create("person", name=person.name, age=person.age))
    for course in data.courses:
        keys.courses.append(
            loader.create(
                "course",
                title=course.title,
                dept=course.dept,
                semester=course.semester,
                credits=course.credits,
            )
        )

    # Pass 2: subtype extensions, wiring relationships by database key.
    for index, person in enumerate(data.persons):
        dbkey = keys.persons[index]
        if person.is_employee:
            loader.create(
                "employee",
                dbkey=dbkey,
                salary=person.salary,
                phones=list(person.phones),
            )
        if person.is_faculty:
            loader.create(
                "faculty",
                dbkey=dbkey,
                rank=person.rank,
                dept=keys.departments[person.dept_index],
                teaching=[keys.courses[i] for i in person.teaching],
            )
        if person.is_support_staff:
            loader.create(
                "support_staff",
                dbkey=dbkey,
                skill=person.skill,
                supervisor=keys.persons[person.supervisor_index],
            )
        if person.is_student:
            loader.create(
                "student",
                dbkey=dbkey,
                major=person.major,
                gpa=person.gpa,
                advisor=keys.persons[person.advisor_index],
                enrollment=[keys.courses[i] for i in person.enrollment],
            )

    # Pass 3: the inverse side of the many-to-many pair.  Both functions of
    # the pair exist in the functional schema, so both files carry the
    # relationship (Figure 3.3's asterisked values).
    # taught_by values were accumulated per course during generation but the
    # course instances were created before faculty existed; update them now.
    from repro.abdl.ast import InsertRequest, UpdateRequest, Modifier
    from repro.abdm.predicate import Predicate, Query

    kc = loader.kc
    for index, course in enumerate(data.courses):
        teachers = [keys.persons[i] for i in course.taught_by]
        if not teachers:
            continue
        course_key = keys.courses[index]
        query = Query.conjunction(
            [Predicate("FILE", "=", "course"), Predicate("course", "=", course_key)]
        )
        kc.execute(UpdateRequest(query, Modifier("taught_by", value=teachers[0])))
        if len(teachers) > 1:
            base = kc.retrieve(query)[0]
            for teacher in teachers[1:]:
                copy = base.copy()
                copy.set("taught_by", teacher)
                kc.execute(InsertRequest(copy))

    return schema, keys
