"""FIG-1.2 completed: all four data models in one kernel.

MLDS's promise is one DBMS supporting every major data model through its
own language.  This module runs a functional (DAPLEX + CODASYL-DML via
the thesis's transformer), a native network (CODASYL-DML), a relational
(SQL) and a hierarchical (DL/I + Zawis SQL) database side by side in a
single MBDS kernel and checks isolation, coexistence and the catalog.
"""

import pytest

from repro import MLDS
from repro.university import generate_university, load_university

NET_DDL = """
SCHEMA NAME IS fleet;
RECORD NAME IS ship;
    sname TYPE IS CHARACTER 20;
    hull TYPE IS INTEGER;
SET NAME IS system_ship;
    OWNER IS SYSTEM;
    MEMBER IS ship;
    INSERTION IS AUTOMATIC;
    RETENTION IS FIXED;
    SET SELECTION IS BY APPLICATION;
"""

REL_DDL = """
DATABASE payroll;
CREATE TABLE pay (pid INT, amount FLOAT, PRIMARY KEY (pid));
"""

HIE_DDL = """
DATABASE archive;
SEGMENT box ROOT (label CHAR(10));
SEGMENT folder UNDER box (topic CHAR(20));
"""


@pytest.fixture(scope="module")
def world():
    mlds = MLDS(backend_count=4)
    load_university(mlds, generate_university(persons=20, courses=8, seed=44))
    mlds.define_network_database(NET_DDL)
    mlds.network_loader("fleet").create("ship", sname="Nimitz", hull=68)
    mlds.define_relational_database(REL_DDL)
    mlds.open_sql_session("payroll").execute("INSERT INTO pay VALUES (1, 999.5)")
    mlds.define_hierarchical_database(HIE_DDL)
    dl1 = mlds.open_dli_session("archive")
    dl1.run("FLD label = 'b-1'")
    dl1.execute("ISRT box")
    dl1.run("FLD topic = 'orders'")
    dl1.execute("ISRT box(label = 'b-1') folder")
    return mlds


class TestCatalog:
    def test_four_databases(self, world):
        assert world.database_names() == ["archive", "fleet", "payroll", "university"]

    def test_kernel_catalog_models(self, world):
        models = {t.name: t.model for t in world.kds.databases()}
        assert models == {
            "university": "functional",
            "fleet": "network",
            "payroll": "relational",
            "archive": "hierarchical",
        }


class TestEachInterfaceWorks:
    def test_codasyl_over_functional(self, world):
        session = world.open_codasyl_session("university")
        assert session.execute("FIND FIRST person WITHIN system_person").ok

    def test_codasyl_over_network(self, world):
        session = world.open_codasyl_session("fleet")
        session.execute("MOVE 'Nimitz' TO sname IN ship")
        assert session.execute("FIND ANY ship USING sname IN ship").values["hull"] == 68

    def test_daplex_over_functional(self, world):
        session = world.open_daplex_session("university")
        assert session.execute("FOR EACH p IN person PRINT name(p);").rows

    def test_sql_over_relational(self, world):
        session = world.open_sql_session("payroll")
        assert session.execute("SELECT amount FROM pay").rows == [{"amount": 999.5}]

    def test_dli_over_hierarchical(self, world):
        session = world.open_dli_session("archive")
        assert session.execute("GU box(label = 'b-1') folder").fields["topic"] == "orders"

    def test_sql_over_hierarchical(self, world):
        session = world.open_sql_session("archive")
        rows = session.execute(
            "SELECT label, topic FROM box, folder WHERE box.box = folder.parent"
        ).rows
        assert rows == [{"label": "b-1", "topic": "orders"}]


class TestIsolation:
    def test_files_do_not_collide(self, world):
        files = set()
        for backend in world.kds.controller.backends:
            files |= set(backend.store.file_names())
        assert {"person", "ship", "pay", "box", "folder"} <= files

    def test_queries_scoped_by_file(self, world):
        # A SQL scan of pay never sees university or fleet records.
        session = world.open_sql_session("payroll")
        assert session.execute("SELECT COUNT(*) FROM pay").rows[0]["COUNT(*)"] == 1

    def test_drop_one_database_leaves_others(self, world):
        import copy

        # Work on a private copy of the world to keep the fixture intact.
        mlds = MLDS(backend_count=2)
        mlds.define_relational_database(REL_DDL)
        mlds.open_sql_session("payroll").execute("INSERT INTO pay VALUES (1, 1.0)")
        mlds.define_hierarchical_database(HIE_DDL)
        dl1 = mlds.open_dli_session("archive")
        dl1.run("FLD label = 'keep'")
        dl1.execute("ISRT box")
        mlds.kds.drop_database("payroll")
        assert dl1.execute("GU box(label = 'keep')").ok
        assert mlds.open_sql_session("payroll").execute("SELECT COUNT(*) FROM pay").rows[0]["COUNT(*)"] == 0
