"""CH-VI examples: the thesis's transactions, end to end.

The scenarios follow Chapter VI's worked examples — locating a course by
title, looping over the students of a major, navigating from a student to
its advisor and department — plus longer lifecycle stories exercising
every statement in one narrative.
"""

import pytest

from repro import MLDS
from repro.kms import Status
from repro.university import generate_university, load_university


@pytest.fixture(scope="module")
def loaded():
    mlds = MLDS(backend_count=4)
    data = generate_university(persons=40, courses=15, departments=3, seed=11)
    schema, keys = load_university(mlds, data)
    return mlds, data, keys


@pytest.fixture()
def session(loaded):
    mlds, _, _ = loaded
    return mlds.open_codasyl_session("university")


class TestFindAnyCourseExample:
    """VI.B.1: MOVE ... / FIND ANY course USING title IN course."""

    def test_course_located_by_title(self, loaded, session):
        _, data, keys = loaded
        target = data.courses[0]
        session.execute(f"MOVE '{target.title}' TO title IN course")
        result = session.execute("FIND ANY course USING title IN course")
        assert result.ok
        assert result.dbkey == keys.courses[0]
        got = session.execute("GET course")
        assert got.values["title"] == target.title
        assert got.values["credits"] == target.credits


class TestStudentsOfAMajorLoop:
    """VI.B.4's PERFORM UNTIL loop: all students with a given major."""

    def test_loop_until_end_of_set(self, loaded, session):
        _, data, keys = loaded
        major = "computer science"
        expected = {
            keys.persons[i]
            for i, p in enumerate(data.persons)
            if p.is_student and p.major == major
        }
        if not expected:
            pytest.skip("population has no CS students")
        session.execute(f"MOVE '{major}' TO major IN student")
        found = set()
        result = session.execute("FIND ANY student USING major IN student")
        # Walk the FIND ANY answer via the record-type buffer using
        # FIND DUPLICATE over the constant major value.
        while result.ok:
            found.add(result.dbkey)
            result = session.execute(
                "FIND DUPLICATE WITHIN student USING major IN student"
            )
        assert result.status is Status.END_OF_SET
        assert found == expected


class TestNavigationChains:
    def test_student_advisor_department_chain(self, loaded, session):
        mlds, data, keys = loaded
        student_index = next(
            i for i, p in enumerate(data.persons) if p.is_student
        )
        spec = data.persons[student_index]
        session.execute(f"MOVE '{spec.major}' TO major IN student")
        session.execute(f"MOVE {spec.gpa} TO gpa IN student")
        found = session.execute("FIND ANY student USING major, gpa IN student")
        assert found.ok
        advisor = session.execute("FIND OWNER WITHIN advisor")
        assert advisor.record_type == "faculty"
        dept = session.execute("FIND OWNER WITHIN dept")
        assert dept.record_type == "department"
        got = session.execute("GET dname IN department")
        assert got.values["dname"] in {d.dname for d in data.departments}

    def test_person_name_via_isa_navigation(self, loaded, session):
        """Value inheritance by navigation: student -> person -> name."""
        _, data, keys = loaded
        student_index = next(i for i, p in enumerate(data.persons) if p.is_student)
        spec = data.persons[student_index]
        session.execute(f"MOVE '{spec.name}' TO name IN person")
        session.execute("FIND ANY person USING name IN person")
        student = session.execute("FIND FIRST student WITHIN person_student")
        assert student.ok
        person = session.execute("FIND OWNER WITHIN person_student")
        got = session.execute("GET name, age IN person")
        assert got.values["name"] == spec.name
        assert got.values["age"] == spec.age

    def test_teaching_pair_is_consistent(self, loaded, session):
        """Walking teaching from a faculty member and taught_by back."""
        _, data, keys = loaded
        fac_index = next(i for i, p in enumerate(data.persons) if p.is_faculty and p.teaching)
        spec = data.persons[fac_index]
        session.execute(f"MOVE '{spec.name}' TO name IN person")
        session.execute("FIND ANY person USING name IN person")
        # Reach the faculty record through the ISA chain.
        session.execute("FIND FIRST employee WITHIN person_employee")
        session.execute("FIND FIRST faculty WITHIN employee_faculty")
        courses = set()
        link = session.execute("FIND FIRST link_1 WITHIN teaching")
        while link.ok:
            owner = session.execute("FIND OWNER WITHIN taught_by")
            courses.add(owner.dbkey)
            link = session.execute("FIND NEXT link_1 WITHIN teaching")
        assert courses == {keys.courses[i] for i in spec.teaching}


class TestFullLifecycle:
    """One narrative: STORE, CONNECT, MODIFY, navigate, DISCONNECT, ERASE."""

    def test_story(self, loaded):
        mlds, data, keys = loaded
        s = mlds.open_codasyl_session("university", user="story")
        # A new person enrolls as a student.
        s.execute("MOVE 'Story Person' TO name IN person")
        s.execute("MOVE 27 TO age IN person")
        person = s.execute("STORE person")
        s.execute("MOVE 'databases' TO major IN student")
        s.execute("MOVE 3.0 TO gpa IN student")
        student = s.execute("STORE student")
        assert student.dbkey == person.dbkey
        # They enroll in the first two courses.
        for index in (0, 1):
            title = data.courses[index].title
            s.execute(f"MOVE '{title}' TO title IN course")
            s.execute("FIND ANY course USING title IN course")
            s.execute("FIND CURRENT student WITHIN person_student")
            s.execute("FIND CURRENT course WITHIN system_course")
            s.execute("CONNECT course TO enrollment")
        # Their GPA improves.
        s.execute("FIND CURRENT student WITHIN person_student")
        s.execute("MOVE 3.8 TO gpa IN student")
        s.execute("MODIFY gpa IN student")
        assert s.execute("GET gpa IN student").values["gpa"] == 3.8
        # Enumerate their enrollment.
        enrolled = set()
        result = s.execute("FIND FIRST course WITHIN enrollment")
        while result.ok:
            enrolled.add(result.dbkey)
            result = s.execute("FIND NEXT course WITHIN enrollment")
        # Set order across MBDS backends is deterministic but not FIFO
        # (records are partitioned round-robin), so compare membership.
        assert enrolled == {keys.courses[0], keys.courses[1]}
        # They drop both courses and leave the university.
        for index in (0, 1):
            title = data.courses[index].title
            s.execute(f"MOVE '{title}' TO title IN course")
            s.execute("FIND ANY course USING title IN course")
            s.execute("FIND CURRENT student WITHIN person_student")
            s.execute("FIND CURRENT course WITHIN system_course")
            s.execute("DISCONNECT course FROM enrollment")
        s.execute("FIND CURRENT student WITHIN person_student")
        assert s.execute("ERASE student").ok
        s.execute("MOVE 'Story Person' TO name IN person")
        s.execute("FIND ANY person USING name IN person")
        assert s.execute("ERASE person").ok
