"""Whole-database consistency: the loaded population, seen three ways.

The generator's specification, the DAPLEX interface's view and the
CODASYL-DML interface's view must agree on every entity, every function
value and every relationship — this is the strongest statement of the
thesis's transparency promise.
"""

import pytest

from repro import MLDS
from repro.university import generate_university, load_university


@pytest.fixture(scope="module")
def world():
    mlds = MLDS(backend_count=4)
    data = generate_university(persons=40, courses=14, departments=3, seed=23)
    schema, keys = load_university(mlds, data)
    return mlds, data, keys


class TestCountsAgree:
    def test_daplex_counts_match_spec(self, world):
        mlds, data, _ = world
        daplex = mlds.open_daplex_session("university")
        counts = data.counts
        assert len(daplex.execute("FOR EACH p IN person PRINT p;").rows) == counts["persons"]
        assert len(daplex.execute("FOR EACH s IN student PRINT s;").rows) == counts["students"]
        assert len(daplex.execute("FOR EACH f IN faculty PRINT f;").rows) == counts["faculty"]
        assert len(daplex.execute("FOR EACH c IN course PRINT c;").rows) == counts["courses"]

    def test_codasyl_system_set_matches_spec(self, world):
        mlds, data, _ = world
        session = mlds.open_codasyl_session("university")
        count = 0
        result = session.execute("FIND FIRST person WITHIN system_person")
        while result.ok:
            count += 1
            result = session.execute("FIND NEXT person WITHIN system_person")
        assert count == len(data.persons)

    def test_kernel_aggregate_matches_spec(self, world):
        mlds, data, _ = world
        from repro.abdl import parse_request

        trace = mlds.kds.execute(parse_request("RETRIEVE (FILE = department) (COUNT(*))"))
        assert trace.result.records[0].get("COUNT(*)") == len(data.departments)


class TestScalarValuesAgree:
    def test_every_person_name_and_age(self, world):
        mlds, data, keys = world
        daplex = mlds.open_daplex_session("university")
        rows = daplex.execute("FOR EACH p IN person PRINT p, name(p), age(p);").rows
        by_key = {row["p"]: row for row in rows}
        for index, spec in enumerate(data.persons):
            row = by_key[keys.persons[index]]
            assert row["name(p)"] == spec.name
            assert row["age(p)"] == spec.age

    def test_every_course_through_codasyl(self, world):
        mlds, data, keys = world
        session = mlds.open_codasyl_session("university")
        for index, spec in enumerate(data.courses):
            session.execute(f"MOVE '{spec.title}' TO title IN course")
            session.execute(f"MOVE '{spec.semester}' TO semester IN course")
            found = session.execute("FIND ANY course USING title, semester IN course")
            assert found.ok and found.dbkey == keys.courses[index]
            assert found.values["credits"] == spec.credits


class TestRelationshipsAgree:
    def test_advisor_function_matches_spec(self, world):
        mlds, data, keys = world
        daplex = mlds.open_daplex_session("university")
        rows = daplex.execute("FOR EACH s IN student PRINT s, advisor(s);").rows
        by_key = {row["s"]: row["advisor(s)"] for row in rows}
        for index, spec in enumerate(data.persons):
            if spec.is_student:
                assert by_key[keys.persons[index]] == keys.persons[spec.advisor_index]

    def test_dept_set_membership_matches_spec(self, world):
        mlds, data, keys = world
        session = mlds.open_codasyl_session("university")
        for dept_index, dept in enumerate(data.departments):
            expected = {
                keys.persons[i]
                for i, p in enumerate(data.persons)
                if p.is_faculty and p.dept_index == dept_index
            }
            session.execute(f"MOVE '{dept.dname}' TO dname IN department")
            session.execute("FIND ANY department USING dname IN department")
            found = set()
            result = session.execute("FIND FIRST faculty WITHIN dept")
            while result.ok:
                found.add(result.dbkey)
                result = session.execute("FIND NEXT faculty WITHIN dept")
            assert found == expected

    def test_teaching_links_match_spec_both_directions(self, world):
        mlds, data, keys = world
        session = mlds.open_codasyl_session("university")
        expected_pairs = {
            (keys.persons[i], keys.courses[c])
            for i, p in enumerate(data.persons)
            if p.is_faculty
            for c in p.teaching
        }
        # Forward: every faculty's teaching links.
        found_pairs = set()
        for i, p in enumerate(data.persons):
            if not p.is_faculty:
                continue
            session.execute(f"MOVE '{p.name}' TO name IN person")
            session.execute("FIND ANY person USING name IN person")
            session.execute("FIND FIRST employee WITHIN person_employee")
            session.execute("FIND FIRST faculty WITHIN employee_faculty")
            link = session.execute("FIND FIRST link_1 WITHIN teaching")
            while link.ok:
                course = session.execute("FIND OWNER WITHIN taught_by")
                found_pairs.add((keys.persons[i], course.dbkey))
                link = session.execute("FIND NEXT link_1 WITHIN teaching")
        assert found_pairs == expected_pairs

    def test_taught_by_inverse_matches(self, world):
        mlds, data, keys = world
        daplex = mlds.open_daplex_session("university")
        rows = daplex.execute("FOR EACH c IN course PRINT c, taught_by(c);").rows
        for row in rows:
            course_index = keys.courses.index(row["c"])
            expected = {keys.persons[i] for i in data.courses[course_index].taught_by}
            listed = set((row["taught_by(c)"] or "").split(", ")) - {""}
            assert listed == expected

    def test_supervisor_function(self, world):
        mlds, data, keys = world
        daplex = mlds.open_daplex_session("university")
        rows = daplex.execute("FOR EACH x IN support_staff PRINT x, supervisor(x);").rows
        by_key = {row["x"]: row["supervisor(x)"] for row in rows}
        for index, spec in enumerate(data.persons):
            if spec.is_support_staff:
                assert by_key[keys.persons[index]] == keys.persons[spec.supervisor_index]


class TestOverlapPopulation:
    def test_some_entities_are_both_student_and_employee(self, world):
        """The generator exercises the OVERLAP constraint."""
        _, data, _ = world
        both = [p for p in data.persons if p.is_student and p.is_employee]
        assert both, "the population should exercise the overlap constraint"

    def test_overlapping_entities_visible_in_both_files(self, world):
        mlds, data, keys = world
        daplex = mlds.open_daplex_session("university")
        students = {r["s"] for r in daplex.execute("FOR EACH s IN student PRINT s;").rows}
        faculty = {r["f"] for r in daplex.execute("FOR EACH f IN faculty PRINT f;").rows}
        for index, spec in enumerate(data.persons):
            if spec.is_student and spec.is_faculty:
                assert keys.persons[index] in students
                assert keys.persons[index] in faculty
