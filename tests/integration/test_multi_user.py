"""Multiple concurrent run-units over one shared kernel.

MLDS's language interfaces were designed single-user with multi-user in
view (thesis IV.A); here, several sessions interleave over the same
database: run-unit state (CIT, UWA, buffers) is private, data is shared.
"""

import pytest

from repro import MLDS
from repro.kms import Status
from repro.university import generate_university, load_university


@pytest.fixture()
def world():
    mlds = MLDS(backend_count=4)
    data = generate_university(persons=30, courses=10, seed=55)
    _, keys = load_university(mlds, data)
    return mlds, data, keys


class TestPrivateState:
    def test_interleaved_currency(self, world):
        mlds, data, keys = world
        a = mlds.open_codasyl_session("university", user="a")
        b = mlds.open_codasyl_session("university", user="b")
        a.execute(f"MOVE '{data.courses[0].title}' TO title IN course")
        b.execute(f"MOVE '{data.courses[1].title}' TO title IN course")
        ra = a.execute("FIND ANY course USING title IN course")
        rb = b.execute("FIND ANY course USING title IN course")
        assert ra.dbkey == keys.courses[0]
        assert rb.dbkey == keys.courses[1]
        # Each session GETs its own current record.
        assert a.execute("GET").values["title"] == data.courses[0].title
        assert b.execute("GET").values["title"] == data.courses[1].title

    def test_private_buffers(self, world):
        mlds, _, _ = world
        a = mlds.open_codasyl_session("university", user="a")
        b = mlds.open_codasyl_session("university", user="b")
        a.execute("FIND FIRST person WITHIN system_person")
        assert a.engine.buffers.has_records("system_person")
        assert not b.engine.buffers.has_records("system_person")

    def test_private_uwa(self, world):
        mlds, _, _ = world
        a = mlds.open_codasyl_session("university", user="a")
        b = mlds.open_codasyl_session("university", user="b")
        a.execute("MOVE 'private' TO major IN student")
        assert b.uwa.get("student", "major") is None


class TestSharedData:
    def test_update_by_one_seen_by_other(self, world):
        mlds, data, _ = world
        writer = mlds.open_codasyl_session("university", user="writer")
        reader = mlds.open_codasyl_session("university", user="reader")
        writer.execute(f"MOVE '{data.courses[2].title}' TO title IN course")
        writer.execute("FIND ANY course USING title IN course")
        writer.execute("MOVE 1 TO credits IN course")
        writer.execute("MODIFY credits IN course")
        reader.execute(f"MOVE '{data.courses[2].title}' TO title IN course")
        reader.execute("FIND ANY course USING title IN course")
        assert reader.execute("GET credits IN course").values["credits"] == 1

    def test_store_by_one_found_by_other(self, world):
        mlds, _, _ = world
        writer = mlds.open_codasyl_session("university", user="writer")
        reader = mlds.open_daplex_session("university", user="reader")
        writer.execute("MOVE 'Multi User' TO name IN person")
        writer.execute("MOVE 66 TO age IN person")
        writer.execute("STORE person")
        rows = reader.execute(
            "FOR EACH p IN person SUCH THAT name(p) = 'Multi User' PRINT age(p);"
        ).rows
        assert rows == [{"age(p)": 66}]

    def test_erase_by_one_invisible_to_other(self, world):
        mlds, data, _ = world
        eraser = mlds.open_codasyl_session("university", user="eraser")
        reader = mlds.open_codasyl_session("university", user="reader")
        eraser.execute("MOVE 'Victim V' TO name IN person")
        eraser.execute("MOVE 1 TO age IN person")
        eraser.execute("STORE person")
        eraser.execute("ERASE person")
        reader.execute("MOVE 'Victim V' TO name IN person")
        assert (
            reader.execute("FIND ANY person USING name IN person").status
            is Status.NOT_FOUND
        )

    def test_stale_buffer_semantics(self, world):
        """A buffered iteration does not see concurrent inserts — request
        buffers are snapshots, as the thesis's RB design implies."""
        mlds, _, _ = world
        reader = mlds.open_codasyl_session("university", user="reader")
        writer = mlds.open_codasyl_session("university", user="writer")
        reader.execute("FIND FIRST person WITHIN system_person")
        snapshot_size = len(reader.engine.buffers.buffer("system_person"))
        writer.execute("MOVE 'Late Arrival' TO name IN person")
        writer.execute("MOVE 20 TO age IN person")
        writer.execute("STORE person")
        count = 1
        while reader.execute("FIND NEXT person WITHIN system_person").ok:
            count += 1
        assert count == snapshot_size  # the snapshot, not the new state
        # Re-running FIND FIRST refreshes the buffer.
        reader.execute("FIND FIRST person WITHIN system_person")
        assert len(reader.engine.buffers.buffer("system_person")) == snapshot_size + 1


class TestKeyMintingIsShared:
    def test_two_sessions_never_collide(self, world):
        mlds, _, _ = world
        a = mlds.open_codasyl_session("university", user="a")
        b = mlds.open_codasyl_session("university", user="b")
        a.execute("MOVE 'Key A' TO name IN person")
        b.execute("MOVE 'Key B' TO name IN person")
        key_a = a.execute("STORE person").dbkey
        key_b = b.execute("STORE person").dbkey
        assert key_a != key_b
