"""Scale smoke: a larger population stays correct through every interface."""

import pytest

from repro import MLDS
from repro.university import generate_university, load_university


@pytest.fixture(scope="module")
def big_world():
    mlds = MLDS(backend_count=8)
    data = generate_university(persons=300, courses=60, departments=6, seed=71)
    _, keys = load_university(mlds, data)
    return mlds, data, keys


class TestScaleCorrectness:
    def test_load_counts(self, big_world):
        mlds, data, _ = big_world
        counts = data.counts
        assert counts["persons"] == 300
        # The AB record count exceeds the logical instances (multi-valued
        # duplication) but stays within the schema's amplification bound.
        logical = (
            counts["departments"]
            + counts["persons"]
            + counts["courses"]
            + counts["students"]
            + counts["employees"]
            + counts["faculty"]
            + counts["support_staff"]
        )
        assert logical < mlds.kds.record_count() < logical * 2.5

    def test_backends_balanced(self, big_world):
        mlds, _, _ = big_world
        distribution = mlds.kds.controller.distribution()
        assert max(distribution) - min(distribution) <= len(
            mlds.kds.controller.backends
        ) * 4

    def test_codasyl_iteration_complete(self, big_world):
        mlds, data, _ = big_world
        session = mlds.open_codasyl_session("university")
        count = 0
        result = session.execute("FIND FIRST person WITHIN system_person")
        while result.ok:
            count += 1
            result = session.execute("FIND NEXT person WITHIN system_person")
        assert count == 300

    def test_daplex_aggregate_consistency(self, big_world):
        mlds, data, _ = big_world
        daplex = mlds.open_daplex_session("university")
        rows = daplex.execute("FOR EACH f IN faculty PRINT COUNT(teaching(f));").rows
        expected_total = sum(
            len(p.teaching) for p in data.persons if p.is_faculty
        )
        assert sum(r["COUNT(teaching(f))"] for r in rows) == expected_total

    def test_kernel_aggregate_consistency(self, big_world):
        mlds, data, _ = big_world
        from repro.abdl import parse_request

        trace = mlds.kds.execute(
            parse_request("RETRIEVE (FILE = course) (COUNT(*))")
        )
        # One AB record per course per taught_by value (min one).
        expected = sum(max(1, len(c.taught_by)) for c in data.courses)
        assert trace.result.records[0].get("COUNT(*)") == expected

    def test_many_sessions_share_cleanly(self, big_world):
        mlds, data, keys = big_world
        sessions = [
            mlds.open_codasyl_session("university", user=f"u{i}") for i in range(10)
        ]
        for index, session in enumerate(sessions):
            spec = data.persons[index]
            session.execute(f"MOVE '{spec.name}' TO name IN person")
            found = session.execute("FIND ANY person USING name IN person")
            assert found.dbkey == keys.persons[index]
        # Every session still holds its own currency.
        for index, session in enumerate(sessions):
            assert session.cit.run_unit.dbkey == keys.persons[index]
