"""FIG-1.1 / FIG-1.2: the full MLDS pipeline over one shared kernel.

LIL -> KMS -> KC -> KDS -> KFS, with two language-interface paths (native
network and transformed functional) serving different users from the same
multi-backend kernel.
"""

import pytest

from repro import MLDS
from repro.university import generate_university, load_university

NET_SCHEMA = """
SCHEMA NAME IS registry;
RECORD NAME IS vehicle;
    plate TYPE IS CHARACTER 8;
    wheels TYPE IS INTEGER;
SET NAME IS system_vehicle;
    OWNER IS SYSTEM;
    MEMBER IS vehicle;
    INSERTION IS AUTOMATIC;
    RETENTION IS FIXED;
    SET SELECTION IS BY APPLICATION;
"""


@pytest.fixture(scope="module")
def system():
    mlds = MLDS(backend_count=4)
    load_university(mlds, generate_university(persons=20, courses=8, seed=7))
    mlds.define_network_database(NET_SCHEMA)
    loader = mlds.network_loader("registry")
    for i in range(6):
        loader.create("vehicle", plate=f"NPS-{i:03d}", wheels=4 if i % 2 else 2)
    return mlds


class TestSharedKernel:
    def test_both_databases_resident(self, system):
        names = {t.name for t in system.kds.databases()}
        assert names == {"university", "registry"}

    def test_records_partitioned_across_backends(self, system):
        distribution = system.kds.controller.distribution()
        assert len(distribution) == 4
        assert min(distribution) > 0
        assert max(distribution) - min(distribution) <= 10

    def test_every_user_file_present(self, system):
        files = set()
        for backend in system.kds.controller.backends:
            files |= set(backend.store.file_names())
        assert {"person", "student", "course", "vehicle"} <= files


class TestTwoInterfaces:
    def test_network_user_unaffected_by_functional_load(self, system):
        session = system.open_codasyl_session("registry")
        session.execute("MOVE 'NPS-003' TO plate IN vehicle")
        result = session.execute("FIND ANY vehicle USING plate IN vehicle")
        assert result.ok and result.values["wheels"] == 4

    def test_functional_user_sees_transformed_schema(self, system):
        session = system.open_codasyl_session("university")
        assert session.schema.has_record("link_1")
        result = session.execute("FIND FIRST person WITHIN system_person")
        assert result.ok

    def test_request_logs_are_per_session(self, system):
        a = system.open_codasyl_session("registry")
        b = system.open_codasyl_session("university")
        a.execute("MOVE 'NPS-001' TO plate IN vehicle")
        a.execute("FIND ANY vehicle USING plate IN vehicle")
        assert a.request_log and not b.request_log


class TestKernelClock:
    def test_simulated_time_advances(self, system):
        before = system.kds.clock.total_ms
        session = system.open_codasyl_session("university")
        session.execute("FIND FIRST person WITHIN system_person")
        assert system.kds.clock.total_ms > before
