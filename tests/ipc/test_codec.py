"""The wire codec must invert itself exactly — through real JSON text.

Every round trip here goes ``encode → json.dumps → json.loads → decode``
so the tests prove JSON-cleanliness, not just structural symmetry.  The
bit-identity contract of the process engine rests on these inversions:
floats (including NaN), null values, record text, span trees, and the
timing model must all survive the queue untouched.
"""

from __future__ import annotations

import json
import math

from repro.abdl import parse_request
from repro.abdl.executor import RequestResult
from repro.abdm.directory import Directory
from repro.abdm.plan import AttributeIndexDigest
from repro.abdm.record import Record
from repro.ipc import codec
from repro.mbds.backend import BackendImage, BackendResult
from repro.mbds.summary import AttributeRange, BackendSummary, FileSummary
from repro.mbds.timing import TimingModel
from repro.obs.trace import Span


def through_json(payload):
    return json.loads(json.dumps(payload))


class TestRequests:
    REQUESTS = (
        "INSERT (<FILE, f>, <f, v$1>, <x, 3>)",
        "DELETE ((FILE = f) AND (x >= 2))",
        "UPDATE ((FILE = f) AND (x = 1)) (x = x + 10)",
        "RETRIEVE ((FILE = f) AND (x > 0)) (x) BY x",
        "RETRIEVE ((FILE = a) OR (FILE = b)) (*)",
        "RETRIEVE-COMMON ((FILE = a) AND (x = 1)) COMMON (k) (FILE = b) (*)",
    )

    def test_all_five_kinds_roundtrip(self):
        for text in self.REQUESTS:
            request = parse_request(text)
            decoded = codec.decode_any_request(
                through_json(codec.encode_any_request(request))
            )
            assert type(decoded) is type(request)
            assert decoded.render() == request.render()

    def test_retrieve_preserves_target_and_by(self):
        request = parse_request("RETRIEVE (FILE = f) (x, MAX(y)) BY x")
        decoded = codec.decode_any_request(
            through_json(codec.encode_any_request(request))
        )
        assert decoded.by == "x"
        assert [(t.attribute, t.aggregate) for t in decoded.target] == [
            (t.attribute, t.aggregate) for t in request.target
        ]


class TestRecordsAndResults:
    def test_record_roundtrips_value_domain(self):
        record = Record.from_pairs(
            [("FILE", "f"), ("i", 3), ("f2", 3.5), ("s", "str"), ("n", None)],
            text="the textual portion",
        )
        decoded = codec.decode_record(through_json(codec.encode_record(record)))
        assert decoded == record
        assert decoded.text == record.text

    def test_nan_survives_the_wire(self):
        record = Record.from_pairs([("FILE", "f"), ("x", float("nan"))])
        decoded = codec.decode_record(through_json(codec.encode_record(record)))
        ((_, value),) = [p for p in decoded.pairs() if p[0] == "x"]
        assert math.isnan(value)

    def test_float_bit_identity(self):
        for value in (0.1, 1e-17, 2**53 + 1.0, -0.0, 1.0000000000000002):
            record = Record.from_pairs([("FILE", "f"), ("x", value)])
            decoded = codec.decode_record(
                through_json(codec.encode_record(record))
            )
            ((_, out),) = [p for p in decoded.pairs() if p[0] == "x"]
            assert repr(out) == repr(value)

    def test_backend_result_roundtrips_scan_stats(self):
        records = [Record.from_pairs([("FILE", "f"), ("x", i)]) for i in range(3)]
        result = BackendResult(
            2,
            RequestResult(
                "RETRIEVE", records=records, raw_records=records[:1], count=3
            ),
            elapsed_ms=12.75,
            wall_ms=0.31,
            records_examined=9,
            index_hits=2,
            range_hits=1,
            fallback_scans=1,
        )
        decoded = codec.decode_backend_result(
            through_json(codec.encode_backend_result(result))
        )
        assert decoded == result


class TestImagesSummariesDigests:
    def test_image_roundtrips(self):
        image = BackendImage(
            [Record.from_pairs([("FILE", "f"), ("x", 1)], text="t")],
            examined=4,
            touched=2,
            index_hits=1,
            range_hits=0,
            fallback_scans=1,
        )
        decoded = codec.decode_image(through_json(codec.encode_image(image)))
        assert decoded == image

    def test_summary_roundtrips_minus_directory(self):
        summary = BackendSummary(
            frozenset({"f"}),
            None,
            {
                "f": FileSummary(
                    5,
                    {
                        "x": AttributeRange(0, 9, None, None, False, True),
                        "s": AttributeRange(None, None, "a", "zz", True, False),
                    },
                    None,
                )
            },
        )
        decoded = codec.decode_summary(
            through_json(codec.encode_summary(summary))
        )
        assert decoded == summary

    def test_clustered_summary_reattaches_lent_directory(self):
        directory = Directory()
        directory.add_ranges("x", 0, 100, 4)
        summary = BackendSummary(
            frozenset({"f"}),
            directory,
            {"f": FileSummary(2, {}, (frozenset({0, 1}), frozenset({3})))},
        )
        decoded = codec.decode_summary(
            through_json(codec.encode_summary(summary)), directory
        )
        assert decoded.directory is directory
        assert decoded.file_summaries == summary.file_summaries

    def test_digest_roundtrips(self):
        digest = AttributeIndexDigest(
            entries=7, nulls=1, nans=1, distinct=4, num_min=0, num_max=9,
            str_min="a", str_max="q",
        )
        decoded = codec.decode_digest(through_json(codec.encode_digest(digest)))
        assert decoded == digest


class TestSpans:
    def build_tree(self):
        root = Span("backend[0].retrieve")
        root.simulated_ms = 4.5
        root.wall_ms = 0.2
        root.attrs["records_examined"] = 9
        child = Span("qc.compile", root)
        child.simulated_ms = 0.0
        child.wall_ms = 0.05
        child.attrs["source"] = "(FILE = f)"
        grand = Span("qc.compile.codegen", child)
        grand.wall_ms = 0.01
        return root

    def test_span_tree_roundtrips(self):
        root = self.build_tree()
        decoded = codec.decode_span(through_json(codec.encode_span(root)))

        def shape(span):
            return (
                span.name,
                span.simulated_ms,
                span.wall_ms,
                dict(span.attrs),
                [shape(c) for c in span.children],
            )

        assert shape(decoded) == shape(root)

    def test_graft_attaches_under_parent(self):
        root = self.build_tree()
        parent = Span("backend[0].retrieve")
        codec.graft_spans(through_json([codec.encode_span(c) for c in root.children]), parent)
        assert [c.name for c in parent.children] == ["qc.compile"]
        assert parent.children[0].children[0].name == "qc.compile.codegen"
        assert parent.children[0].parent is parent


class TestTiming:
    def test_timing_model_roundtrips(self):
        timing = TimingModel()
        decoded = codec.decode_timing(through_json(codec.encode_timing(timing)))
        assert decoded == timing

    def test_custom_timing_roundtrips_floats(self):
        timing = TimingModel(broadcast_ms=0.125, page_scan_ms=1.0 / 3.0)
        decoded = codec.decode_timing(through_json(codec.encode_timing(timing)))
        assert repr(decoded.page_scan_ms) == repr(timing.page_scan_ms)
        assert decoded == timing
