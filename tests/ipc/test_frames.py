"""The tagged value encoding and the frame header, edge by edge."""

from __future__ import annotations

import json
import math
import struct

import pytest

from repro.ipc.frames import (
    CODEC_BINARY,
    CODEC_JSON,
    CODEC_TAGGED,
    FLAG_BATCH,
    HEADER,
    INTERN_MAX_LEN,
    MAGIC,
    FrameError,
    ValueDecoder,
    ValueEncoder,
    pack_frame,
    unpack_frame,
)


def roundtrip(value):
    return ValueDecoder().decode(ValueEncoder().encode(value))


def float_bits(value: float) -> bytes:
    return struct.pack("!d", value)


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            127,
            -128,
            2**31,
            2**62,
            -(2**63),
            2**70,
            -(10**30),
            0.0,
            1.5,
            -273.15,
            "",
            "plain",
            "é — ünïcode ✓",
            "x" * 500,
        ],
    )
    def test_roundtrip_exact(self, value):
        result = roundtrip(value)
        assert result == value
        assert type(result) is type(value)

    def test_nan_payload_bit_exact(self):
        nan = struct.unpack("!d", bytes.fromhex("7ff8000000001234"))[0]
        result = roundtrip(nan)
        assert math.isnan(result)
        assert float_bits(result) == bytes.fromhex("7ff8000000001234")

    def test_negative_zero_keeps_its_sign(self):
        assert float_bits(roundtrip(-0.0)) == float_bits(-0.0)

    def test_infinities(self):
        assert roundtrip(float("inf")) == float("inf")
        assert roundtrip(float("-inf")) == float("-inf")

    def test_bool_is_not_int_on_the_wire(self):
        assert roundtrip([True, 1, False, 0]) == [True, 1, False, 0]
        assert [type(v) for v in roundtrip([True, 1])] == [bool, int]


class TestContainers:
    def test_nested_structures(self):
        value = {
            "records": [
                {"pairs": [["FILE", "f"], ["a", i]], "text": ""}
                for i in range(5)
            ],
            "spans": {"name": "kds.execute", "children": [{"name": "leaf"}]},
            "empty_list": [],
            "empty_dict": {},
        }
        assert roundtrip(value) == value

    def test_tuples_become_lists_like_json(self):
        value = {"pair": ("a", 1), "nested": [(1, 2), (3,)]}
        assert roundtrip(value) == json.loads(json.dumps(value))

    def test_non_string_dict_keys_refused(self):
        with pytest.raises(FrameError):
            ValueEncoder().encode({1: "a"})

    def test_unencodable_type_refused(self):
        with pytest.raises(FrameError):
            ValueEncoder().encode({"bad": object()})

    def test_deep_nesting(self):
        value: list = []
        leaf = value
        for _ in range(60):
            inner: list = []
            leaf.append(inner)
            leaf = inner
        assert roundtrip(value) == value


class TestInterning:
    def test_dict_keys_intern_on_first_sight(self):
        encoder = ValueEncoder()
        first = encoder.encode({"elapsed_ms": 1})
        second = encoder.encode({"elapsed_ms": 2})
        assert len(second) < len(first)
        assert encoder.interned_count >= 1

    def test_values_intern_on_second_sight(self):
        encoder = ValueEncoder()
        encoder.encode(["student"])
        before = encoder.interned_count
        encoder.encode(["student"])  # second sighting defines it
        third = encoder.encode(["student"])  # now a 5-byte ref
        assert encoder.interned_count == before + 1
        assert len(third) < len(ValueEncoder().encode(["student"]))

    def test_decoder_mirrors_across_messages(self):
        encoder, decoder = ValueEncoder(), ValueDecoder()
        for i in range(4):
            message = {"cmd": "execute", "label": "broadcast", "seq": i}
            assert decoder.decode(encoder.encode(message)) == message

    def test_long_strings_never_intern(self):
        encoder = ValueEncoder()
        big = "v" * (INTERN_MAX_LEN + 1)
        for _ in range(3):
            encoder.encode([big])
        assert encoder.interned_count == 0

    def test_fresh_decoder_cannot_read_refs(self):
        encoder = ValueEncoder()
        encoder.encode({"key": 1})
        ref_message = encoder.encode({"key": 2})
        with pytest.raises(FrameError):
            ValueDecoder().decode(ref_message)


class TestFrameHeader:
    def test_roundtrip(self):
        frame = pack_frame(CODEC_TAGGED, FLAG_BATCH, b"payload")
        assert unpack_frame(frame) == (CODEC_TAGGED, FLAG_BATCH, b"payload")

    def test_codec_ids_are_distinct(self):
        assert len({CODEC_JSON, CODEC_BINARY, CODEC_TAGGED}) == 3

    def test_bad_magic_refused(self):
        frame = bytearray(pack_frame(CODEC_BINARY, 0, b"x"))
        frame[0] ^= 0xFF
        with pytest.raises(FrameError):
            unpack_frame(bytes(frame))

    def test_truncated_frame_refused(self):
        frame = pack_frame(CODEC_BINARY, 0, b"full payload")
        with pytest.raises(FrameError):
            unpack_frame(frame[:-3])

    def test_short_header_refused(self):
        with pytest.raises(FrameError):
            unpack_frame(bytes([MAGIC, 0]))

    def test_length_field_is_checked(self):
        header = HEADER.pack(MAGIC, CODEC_BINARY, 0, 99)
        with pytest.raises(FrameError):
            unpack_frame(header + b"short")

    def test_trailing_bytes_refused_by_decoder(self):
        payload = ValueEncoder().encode(1)
        with pytest.raises(FrameError):
            ValueDecoder().decode(payload + b"\x00")
