"""PipeTransport: framing, batching, and codec agreement over real pipes."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.ipc.frames import FrameError
from repro.ipc.transport import (
    CODEC_IDS,
    DEFAULT_CODEC,
    PipeTransport,
    validate_codec,
)

CODECS = sorted(CODEC_IDS)


@pytest.fixture()
def pipe_pair():
    left_end, right_end = multiprocessing.Pipe(duplex=True)
    yield left_end, right_end
    left_end.close()
    right_end.close()


def pair(pipe_pair, codec_left, codec_right=None):
    left_end, right_end = pipe_pair
    return (
        PipeTransport(left_end, codec_left),
        PipeTransport(right_end, codec_right or codec_left),
    )


class TestCodecSelection:
    def test_default_is_binary(self):
        assert DEFAULT_CODEC == "binary"

    @pytest.mark.parametrize("codec", CODECS)
    def test_validate_accepts_known(self, codec):
        assert validate_codec(codec) == codec

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown ipc codec"):
            validate_codec("protobuf")


class TestRoundTrips:
    MESSAGE = {
        "cmd": "execute",
        "request": {"op": "RETRIEVE", "query": [[["FILE", "=", "f"]]]},
        "label": "broadcast",
        "elapsed_ms": 0.4375,
        "nothing": None,
        "flags": [True, False],
    }

    @pytest.mark.parametrize("codec", CODECS)
    def test_single_message(self, pipe_pair, codec):
        sender, receiver = pair(pipe_pair, codec)
        sender.send(self.MESSAGE)
        assert receiver.recv() == self.MESSAGE

    @pytest.mark.parametrize("codec", CODECS)
    def test_batch_order_preserved(self, pipe_pair, codec):
        sender, receiver = pair(pipe_pair, codec)
        batch = [dict(self.MESSAGE, seq=i) for i in range(7)]
        sender.send_batch(batch)
        assert receiver.recv_batch() == batch

    @pytest.mark.parametrize("codec", CODECS)
    def test_recv_any_distinguishes_frames(self, pipe_pair, codec):
        sender, receiver = pair(pipe_pair, codec)
        sender.send({"a": 1})
        sender.send_batch([{"b": 2}])
        assert receiver.recv_any() == (False, {"a": 1})
        assert receiver.recv_any() == (True, [{"b": 2}])

    @pytest.mark.parametrize("codec", CODECS)
    def test_many_messages_share_one_connection(self, pipe_pair, codec):
        sender, receiver = pair(pipe_pair, codec)
        for i in range(50):
            sender.send({"cmd": "replay", "seq": i, "file": "student"})
            assert receiver.recv()["seq"] == i

    def test_poll(self, pipe_pair):
        sender, receiver = pair(pipe_pair, "binary")
        assert receiver.poll(0.0) is False
        sender.send({"x": 1})
        assert receiver.poll(1.0) is True


class TestFrameDiscipline:
    def test_codec_mismatch_is_typed(self, pipe_pair):
        sender, receiver = pair(pipe_pair, "binary", "json")
        sender.send({"x": 1})
        with pytest.raises(FrameError, match="codec mismatch"):
            receiver.recv()

    def test_recv_refuses_batch_frame(self, pipe_pair):
        sender, receiver = pair(pipe_pair, "binary")
        sender.send_batch([{"x": 1}])
        with pytest.raises(FrameError, match="unexpected batch"):
            receiver.recv()

    def test_recv_batch_refuses_single_frame(self, pipe_pair):
        sender, receiver = pair(pipe_pair, "binary")
        sender.send({"x": 1})
        with pytest.raises(FrameError, match="expected a batch"):
            receiver.recv_batch()

    def test_garbage_on_the_pipe_is_typed(self, pipe_pair):
        left_end, right_end = pipe_pair
        receiver = PipeTransport(right_end, "binary")
        left_end.send_bytes(b"not a frame at all")
        with pytest.raises(FrameError):
            receiver.recv()

    def test_unencodable_payload_is_typed(self, pipe_pair):
        sender, _ = pair(pipe_pair, "binary")
        with pytest.raises(FrameError):
            sender.send({"bad": object()})
