"""Dead worker processes must fail fast, typed, and named — never hang.

Before the fix, a worker dying mid-request left the controller blocked
forever on the response queue (or failing with an opaque EOF).  Now the
proxy polls the pipe while watching the process, raises
:class:`~repro.errors.WorkerCrashed` naming the backend, and the engine
shuts the whole farm down so no orphaned workers linger.
"""

from __future__ import annotations

import pytest

from repro.abdl import parse_request
from repro.errors import ExecutionError, WorkerCrashed
from repro.mbds import KernelDatabaseSystem


@pytest.fixture()
def kds():
    kds = KernelDatabaseSystem(backend_count=3, engine="process")
    for i in range(6):
        kds.execute(
            parse_request(f"INSERT (<FILE, f>, <f, f${i}>, <a, {i}>)")
        )
    yield kds
    kds.shutdown()


def kill_backend(kds, backend_id):
    process = kds.controller.backends[backend_id]._process
    process.kill()
    process.join(timeout=10)


class TestWorkerCrash:
    def test_broadcast_raises_typed_error_naming_backend(self, kds):
        kill_backend(kds, 1)
        with pytest.raises(WorkerCrashed) as exc:
            kds.execute(parse_request("RETRIEVE (FILE = f) (*)"))
        assert exc.value.backend_id == 1
        assert "backend 1" in str(exc.value)

    def test_crash_shuts_down_the_farm(self, kds):
        kill_backend(kds, 0)
        with pytest.raises(WorkerCrashed):
            kds.execute(parse_request("RETRIEVE (FILE = f) (*)"))
        # Every other worker was stopped by the engine's cleanup.
        assert all(
            not backend._process.is_alive()
            for backend in kds.controller.backends
        )

    def test_requests_after_shutdown_fail_clearly(self, kds):
        kill_backend(kds, 2)
        with pytest.raises(WorkerCrashed):
            kds.execute(parse_request("RETRIEVE (FILE = f) (*)"))
        with pytest.raises((ExecutionError, WorkerCrashed)):
            kds.execute(parse_request("RETRIEVE (FILE = f) (*)"))

    def test_routed_single_backend_request_detects_crash(self, kds):
        kill_backend(kds, 1)
        # INSERT dispatches to one placed backend; round-robin will hit
        # the dead worker within a few placements.
        with pytest.raises(WorkerCrashed):
            for i in range(6):
                kds.execute(
                    parse_request(f"INSERT (<FILE, f>, <f, x${i}>, <a, {i}>)")
                )

    def test_shutdown_is_idempotent_after_crash(self, kds):
        kill_backend(kds, 0)
        with pytest.raises(WorkerCrashed):
            kds.execute(parse_request("RETRIEVE (FILE = f) (*)"))
        kds.shutdown()
        kds.shutdown()
