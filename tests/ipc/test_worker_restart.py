"""Worker restart on crash: heal the farm from durable state.

With a WAL attached and no transaction open, a dead worker no longer
kills the farm: the kernel respawns every worker, restores the
checkpoint snapshot, replays the committed WAL tail, re-adds runtime
indexes, and retries the request — callers never see the crash.  The
whole farm is replaced (not just the dead worker) because a survivor
may hold applies from a transaction that aborted when the crash
surfaced; rebuilding all workers from the durable baseline is the only
state that is provably consistent.

Mid-transaction crashes keep PR 7's contract: typed
:class:`~repro.errors.WorkerCrashed`, farm shutdown, recovery via
:func:`~repro.wal.recovery.recover_mlds`.
"""

from __future__ import annotations

import pytest

from repro.abdl import parse_request
from repro.core.mlds import MLDS
from repro.errors import WorkerCrashed
from repro.wal.recovery import checkpoint_mlds, recover_mlds

from tests.wal.conftest import farm_image, insert


def kill_backend(mlds, backend_id):
    process = mlds.kds.controller.backends[backend_id]._process
    process.kill()
    process.join(timeout=10)


def retrieve_all(kds):
    trace = kds.execute(parse_request("RETRIEVE (FILE = f) (*)"))
    return sorted(
        (tuple(record.pairs()), record.text) for record in trace.result.records
    )


@pytest.fixture()
def durable(tmp_path):
    mlds = MLDS(backend_count=3, engine="process", wal=tmp_path / "wal")
    for i in range(9):
        mlds.kds.execute(insert("f", a=i))
    yield mlds
    mlds.kds.shutdown()


class TestTransparentHeal:
    def test_retrieve_succeeds_after_worker_death(self, durable):
        before = retrieve_all(durable.kds)
        kill_backend(durable, 1)
        assert retrieve_all(durable.kds) == before
        assert all(
            backend._process.is_alive()
            for backend in durable.kds.controller.backends
        )

    def test_heal_restores_checkpoint_plus_wal_tail(self, durable, tmp_path):
        checkpoint_mlds(durable)
        durable.kds.execute(insert("f", a=99))  # tail beyond the checkpoint
        before = farm_image(durable)
        kill_backend(durable, 0)
        retrieve_all(durable.kds)  # triggers the heal
        assert farm_image(durable) == before

    def test_mutations_after_heal_are_durable(self, durable):
        kill_backend(durable, 2)
        durable.kds.execute(insert("f", a=100))
        healed = farm_image(durable)
        assert sum(len(rows) for rows in healed) == 10
        wal_dir = durable.kds.wal.directory
        durable.kds.shutdown()
        # Crash-restart from disk sees exactly what the healed farm held.
        recovered = recover_mlds(wal_dir)
        try:
            assert farm_image(recovered) == healed
        finally:
            recovered.kds.shutdown()

    def test_healed_farm_matches_never_crashed_farm(self, durable, tmp_path):
        kill_backend(durable, 1)
        durable.kds.execute(insert("f", a=50))
        durable.kds.execute(insert("g", b=1))

        reference = MLDS(backend_count=3, wal=tmp_path / "ref")
        for i in range(9):
            reference.kds.execute(insert("f", a=i))
        reference.kds.execute(insert("f", a=50))
        reference.kds.execute(insert("g", b=1))
        try:
            assert farm_image(durable) == farm_image(reference)
        finally:
            reference.kds.shutdown()

    def test_heal_reapplies_runtime_indexes(self, durable):
        durable.kds.controller.add_index("a")
        kill_backend(durable, 0)
        retrieve_all(durable.kds)  # triggers the heal
        assert durable.kds.controller.indexed_attributes == ["a"]
        summary = durable.kds.controller.backends[0].execute(
            parse_request("RETRIEVE (FILE = f) (*)")
        )
        # The respawned worker answered — and add_index ran against it
        # without raising, so index-backed lookups keep working.
        assert summary is not None

    def test_heal_counts_surface_in_metrics(self, tmp_path):
        from repro.obs import Observability

        mlds = MLDS(
            backend_count=2,
            engine="process",
            wal=tmp_path / "wal",
            obs=Observability(tracing=True),
        )
        try:
            mlds.kds.execute(insert("f", a=1))
            kill_backend(mlds, 0)
            retrieve_all(mlds.kds)
            assert mlds.obs.metrics.counter_value("kds.worker_heals") == 1
        finally:
            mlds.kds.shutdown()


class TestHealIneligible:
    def test_mid_transaction_crash_keeps_typed_error(self, durable):
        durable.kds.begin_transaction()
        durable.kds.execute(insert("f", a=200))
        kill_backend(durable, 1)
        with pytest.raises(WorkerCrashed) as exc:
            durable.kds.execute(parse_request("RETRIEVE (FILE = f) (*)"))
        assert exc.value.backend_id == 1
        # No heal: the farm was shut down, PR 7 style.
        assert all(
            not backend._process.is_alive()
            for backend in durable.kds.controller.backends
        )

    def test_no_wal_means_no_heal(self):
        mlds = MLDS(backend_count=2, engine="process")
        try:
            mlds.kds.execute(insert("f", a=1))
            kill_backend(mlds, 0)
            with pytest.raises(WorkerCrashed):
                mlds.kds.execute(parse_request("RETRIEVE (FILE = f) (*)"))
        finally:
            mlds.kds.shutdown()

    def test_second_crash_right_after_heal_gives_up(self, durable, monkeypatch):
        kill_backend(durable, 1)
        original = durable.kds.heal_workers

        def heal_then_rekill():
            replayed = original()
            kill_backend(durable, 1)  # the freshly healed worker dies too
            return replayed

        monkeypatch.setattr(durable.kds, "heal_workers", heal_then_rekill)
        with pytest.raises(WorkerCrashed):
            durable.kds.execute(parse_request("RETRIEVE (FILE = f) (*)"))
