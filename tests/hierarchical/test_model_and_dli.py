"""The hierarchical model and the DL/I parsers."""

import pytest

from repro.errors import ParseError, SchemaError
from repro.hierarchical import (
    FieldType,
    HierarchicalSchema,
    SegmentField,
    SegmentType,
    dli,
    parse_call,
    parse_calls,
    parse_hierarchical_schema,
)

DDL = """
DATABASE school;
SEGMENT dept ROOT (dname CHAR(20), budget INT);
SEGMENT course UNDER dept (title CHAR(40), credits INT);
SEGMENT offering UNDER course (semester CHAR(6), fee FLOAT);
SEGMENT staff UNDER dept (sname CHAR(30));
"""


@pytest.fixture(scope="module")
def schema():
    return parse_hierarchical_schema(DDL)


class TestModel:
    def test_segments_and_parents(self, schema):
        assert set(schema.segments) == {"dept", "course", "offering", "staff"}
        assert schema.segment("dept").is_root
        assert schema.segment("offering").parent == "course"

    def test_roots_and_children(self, schema):
        assert [s.name for s in schema.roots()] == ["dept"]
        assert [s.name for s in schema.children_of("dept")] == ["course", "staff"]

    def test_descendants_preorder(self, schema):
        assert schema.descendants_of("dept") == ["dept", "course", "offering", "staff"]

    def test_ancestry(self, schema):
        assert schema.ancestry("offering") == ["dept", "course", "offering"]
        assert schema.ancestry("dept") == ["dept"]

    def test_hierarchical_order(self, schema):
        assert schema.hierarchical_order() == ["dept", "course", "offering", "staff"]

    def test_field_types(self, schema):
        assert schema.segment("offering").field_named("fee").type is FieldType.FLOAT
        assert schema.segment("dept").field_named("dname").length == 20

    def test_unknown_parent_rejected(self):
        schema = HierarchicalSchema("bad")
        with pytest.raises(SchemaError):
            schema.add_segment(SegmentType("child", parent="ghost"))

    def test_duplicate_segment_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.add_segment(SegmentType("dept"))

    def test_rootless_schema_rejected(self):
        schema = HierarchicalSchema("bad")
        with pytest.raises(SchemaError):
            schema.validate()

    def test_render_roundtrip(self, schema):
        rendered = schema.render()
        assert parse_hierarchical_schema(rendered).render() == rendered


class TestDDLErrors:
    def test_missing_header(self):
        with pytest.raises(ParseError):
            parse_hierarchical_schema("SEGMENT a ROOT (x INT);")

    def test_child_before_parent(self):
        with pytest.raises(SchemaError):
            parse_hierarchical_schema(
                "DATABASE d;\nSEGMENT b UNDER a (x INT);\nSEGMENT a ROOT (y INT);"
            )


class TestDMLParser:
    def test_gu_with_qualified_path(self):
        call = parse_call("GU dept(dname = 'cs') course(credits >= 3)")
        assert isinstance(call, dli.GetUnique)
        assert call.ssas[0].value == "cs"
        assert call.ssas[1].operator == ">="

    def test_gn_forms(self):
        assert parse_call("GN").ssa is None
        assert parse_call("GN course").ssa.segment == "course"
        assert parse_call("GN course(credits = 4)").ssa.qualified

    def test_gnp(self):
        call = parse_call("GNP offering")
        assert isinstance(call, dli.GetNextWithinParent)

    def test_isrt(self):
        call = parse_call("ISRT dept(dname = 'cs') course")
        assert isinstance(call, dli.Insert)
        assert not call.ssas[-1].qualified

    def test_repl_dlet(self):
        assert isinstance(parse_call("REPL"), dli.Replace)
        assert isinstance(parse_call("DLET"), dli.Delete)

    def test_fld(self):
        call = parse_call("FLD credits = 4")
        assert call.name == "credits" and call.value == 4
        assert parse_call("FLD x = NULL").value is None
        assert parse_call("FLD x = -2").value == -2

    def test_sequence(self):
        calls = parse_calls("FLD a = 1; ISRT root; GU root(a = 1)")
        assert len(calls) == 3

    def test_render_roundtrip(self):
        for text in (
            "GU dept(dname = 'cs') course",
            "GN course(credits = 4)",
            "GNP",
            "ISRT dept(dname = 'cs') course",
            "REPL",
            "DLET",
            "FLD credits = 4",
        ):
            call = parse_call(text)
            assert parse_call(call.render()).render() == call.render()

    @pytest.mark.parametrize(
        "text",
        [
            "GU",  # needs an SSA
            "GN a b",  # too many SSAs
            "FROB x",
            "GU dept(dname 'cs')",
        ],
    )
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            parse_call(text)
