"""The DL/I language interface engine over AB(hierarchical)."""

import pytest

from repro import MLDS
from repro.errors import ExecutionError, SchemaError, TranslationError
from repro.kms.dli_engine import STATUS_END, STATUS_NOT_FOUND, STATUS_OK

DDL = """
DATABASE school;
SEGMENT dept ROOT (dname CHAR(20), budget INT);
SEGMENT course UNDER dept (title CHAR(40), credits INT);
SEGMENT offering UNDER course (semester CHAR(6), instructor CHAR(30));
"""


def load(session):
    """Two departments, three courses, two offerings, via ISRT."""
    script = [
        ("FLD dname = 'cs'; FLD budget = 100", "ISRT dept"),
        ("FLD dname = 'math'; FLD budget = 50", "ISRT dept"),
        ("FLD title = 'Databases'; FLD credits = 4", "ISRT dept(dname = 'cs') course"),
        ("FLD title = 'Compilers'; FLD credits = 3", "ISRT dept(dname = 'cs') course"),
        ("FLD title = 'Calculus'; FLD credits = 4", "ISRT dept(dname = 'math') course"),
        (
            "FLD semester = 'fall'; FLD instructor = 'Hsiao'",
            "ISRT dept(dname = 'cs') course(title = 'Databases') offering",
        ),
        (
            "FLD semester = 'spring'; FLD instructor = 'Demurjian'",
            "ISRT dept(dname = 'cs') course(title = 'Databases') offering",
        ),
    ]
    for flds, isrt in script:
        session.run(flds)
        assert session.execute(isrt).status == STATUS_OK


@pytest.fixture()
def session():
    mlds = MLDS(backend_count=3)
    mlds.define_hierarchical_database(DDL)
    session = mlds.open_dli_session("school")
    load(session)
    return session


class TestGetUnique:
    def test_qualified_root(self, session):
        result = session.execute("GU dept(dname = 'math')")
        assert result.ok and result.fields["budget"] == 50

    def test_path_navigation(self, session):
        result = session.execute(
            "GU dept(dname = 'cs') course(title = 'Compilers')"
        )
        assert result.ok and result.fields["credits"] == 3

    def test_three_level_path(self, session):
        result = session.execute(
            "GU dept(dname = 'cs') course(title = 'Databases') "
            "offering(semester = 'spring')"
        )
        assert result.fields["instructor"] == "Demurjian"

    def test_unqualified_takes_first_in_hierarchic_order(self, session):
        result = session.execute("GU dept")
        assert result.fields["dname"] == "cs"  # inserted first

    def test_not_found(self, session):
        assert session.execute("GU dept(dname = 'physics')").status == STATUS_NOT_FOUND

    def test_path_respects_parentage(self, session):
        # Calculus exists, but not under cs.
        result = session.execute("GU dept(dname = 'cs') course(title = 'Calculus')")
        assert result.status == STATUS_NOT_FOUND

    def test_broken_path_rejected(self, session):
        with pytest.raises(TranslationError):
            session.execute("GU dept offering")

    def test_fills_io_area(self, session):
        session.execute("GU dept(dname = 'cs')")
        assert session.io_area == {"dname": "cs", "budget": 100}


class TestGetNext:
    def test_typed_scan(self, session):
        session.execute("GU course")
        titles = ["Databases"]
        while True:
            result = session.execute("GN course")
            if not result.ok:
                break
            titles.append(result.fields["title"])
        assert titles == ["Databases", "Compilers", "Calculus"]

    def test_typed_scan_with_qualification(self, session):
        session.execute("GU dept")
        found = []
        while True:
            result = session.execute("GN course(credits = 4)")
            if not result.ok:
                break
            found.append(result.fields["title"])
        assert found == ["Databases", "Calculus"]

    def test_unqualified_gn_walks_preorder(self, session):
        sequence = []
        result = session.execute("GU dept")
        sequence.append((result.segment, result.fields.get("dname") or result.fields.get("title")))
        while True:
            result = session.execute("GN")
            if not result.ok:
                break
            sequence.append(result.segment)
        # Pre-order: cs, its courses (Databases + its offerings, Compilers),
        # then math and Calculus.
        assert sequence[1:] == [
            "course",
            "offering",
            "offering",
            "course",
            "dept",
            "course",
        ]

    def test_end_status(self, session):
        session.execute("GU dept(dname = 'math') course")
        assert session.execute("GN course").status == STATUS_END


class TestGetNextWithinParent:
    def test_children_of_current_parent(self, session):
        session.execute("GU dept(dname = 'cs')")
        titles = []
        while True:
            result = session.execute("GNP course")
            if not result.ok:
                break
            titles.append(result.fields["title"])
        assert titles == ["Databases", "Compilers"]

    def test_parentage_survives_gnp(self, session):
        session.execute("GU dept(dname = 'cs')")
        session.execute("GNP course")
        second = session.execute("GNP course")
        assert second.fields["title"] == "Compilers"

    def test_qualified_gnp(self, session):
        session.execute("GU dept(dname = 'cs')")
        result = session.execute("GNP course(credits = 3)")
        assert result.fields["title"] == "Compilers"

    def test_wrong_child_type_rejected(self, session):
        session.execute("GU dept(dname = 'cs')")
        with pytest.raises(TranslationError):
            session.execute("GNP offering")

    def test_needs_parentage(self):
        mlds = MLDS(backend_count=2)
        mlds.define_hierarchical_database(DDL)
        fresh = mlds.open_dli_session("school")
        with pytest.raises(ExecutionError):
            fresh.execute("GNP course")


class TestInsert:
    def test_isrt_preserves_pending_io_area(self, session):
        session.run("FLD title = 'Networks'; FLD credits = 3")
        result = session.execute("ISRT dept(dname = 'math') course")
        assert result.ok
        check = session.execute("GU dept(dname = 'math') course(title = 'Networks')")
        assert check.ok and check.fields["credits"] == 3

    def test_isrt_missing_parent(self, session):
        session.run("FLD title = 'X'; FLD credits = 1")
        result = session.execute("ISRT dept(dname = 'ghost') course")
        assert result.status == STATUS_NOT_FOUND

    def test_isrt_nonroot_without_path_rejected(self, session):
        with pytest.raises(TranslationError):
            session.execute("ISRT course")

    def test_isrt_becomes_current(self, session):
        session.run("FLD dname = 'physics'; FLD budget = 10")
        result = session.execute("ISRT dept")
        assert result.ok
        repl = session.execute("REPL")  # operates on the new segment
        assert repl.dbkey == result.dbkey


class TestReplaceDelete:
    def test_repl_updates_fields(self, session):
        session.execute("GU dept(dname = 'math')")
        session.execute("FLD budget = 75")
        result = session.execute("REPL")
        assert result.ok
        assert session.execute("GU dept(dname = 'math')").fields["budget"] == 75

    def test_repl_type_checked(self, session):
        session.execute("GU dept(dname = 'math')")
        session.execute("FLD budget = 'lots'")
        with pytest.raises(SchemaError):
            session.execute("REPL")

    def test_repl_needs_position(self):
        mlds = MLDS(backend_count=2)
        mlds.define_hierarchical_database(DDL)
        fresh = mlds.open_dli_session("school")
        with pytest.raises(ExecutionError):
            fresh.execute("REPL")

    def test_dlet_removes_subtree(self, session):
        session.execute("GU dept(dname = 'cs')")
        result = session.execute("DLET")
        assert result.ok
        # cs, its 2 courses and 2 offerings are gone; math + Calculus stay.
        assert session.execute("GU dept(dname = 'cs')").status == STATUS_NOT_FOUND
        assert session.execute("GU course(title = 'Databases')").status == STATUS_NOT_FOUND
        assert session.execute("GU offering").status == STATUS_NOT_FOUND
        assert session.execute("GU dept(dname = 'math')").ok
        assert session.execute("GU course(title = 'Calculus')").ok

    def test_dlet_clears_position(self, session):
        session.execute("GU dept(dname = 'cs')")
        session.execute("DLET")
        with pytest.raises(ExecutionError):
            session.execute("REPL")


class TestZawisSqlInterface:
    """Chapter VII.B: accessing a hierarchical database via SQL."""

    def test_select_over_segments(self, session):
        mlds_session = session  # the DL/I session shares the kernel
        # Reach the same MLDS through a SQL session.
        mlds = None
        # Rebuild: open SQL on the same system via the engine's kc.kds.
        from repro.core.mlds import MLDS as _M

        # The fixture's MLDS is reachable through the kds catalog.
        # Simpler: create a fresh system for SQL-specific assertions.
        system = _M(backend_count=3)
        system.define_hierarchical_database(DDL)
        dli_session = system.open_dli_session("school")
        load(dli_session)
        sql_session = system.open_sql_session("school")
        rows = sql_session.execute("SELECT title, credits FROM course").rows
        assert {r["title"] for r in rows} == {"Databases", "Compilers", "Calculus"}
        joined = sql_session.execute(
            "SELECT dname, title FROM dept, course WHERE dept.dept = course.parent"
        ).rows
        assert {(r["dname"], r["title"]) for r in joined} == {
            ("cs", "Databases"),
            ("cs", "Compilers"),
            ("math", "Calculus"),
        }
        # Updates to data fields pass; structure and inserts/deletes do not.
        assert sql_session.execute(
            "UPDATE course SET credits = 5 WHERE title = 'Compilers'"
        ).touched == 1
        assert dli_session.execute(
            "GU dept(dname = 'cs') course(title = 'Compilers')"
        ).fields["credits"] == 5
        with pytest.raises(TranslationError):
            sql_session.execute("INSERT INTO course VALUES ('x', 'y', 'z', 1)")
        with pytest.raises(TranslationError):
            sql_session.execute("DELETE FROM offering")
        with pytest.raises(TranslationError):
            sql_session.execute("UPDATE course SET parent = 'dept$1'")
