"""Parsing textual ABDL requests (thesis syntax)."""

import pytest

from repro.abdl import (
    DeleteRequest,
    InsertRequest,
    RetrieveCommonRequest,
    RetrieveRequest,
    UpdateRequest,
    parse_query,
    parse_request,
    parse_transaction,
)
from repro.errors import ParseError


class TestRetrieve:
    def test_thesis_example(self):
        request = parse_request(
            "RETRIEVE ((FILE = course) AND (title = 'Advanced Database')) "
            "(title, dept, semester, credits) BY course"
        )
        assert isinstance(request, RetrieveRequest)
        assert request.by == "course"
        assert [t.attribute for t in request.target] == [
            "title",
            "dept",
            "semester",
            "credits",
        ]

    def test_all_attributes_star(self):
        request = parse_request("RETRIEVE (FILE = person) (*)")
        assert request.wants_all

    def test_all_attributes_keyword(self):
        request = parse_request("RETRIEVE (FILE = person) (ALL)")
        assert request.wants_all

    def test_aggregates(self):
        request = parse_request("RETRIEVE (FILE = course) (COUNT(*), AVG(credits))")
        assert request.has_aggregates
        assert request.target[0].aggregate == "COUNT"
        assert request.target[1].attribute == "credits"

    def test_unquoted_dbkey_value(self):
        request = parse_request("RETRIEVE ((FILE = person) AND (person = person$3)) (*)")
        predicate = list(list(request.query)[0])[1]
        assert predicate.value == "person$3"

    def test_or_query(self):
        request = parse_request(
            "RETRIEVE (((FILE = a) AND (x = 1)) OR ((FILE = b) AND (x = 2))) (*)"
        )
        assert len(request.query) == 2

    def test_negative_number(self):
        request = parse_request("RETRIEVE (balance < -5) (*)")
        predicate = list(list(request.query)[0])[0]
        assert predicate.value == -5

    def test_null_value(self):
        request = parse_request("RETRIEVE (advisor != NULL) (*)")
        predicate = list(list(request.query)[0])[0]
        assert predicate.value is None


class TestOtherRequests:
    def test_insert(self):
        request = parse_request(
            "INSERT (<FILE, course>, <course, course$17>, <title, 'DB'>, <credits, 3>)"
        )
        assert isinstance(request, InsertRequest)
        assert request.record["credits"] == 3
        assert request.record.file_name == "course"

    def test_delete(self):
        request = parse_request("DELETE ((FILE = course) AND (credits = 0))")
        assert isinstance(request, DeleteRequest)

    def test_update_constant(self):
        request = parse_request("UPDATE (FILE = course) (credits = 4)")
        assert isinstance(request, UpdateRequest)
        assert request.modifier.value == 4

    def test_update_null(self):
        request = parse_request("UPDATE (FILE = s) (advisor = NULL)")
        assert request.modifier.value is None

    def test_update_arithmetic(self):
        request = parse_request("UPDATE (FILE = e) (salary = salary + 1000)")
        assert request.modifier.arithmetic == "+"
        assert request.modifier.operand == 1000

    def test_retrieve_common(self):
        request = parse_request(
            "RETRIEVE-COMMON (FILE = faculty) COMMON (dept, dname) "
            "(FILE = department) (budget)"
        )
        assert isinstance(request, RetrieveCommonRequest)
        assert request.left_attribute == "dept"
        assert request.right_attribute == "dname"

    def test_retrieve_common_single_attribute(self):
        request = parse_request(
            "RETRIEVE-COMMON (FILE = a) COMMON (k) (FILE = b) (*)"
        )
        assert request.left_attribute == request.right_attribute == "k"


class TestTransactions:
    def test_multi_request(self):
        transaction = parse_transaction(
            "INSERT (<FILE, f>, <f, f$1>)\n"
            "RETRIEVE (FILE = f) (*)\n"
            "DELETE (FILE = f)"
        )
        assert len(transaction) == 3

    def test_render_joins_lines(self):
        transaction = parse_transaction("DELETE (FILE = f)\nDELETE (FILE = g)")
        assert transaction.render().count("\n") == 1


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "FROB (FILE = x) (*)",
            "RETRIEVE (FILE = x)",  # missing target list
            "RETRIEVE (FILE) (*)",
            "INSERT ()",
            "UPDATE (FILE = x)",
            "RETRIEVE (FILE = x) (*) trailing",
        ],
    )
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            parse_request(text)

    def test_unterminated_string(self):
        from repro.errors import LexError

        with pytest.raises(LexError):
            parse_request("RETRIEVE (title = 'oops) (*)")


class TestRenderRoundtrip:
    @pytest.mark.parametrize(
        "text",
        [
            "RETRIEVE ((FILE = 'course') AND (credits >= 3)) (title, credits) BY dept",
            "INSERT (<FILE, 'f'>, <f, 'f$1'>, <x, 1.5>)",
            "DELETE ((a = 1) OR (b = 2))",
            "UPDATE (FILE = 'e') (salary = salary * 2)",
            "RETRIEVE (FILE = 'c') (COUNT(*), MIN(credits))",
        ],
    )
    def test_parse_render_fixpoint(self, text):
        once = parse_request(text).render()
        assert parse_request(once).render() == once

    def test_query_roundtrip(self):
        query = parse_query("((a = 1) AND (b = 'x'))")
        assert parse_query(query.render()).render() == query.render()
