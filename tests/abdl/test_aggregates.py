"""Aggregate evaluation and grouping semantics."""

import pytest

from repro.abdl.aggregates import evaluate_aggregate, group_records
from repro.abdm import Record


def records_from(values, attribute="x"):
    return [Record.from_pairs([("FILE", "f"), (attribute, v)]) for v in values]


class TestCount:
    def test_count_star_counts_records(self):
        assert evaluate_aggregate("COUNT", "*", records_from([1, None, 3])) == 3

    def test_count_attribute_skips_nulls(self):
        assert evaluate_aggregate("COUNT", "x", records_from([1, None, 3])) == 2

    def test_count_empty(self):
        assert evaluate_aggregate("COUNT", "x", []) == 0


class TestNumericAggregates:
    def test_sum(self):
        assert evaluate_aggregate("SUM", "x", records_from([1, 2, 3.5])) == 6.5

    def test_avg(self):
        assert evaluate_aggregate("AVG", "x", records_from([2, 4])) == 3

    def test_sum_ignores_strings(self):
        assert evaluate_aggregate("SUM", "x", records_from([1, "two", 3])) == 4

    def test_empty_numeric_is_null(self):
        assert evaluate_aggregate("SUM", "x", []) is None
        assert evaluate_aggregate("AVG", "x", records_from(["a"])) is None


class TestMinMax:
    def test_numeric_min_max(self):
        records = records_from([3, 1, 2])
        assert evaluate_aggregate("MIN", "x", records) == 1
        assert evaluate_aggregate("MAX", "x", records) == 3

    def test_string_fallback(self):
        records = records_from(["pear", "apple"])
        assert evaluate_aggregate("MIN", "x", records) == "apple"

    def test_numerics_win_over_strings(self):
        records = records_from([5, "apple"])
        assert evaluate_aggregate("MIN", "x", records) == 5

    def test_empty_is_null(self):
        assert evaluate_aggregate("MIN", "x", []) is None


class TestUnknown:
    def test_unknown_operation(self):
        with pytest.raises(ValueError):
            evaluate_aggregate("MEDIAN", "x", [])


class TestGrouping:
    def test_group_order_is_first_seen(self):
        records = records_from(["b", "a", "b", "c"], attribute="g")
        groups = group_records(records, "g")
        assert [key for key, _ in groups] == ["b", "a", "c"]
        assert len(groups[0][1]) == 2

    def test_no_by_single_group(self):
        records = records_from([1, 2])
        groups = group_records(records, None)
        assert len(groups) == 1 and groups[0][0] is None

    def test_null_key_groups_together(self):
        records = records_from([None, 1, None], attribute="g")
        groups = group_records(records, "g")
        assert len(groups) == 2
        assert len(dict(groups)[None]) == 2
