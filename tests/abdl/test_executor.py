"""ABDL execution over a store: the five kernel operations."""

import pytest

from repro.abdl import Executor, parse_request
from repro.abdm import ABStore


@pytest.fixture()
def executor():
    store = ABStore()
    ex = Executor(store)
    rows = [
        ("course$1", "Databases", "cs", 4),
        ("course$2", "Compilers", "cs", 3),
        ("course$3", "Calculus", "math", 4),
    ]
    for key, title, dept, credits in rows:
        ex.execute(
            parse_request(
                f"INSERT (<FILE, course>, <course, {key}>, <title, '{title}'>, "
                f"<dept, '{dept}'>, <credits, {credits}>)"
            )
        )
    for key, dname in (("dept$1", "cs"), ("dept$2", "math")):
        ex.execute(
            parse_request(
                f"INSERT (<FILE, department>, <department, {key}>, <dname, '{dname}'>)"
            )
        )
    return ex


class TestInsert:
    def test_insert_counts(self, executor):
        assert executor.store.count("course") == 3

    def test_insert_copies_record(self, executor):
        request = parse_request("INSERT (<FILE, course>, <course, c$9>)")
        executor.execute(request)
        request.record.set("course", "mutated")
        found = executor.execute(parse_request("RETRIEVE ((FILE = course) AND (course = c$9)) (*)"))
        assert len(found.records) == 1


class TestRetrieve:
    def test_query_and_projection(self, executor):
        result = executor.execute(
            parse_request("RETRIEVE ((FILE = course) AND (dept = 'cs')) (title)")
        )
        assert [r.get("title") for r in result.records] == ["Databases", "Compilers"]

    def test_all_attributes(self, executor):
        result = executor.execute(parse_request("RETRIEVE (FILE = course) (*)"))
        assert all("credits" in r for r in result.records)

    def test_raw_records_are_copies(self, executor):
        result = executor.execute(parse_request("RETRIEVE (FILE = course) (*)"))
        result.raw_records[0].set("title", "HACKED")
        again = executor.execute(parse_request("RETRIEVE (FILE = course) (title)"))
        assert "HACKED" not in [r.get("title") for r in again.records]

    def test_by_clause_orders_groups(self, executor):
        result = executor.execute(
            parse_request("RETRIEVE (FILE = course) (title, dept) BY dept")
        )
        depts = [r.get("dept") for r in result.records]
        assert depts == ["cs", "cs", "math"]

    def test_missing_attribute_projected_as_absent(self, executor):
        result = executor.execute(parse_request("RETRIEVE (FILE = department) (credits)"))
        assert all("credits" not in r for r in result.records)


class TestAggregateRetrieve:
    def test_count_star(self, executor):
        result = executor.execute(parse_request("RETRIEVE (FILE = course) (COUNT(*))"))
        assert result.records[0].get("COUNT(*)") == 3

    def test_grouped_average(self, executor):
        result = executor.execute(
            parse_request("RETRIEVE (FILE = course) (AVG(credits)) BY dept")
        )
        rows = {r.get("dept"): r.get("AVG(credits)") for r in result.records}
        assert rows == {"cs": 3.5, "math": 4.0}

    def test_min_max_sum(self, executor):
        result = executor.execute(
            parse_request("RETRIEVE (FILE = course) (MIN(credits), MAX(credits), SUM(credits))")
        )
        row = result.records[0]
        assert (row.get("MIN(credits)"), row.get("MAX(credits)"), row.get("SUM(credits)")) == (3, 4, 11)


class TestUpdate:
    def test_constant_update(self, executor):
        executor.execute(parse_request("UPDATE ((FILE = course) AND (dept = 'cs')) (credits = 5)"))
        result = executor.execute(
            parse_request("RETRIEVE ((FILE = course) AND (credits = 5)) (COUNT(*))")
        )
        assert result.records[0].get("COUNT(*)") == 2

    def test_arithmetic_update(self, executor):
        executor.execute(parse_request("UPDATE (FILE = course) (credits = credits + 1)"))
        result = executor.execute(parse_request("RETRIEVE (FILE = course) (SUM(credits))"))
        assert result.records[0].get("SUM(credits)") == 14

    def test_arithmetic_skips_non_numeric(self, executor):
        executor.execute(parse_request("UPDATE (FILE = course) (title = title + 1)"))
        result = executor.execute(parse_request("RETRIEVE (FILE = course) (title)"))
        assert "Databases" in [r.get("title") for r in result.records]

    def test_null_out(self, executor):
        executor.execute(parse_request("UPDATE (FILE = course) (dept = NULL)"))
        result = executor.execute(parse_request("RETRIEVE ((FILE = course) AND (dept = NULL)) (COUNT(*))"))
        assert result.records[0].get("COUNT(*)") == 3


class TestDelete:
    def test_delete_by_query(self, executor):
        result = executor.execute(parse_request("DELETE ((FILE = course) AND (credits = 4))"))
        assert result.count == 2
        assert executor.store.count("course") == 1


class TestRetrieveCommon:
    def test_join_on_common_attribute(self, executor):
        result = executor.execute(
            parse_request(
                "RETRIEVE-COMMON (FILE = course) COMMON (dept, dname) "
                "(FILE = department) (title, department)"
            )
        )
        assert result.count == 3
        pairs = {(r.get("title"), r.get("department")) for r in result.records}
        assert ("Databases", "dept$1") in pairs
        assert ("Calculus", "dept$2") in pairs

    def test_collision_prefixing(self, executor):
        # Both files carry a 'FILE' keyword: the right side's gets prefixed.
        result = executor.execute(
            parse_request(
                "RETRIEVE-COMMON (FILE = course) COMMON (dept, dname) "
                "(FILE = department) (*)"
            )
        )
        assert any("department.FILE" in r for r in result.raw_records)


class TestTransactions:
    def test_sequential_execution(self, executor):
        from repro.abdl import parse_transaction

        results = executor.execute_transaction(
            parse_transaction(
                "INSERT (<FILE, course>, <course, c$9>, <credits, 1>)\n"
                "RETRIEVE (FILE = course) (COUNT(*))"
            )
        )
        assert results[0].count == 1
        assert results[1].records[0].get("COUNT(*)") == 4
