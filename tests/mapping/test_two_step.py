"""CLAIM-III.B setup: the two-step baseline produces the same schema."""

import pytest

from repro.functional import parse_schema
from repro.mapping import (
    lower_to_intermediate,
    transform_schema,
    transform_schema_two_step,
)
from repro.university import university_schema


class TestIntermediateForm:
    def test_one_entry_per_type(self):
        form = lower_to_intermediate(university_schema())
        assert len(form.files) == 7

    def test_entries_classify_items(self):
        form = lower_to_intermediate(university_schema())
        by_name = {f.type_name: f for f in form.files}
        faculty = by_name["faculty"]
        assert ("teaching", "course", True) in faculty.entity_items
        assert any(name == "rank" for name, _, _ in faculty.scalar_items)
        assert faculty.is_subtype and faculty.supertypes == ["employee"]

    def test_unique_items_recorded(self):
        form = lower_to_intermediate(university_schema())
        course = next(f for f in form.files if f.type_name == "course")
        assert course.unique_items == ["title", "semester"]


class TestEquivalence:
    def test_university_schemas_identical(self):
        direct = transform_schema(university_schema())
        two_step = transform_schema_two_step(university_schema())
        assert two_step.schema.render() == direct.schema.render()

    def test_set_origins_agree(self):
        direct = transform_schema(university_schema())
        two_step = transform_schema_two_step(university_schema())
        assert set(direct.set_origins) == set(two_step.set_origins)
        for name, origin in direct.set_origins.items():
            other = two_step.set_origins[name]
            assert (origin.kind, origin.carrier) == (other.kind, other.carrier)
            assert origin.partner_set == other.partner_set

    def test_links_agree(self):
        direct = transform_schema(university_schema())
        two_step = transform_schema_two_step(university_schema())
        assert set(direct.links) == set(two_step.links)

    @pytest.mark.parametrize(
        "daplex",
        [
            "DATABASE d;\nTYPE a IS ENTITY x : INTEGER; END ENTITY;",
            (
                "DATABASE d;\n"
                "TYPE a IS ENTITY f : SET OF b; END ENTITY;\n"
                "TYPE b IS ENTITY g : SET OF a; END ENTITY;"
            ),
            (
                "DATABASE d;\n"
                "TYPE a IS ENTITY x : INTEGER; END ENTITY;\n"
                "TYPE b IS a ENTITY y : SET OF INTEGER; END ENTITY;\n"
                "UNIQUE x WITHIN a;"
            ),
        ],
    )
    def test_small_schemas_identical(self, daplex):
        direct = transform_schema(parse_schema(daplex))
        two_step = transform_schema_two_step(parse_schema(daplex))
        assert two_step.schema.render() == direct.schema.render()
