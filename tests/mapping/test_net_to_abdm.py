"""The network-to-ABDM mapping (AB(network) layout)."""

import pytest

from repro.abdm import FILE_ATTRIBUTE
from repro.errors import SchemaError
from repro.mapping import ABNetworkMapping
from repro.network import parse_network_schema

SCHEMA = """
SCHEMA NAME IS demo;
RECORD NAME IS department;
    dname TYPE IS CHARACTER 20;
RECORD NAME IS course;
    title TYPE IS CHARACTER 40;
    credits TYPE IS INTEGER;
SET NAME IS offers;
    OWNER IS department;
    MEMBER IS course;
    INSERTION IS MANUAL;
    RETENTION IS OPTIONAL;
    SET SELECTION IS BY APPLICATION;
SET NAME IS reviewed_by;
    OWNER IS department;
    MEMBER IS course;
    INSERTION IS MANUAL;
    RETENTION IS OPTIONAL;
    SET SELECTION IS BY APPLICATION;
"""


@pytest.fixture()
def mapping():
    return ABNetworkMapping(parse_network_schema(SCHEMA))


class TestLayout:
    def test_files_are_record_types(self, mapping):
        assert mapping.file_names() == ["department", "course"]

    def test_member_layout_includes_set_keywords(self, mapping):
        layout = mapping.layout("course")
        assert layout.attributes == [FILE_ATTRIBUTE, "course", "title", "credits"]
        assert layout.member_sets == ["offers", "reviewed_by"]

    def test_owner_layout_has_no_set_keywords(self, mapping):
        assert mapping.layout("department").member_sets == []


class TestKeys:
    def test_mint_sequence_per_type(self, mapping):
        assert mapping.mint_key("course") == "course$1"
        assert mapping.mint_key("course") == "course$2"
        assert mapping.mint_key("department") == "department$1"


class TestBuildRecord:
    def test_record_shape(self, mapping):
        record = mapping.build_record(
            "course",
            "course$1",
            {"title": "DB", "credits": 4},
            {"offers": "department$1"},
        )
        assert record.pairs() == [
            (FILE_ATTRIBUTE, "course"),
            ("course", "course$1"),
            ("title", "DB"),
            ("credits", 4),
            ("offers", "department$1"),
            ("reviewed_by", None),
        ]

    def test_missing_values_null(self, mapping):
        record = mapping.build_record("course", "course$1", {})
        assert record.get("title") is None

    def test_unknown_item_rejected(self, mapping):
        with pytest.raises(SchemaError):
            mapping.build_record("course", "course$1", {"ghost": 1})

    def test_unknown_set_rejected(self, mapping):
        with pytest.raises(SchemaError):
            mapping.build_record("course", "course$1", {}, {"ghost": "x"})

    def test_non_member_set_rejected(self, mapping):
        with pytest.raises(SchemaError):
            mapping.build_record("department", "department$1", {}, {"offers": "x"})


class TestExtract:
    def test_extract_values(self, mapping):
        record = mapping.build_record("course", "course$1", {"title": "DB", "credits": 4})
        values = mapping.extract_values("course", record)
        assert values == {"title": "DB", "credits": 4}
