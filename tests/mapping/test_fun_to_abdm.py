"""FIG-3.3: the functional-to-ABDM mapping (AB(functional) layout)."""

import pytest

from repro.abdm import FILE_ATTRIBUTE
from repro.errors import SchemaError
from repro.mapping import ABFunctionalMapping
from repro.university import university_schema


@pytest.fixture(scope="module")
def mapping():
    return ABFunctionalMapping(university_schema())


class TestLayout:
    def test_one_file_per_type(self, mapping):
        assert mapping.file_names() == [
            "person",
            "department",
            "course",
            "employee",
            "student",
            "faculty",
            "support_staff",
        ]

    def test_layout_attribute_order(self, mapping):
        layout = mapping.layout("course")
        assert layout.attributes[:2] == [FILE_ATTRIBUTE, "course"]
        assert layout.attributes[2:] == ["title", "dept", "semester", "credits", "taught_by"]

    def test_multivalued_functions_flagged(self, mapping):
        assert mapping.layout("faculty").multivalued == ["teaching"]
        assert mapping.layout("employee").multivalued == ["phones"]

    def test_dbkey_attribute(self, mapping):
        assert mapping.dbkey_attribute("student") == "student"

    def test_inherited_files(self, mapping):
        assert mapping.inherited_files("faculty") == ["employee", "person"]


class TestBuildRecords:
    def test_first_two_keywords(self, mapping):
        (record,) = mapping.build_records("person", "person$1", {"name": "Ann", "age": 30})
        assert record.pairs()[0] == (FILE_ATTRIBUTE, "person")
        assert record.pairs()[1] == ("person", "person$1")

    def test_missing_functions_default_null(self, mapping):
        (record,) = mapping.build_records("person", "person$1", {"name": "Ann"})
        assert record.get("age") is None

    def test_unknown_function_rejected(self, mapping):
        with pytest.raises(SchemaError):
            mapping.build_records("person", "person$1", {"ghost": 1})

    def test_list_for_single_valued_rejected(self, mapping):
        with pytest.raises(SchemaError):
            mapping.build_records("person", "person$1", {"name": ["a", "b"]})

    def test_multivalued_multiplies_records(self, mapping):
        records = mapping.build_records(
            "faculty",
            "person$1",
            {"rank": "professor", "teaching": ["course$1", "course$2", "course$3"]},
        )
        assert len(records) == 3
        assert {r.get("teaching") for r in records} == {"course$1", "course$2", "course$3"}
        assert all(r.get("rank") == "professor" for r in records)

    def test_empty_multivalued_yields_one_null_record(self, mapping):
        records = mapping.build_records("faculty", "person$1", {"teaching": []})
        assert len(records) == 1
        assert records[0].get("teaching") is None

    def test_two_multivalued_functions_cross_product(self):
        from repro.functional import parse_schema

        schema = parse_schema(
            "DATABASE d;\nTYPE a IS ENTITY p : SET OF INTEGER; q : SET OF INTEGER; END ENTITY;"
        )
        mapping = ABFunctionalMapping(schema)
        records = mapping.build_records("a", "a$1", {"p": [1, 2], "q": [10, 20, 30]})
        assert len(records) == 6
        assert {(r.get("p"), r.get("q")) for r in records} == {
            (p, q) for p in (1, 2) for q in (10, 20, 30)
        }

    def test_scalar_given_as_single_multivalue(self, mapping):
        records = mapping.build_records("employee", "person$1", {"phones": 5551234})
        assert len(records) == 1
        assert records[0].get("phones") == 5551234

    def test_subtype_key_pairs_with_supertype(self, mapping):
        # A student's second keyword carries the person's key (III.C.1 rule 3).
        (record,) = mapping.build_records("student", "person$7", {"major": "cs"})
        assert record.pairs()[1] == ("student", "person$7")


class TestCollapse:
    def test_roundtrip_scalars(self, mapping):
        records = mapping.build_records(
            "course",
            "course$1",
            {"title": "DB", "dept": "cs", "semester": "fall", "credits": 4},
        )
        values = mapping.collapse("course", records)
        assert values["title"] == "DB"
        assert values["course"] == "course$1"

    def test_collapse_gathers_multivalues(self, mapping):
        records = mapping.build_records(
            "faculty", "person$1", {"teaching": ["c$1", "c$2"]}
        )
        values = mapping.collapse("faculty", records)
        assert values["teaching"] == ["c$1", "c$2"]

    def test_collapse_empty(self, mapping):
        assert mapping.collapse("faculty", []) == {}

    def test_group_by_dbkey(self, mapping):
        records = mapping.build_records("faculty", "person$1", {"teaching": ["c$1", "c$2"]})
        records += mapping.build_records("faculty", "person$2", {"teaching": ["c$1"]})
        groups = mapping.group_by_dbkey("faculty", records)
        assert {k: len(v) for k, v in groups.items()} == {"person$1": 2, "person$2": 1}
