"""Chapter V transformation algorithms, construct by construct."""

import pytest

from repro.errors import TransformError
from repro.functional import parse_schema
from repro.mapping import Carrier, SetKind, transform_schema
from repro.network import AttributeType, InsertionMode, RetentionMode, SelectionMode


def transform(daplex):
    return transform_schema(parse_schema(daplex))


class TestEntityTypes:
    """V.A: entity type -> record type + SYSTEM-owned set."""

    def test_record_and_system_set(self):
        t = transform("DATABASE d;\nTYPE a IS ENTITY x : INTEGER; END ENTITY;")
        assert "a" in t.schema.records
        system_set = t.schema.set_type("system_a")
        assert system_set.owner_name == "SYSTEM"
        assert system_set.member_name == "a"
        assert system_set.insertion is InsertionMode.AUTOMATIC
        assert system_set.retention is RetentionMode.FIXED

    def test_dbkey_attribute_first(self):
        t = transform("DATABASE d;\nTYPE a IS ENTITY x : INTEGER; END ENTITY;")
        assert t.schema.record("a").attributes[0].name == "a"
        assert t.dbkey_attribute("a") == "a"

    def test_scalar_function_becomes_attribute(self):
        t = transform("DATABASE d;\nTYPE a IS ENTITY x : STRING(7); END ENTITY;")
        attribute = t.schema.record("a").attribute("x")
        assert attribute.type is AttributeType.CHARACTER
        assert attribute.length == 7
        assert attribute.duplicates_allowed

    def test_scalar_multivalued_clears_duplicates_flag(self):
        t = transform("DATABASE d;\nTYPE a IS ENTITY p : SET OF INTEGER; END ENTITY;")
        assert not t.schema.record("a").attribute("p").duplicates_allowed


class TestSubtypes:
    """V.B: subtype -> record type + <supertype>_<subtype> set."""

    DAPLEX = (
        "DATABASE d;\n"
        "TYPE a IS ENTITY x : INTEGER; END ENTITY;\n"
        "TYPE b IS a ENTITY y : INTEGER; END ENTITY;"
    )

    def test_isa_set(self):
        t = transform(self.DAPLEX)
        isa = t.schema.set_type("a_b")
        assert isa.owner_name == "a" and isa.member_name == "b"
        assert isa.insertion is InsertionMode.AUTOMATIC
        assert isa.retention is RetentionMode.FIXED
        assert t.origin("a_b").kind is SetKind.ISA
        assert t.origin("a_b").carrier is Carrier.IMPLICIT

    def test_subtype_has_no_system_set(self):
        t = transform(self.DAPLEX)
        assert not t.schema.has_set("system_b")

    def test_multiple_supertypes_multiple_sets(self):
        t = transform(
            "DATABASE d;\n"
            "TYPE a IS ENTITY x : INTEGER; END ENTITY;\n"
            "TYPE b IS ENTITY y : INTEGER; END ENTITY;\n"
            "TYPE c IS a, b ENTITY z : INTEGER; END ENTITY;"
        )
        assert t.schema.has_set("a_c") and t.schema.has_set("b_c")


class TestNonEntityMappings:
    """V.C: the four non-entity mappings."""

    def test_string_to_character(self):
        t = transform("DATABASE d;\nTYPE s IS STRING(9);\nTYPE a IS ENTITY f : s; END ENTITY;")
        attribute = t.schema.record("a").attribute("f")
        assert attribute.type is AttributeType.CHARACTER and attribute.length == 9

    def test_float_to_float(self):
        t = transform("DATABASE d;\nTYPE a IS ENTITY f : FLOAT; END ENTITY;")
        assert t.schema.record("a").attribute("f").type is AttributeType.FLOAT

    def test_integer_to_integer(self):
        t = transform("DATABASE d;\nTYPE r IS INTEGER RANGE 1..5;\nTYPE a IS ENTITY f : r; END ENTITY;")
        assert t.schema.record("a").attribute("f").type is AttributeType.INTEGER

    def test_enumeration_to_character_of_longest_literal(self):
        t = transform("DATABASE d;\nTYPE e IS (ab, cdef, g);\nTYPE a IS ENTITY f : e; END ENTITY;")
        attribute = t.schema.record("a").attribute("f")
        assert attribute.type is AttributeType.CHARACTER
        assert attribute.length == 4

    def test_boolean_to_character(self):
        t = transform("DATABASE d;\nTYPE a IS ENTITY f : BOOLEAN; END ENTITY;")
        attribute = t.schema.record("a").attribute("f")
        assert attribute.type is AttributeType.CHARACTER and attribute.length == 5


class TestSingleValuedFunctions:
    """V.A: single-valued entity function -> set named after the function,
    owner = range record type, member = domain record type."""

    DAPLEX = (
        "DATABASE d;\n"
        "TYPE r IS ENTITY x : INTEGER; END ENTITY;\n"
        "TYPE m IS ENTITY f : r; END ENTITY;"
    )

    def test_set_shape(self):
        t = transform(self.DAPLEX)
        set_def = t.schema.set_type("f")
        assert set_def.owner_name == "r"
        assert set_def.member_name == "m"
        assert set_def.insertion is InsertionMode.MANUAL
        assert set_def.retention is RetentionMode.OPTIONAL
        assert set_def.select.mode is SelectionMode.BY_APPLICATION

    def test_origin(self):
        t = transform(self.DAPLEX)
        origin = t.origin("f")
        assert origin.kind is SetKind.SINGLE_VALUED
        assert origin.carrier is Carrier.MEMBER
        assert (origin.domain_type, origin.range_type) == ("m", "r")

    def test_no_attribute_for_entity_function(self):
        t = transform(self.DAPLEX)
        assert t.schema.record("m").attribute("f") is None


class TestMultiValuedFunctions:
    def test_one_to_many_without_inverse(self):
        t = transform(
            "DATABASE d;\n"
            "TYPE r IS ENTITY x : INTEGER; END ENTITY;\n"
            "TYPE o IS ENTITY f : SET OF r; END ENTITY;"
        )
        set_def = t.schema.set_type("f")
        assert set_def.owner_name == "o" and set_def.member_name == "r"
        assert t.origin("f").kind is SetKind.ONE_TO_MANY
        assert t.origin("f").carrier is Carrier.OWNER
        assert not t.links

    def test_many_to_many_creates_link(self):
        t = transform(
            "DATABASE d;\n"
            "TYPE a IS ENTITY f : SET OF b; END ENTITY;\n"
            "TYPE b IS ENTITY g : SET OF a; END ENTITY;"
        )
        assert "link_1" in t.schema.records
        assert t.schema.set_type("f").member_name == "link_1"
        assert t.schema.set_type("g").member_name == "link_1"
        assert t.schema.set_type("f").owner_name == "a"
        assert t.schema.set_type("g").owner_name == "b"
        link = t.links["link_1"]
        assert {link.first_type, link.second_type} == {"a", "b"}
        assert t.origin("f").partner_set == "g"
        assert t.origin("g").partner_set == "f"
        assert t.is_link_record("link_1")

    def test_self_referential_function_is_one_to_many(self):
        t = transform("DATABASE d;\nTYPE a IS ENTITY f : SET OF a; END ENTITY;")
        set_def = t.schema.set_type("f")
        assert set_def.owner_name == set_def.member_name == "a"
        assert t.origin("f").kind is SetKind.ONE_TO_MANY

    def test_self_referential_pair_links(self):
        t = transform(
            "DATABASE d;\nTYPE a IS ENTITY f : SET OF a; g : SET OF a; END ENTITY;"
        )
        assert "link_1" in t.schema.records
        assert t.origin("f").partner_set == "g"

    def test_two_links_numbered(self):
        t = transform(
            "DATABASE d;\n"
            "TYPE a IS ENTITY f : SET OF b; h : SET OF c; END ENTITY;\n"
            "TYPE b IS ENTITY g : SET OF a; END ENTITY;\n"
            "TYPE c IS ENTITY i : SET OF a; END ENTITY;"
        )
        assert "link_1" in t.schema.records and "link_2" in t.schema.records


class TestUniqueness:
    """V.D: UNIQUE -> DUPLICATES ARE NOT ALLOWED."""

    def test_duplicates_flag_cleared(self):
        t = transform(
            "DATABASE d;\n"
            "TYPE a IS ENTITY x : INTEGER; y : INTEGER; END ENTITY;\n"
            "UNIQUE x, y WITHIN a;"
        )
        record = t.schema.record("a")
        assert not record.attribute("x").duplicates_allowed
        assert not record.attribute("y").duplicates_allowed

    def test_rendered_clause(self):
        t = transform(
            "DATABASE d;\nTYPE a IS ENTITY x : INTEGER; END ENTITY;\nUNIQUE x WITHIN a;"
        )
        assert "DUPLICATES ARE NOT ALLOWED FOR x;" in t.schema.record("a").render()

    def test_unique_on_entity_function_rejected(self):
        with pytest.raises(TransformError):
            transform(
                "DATABASE d;\n"
                "TYPE r IS ENTITY x : INTEGER; END ENTITY;\n"
                "TYPE a IS ENTITY f : r; END ENTITY;\n"
                "UNIQUE f WITHIN a;"
            )


class TestNameCollisions:
    def test_function_set_name_collision_rejected(self):
        # Two single-valued functions with the same name on different types
        # would both want a set of that name.
        with pytest.raises(TransformError):
            transform(
                "DATABASE d;\n"
                "TYPE r IS ENTITY x : INTEGER; END ENTITY;\n"
                "TYPE a IS ENTITY f : r; END ENTITY;\n"
                "TYPE b IS ENTITY f : r; END ENTITY;"
            )

    def test_origin_lookup_failure(self):
        t = transform("DATABASE d;\nTYPE a IS ENTITY x : INTEGER; END ENTITY;")
        with pytest.raises(TransformError):
            t.origin("ghost")
