"""The Overlap Table (V.E / VI.G)."""

import pytest

from repro.errors import ConstraintViolation
from repro.functional import parse_schema
from repro.mapping import OverlapTable
from repro.university import university_schema


@pytest.fixture(scope="module")
def table():
    return OverlapTable(university_schema())


class TestAllowed:
    def test_declared_pairs(self, table):
        assert table.allowed("student", "faculty")
        assert table.allowed("faculty", "student")
        assert table.allowed("student", "support_staff")

    def test_undeclared_pair_disallowed(self, table):
        assert not table.allowed("faculty", "support_staff")

    def test_same_type_allowed(self, table):
        assert table.allowed("student", "student")

    def test_isa_chain_always_allowed(self, table):
        assert table.allowed("faculty", "employee")
        assert table.allowed("employee", "faculty")

    def test_pairs_listing(self, table):
        assert ("faculty", "student") in table.pairs()


class TestCheckStore:
    def test_clean_store_passes(self, table):
        table.check_store("student", [])
        table.check_store("student", ["faculty", "support_staff"])

    def test_violation_raises(self, table):
        with pytest.raises(ConstraintViolation):
            table.check_store("support_staff", ["faculty"])

    def test_message_names_the_pair(self, table):
        with pytest.raises(ConstraintViolation, match="faculty"):
            table.check_store("faculty", ["support_staff"])


class TestSelfOverlapDeclaration:
    def test_left_equal_right_ignored(self):
        schema = parse_schema(
            "DATABASE d;\n"
            "TYPE a IS ENTITY x : INTEGER; END ENTITY;\n"
            "TYPE b IS a ENTITY y : INTEGER; END ENTITY;\n"
            "OVERLAP b WITH b;"
        )
        table = OverlapTable(schema)
        assert table.pairs() == []
        assert table.allowed("b", "b")  # same type remains trivially allowed
