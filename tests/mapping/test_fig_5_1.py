"""FIG-5.1: the University functional schema transformed to network form.

The test pins the complete record/set inventory of the transformed
University database against the listing fragments of Figure 5.1 —
set names, owners, members, insertion/retention/selection modes, the
``link_1`` record of the teaching/taught_by pair, and the DUPLICATES
clause from the uniqueness constraint of Figure 5.3.
"""

import pytest

from repro.mapping import transform_schema
from repro.network import InsertionMode, RetentionMode, SelectionMode
from repro.university import university_schema


@pytest.fixture(scope="module")
def transformation():
    return transform_schema(university_schema())


class TestRecordInventory:
    def test_every_type_became_a_record(self, transformation):
        assert set(transformation.schema.records) == {
            "person",
            "department",
            "course",
            "employee",
            "student",
            "faculty",
            "support_staff",
            "link_1",
        }

    def test_course_attributes(self, transformation):
        names = transformation.schema.record("course").attribute_names
        assert names == ["course", "title", "dept", "semester", "credits"]

    def test_duplicates_clause_on_course(self, transformation):
        record = transformation.schema.record("course")
        assert not record.attribute("title").duplicates_allowed
        assert not record.attribute("semester").duplicates_allowed
        assert "DUPLICATES ARE NOT ALLOWED FOR title, semester;" in record.render()

    def test_phones_no_duplicates(self, transformation):
        assert not transformation.schema.record("employee").attribute("phones").duplicates_allowed


# The Figure 5.1 set listings: (name, owner, member, insertion, retention).
FIGURE_5_1_SETS = [
    ("supervisor", "employee", "support_staff", InsertionMode.MANUAL, RetentionMode.OPTIONAL),
    ("employee_support_staff", "employee", "support_staff", InsertionMode.AUTOMATIC, RetentionMode.FIXED),
    ("teaching", "faculty", "link_1", InsertionMode.MANUAL, RetentionMode.OPTIONAL),
    ("taught_by", "course", "link_1", InsertionMode.MANUAL, RetentionMode.OPTIONAL),
    ("dept", "department", "faculty", InsertionMode.MANUAL, RetentionMode.OPTIONAL),
    ("employee_faculty", "employee", "faculty", InsertionMode.AUTOMATIC, RetentionMode.FIXED),
    ("advisor", "faculty", "student", InsertionMode.MANUAL, RetentionMode.OPTIONAL),
    ("person_student", "person", "student", InsertionMode.AUTOMATIC, RetentionMode.FIXED),
    ("person_employee", "person", "employee", InsertionMode.AUTOMATIC, RetentionMode.FIXED),
    ("enrollment", "student", "course", InsertionMode.MANUAL, RetentionMode.OPTIONAL),
]


class TestSetInventory:
    @pytest.mark.parametrize(
        "name,owner,member,insertion,retention",
        FIGURE_5_1_SETS,
        ids=[row[0] for row in FIGURE_5_1_SETS],
    )
    def test_figure_5_1_set(self, transformation, name, owner, member, insertion, retention):
        set_def = transformation.schema.set_type(name)
        assert set_def.owner_name == owner
        assert set_def.member_name == member
        assert set_def.insertion is insertion
        assert set_def.retention is retention
        assert set_def.select.mode is SelectionMode.BY_APPLICATION

    def test_system_sets(self, transformation):
        for entity in ("person", "department", "course"):
            set_def = transformation.schema.set_type(f"system_{entity}")
            assert set_def.system_owned
            assert set_def.insertion is InsertionMode.AUTOMATIC
            assert set_def.retention is RetentionMode.FIXED

    def test_total_set_count(self, transformation):
        # 3 system + 4 ISA + 3 single-valued + 1 one-to-many + 2 link sides.
        assert transformation.schema.num_sets == 13


class TestRenderedSchema:
    def test_renders_figure_5_1_listing(self, transformation):
        text = transformation.schema.render()
        assert "SET NAME IS supervisor;" in text
        assert "OWNER IS employee;" in text
        assert "SET SELECTION IS BY APPLICATION;" in text
        assert "RECORD NAME IS link_1;" in text

    def test_rendered_schema_reparses(self, transformation):
        from repro.network import parse_network_schema

        rendered = transformation.schema.render()
        assert parse_network_schema(rendered).render() == rendered
