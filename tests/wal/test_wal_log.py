"""WalManager write-side behaviour: journaling, segments, resume, torn tails."""

from __future__ import annotations

import json

import pytest

from repro.core.mlds import MLDS
from repro.errors import WalError
from repro.wal.log import (
    CHECKPOINT_NAME,
    META_NAME,
    WalManager,
    backend_segment_name,
    master_segment_name,
)
from repro.wal.reader import read_backend_count, read_wal

from tests.wal.conftest import delete, insert


def manager(tmp_path, backends=2, **kwargs):
    return WalManager(tmp_path / "wal", backends, **kwargs)


def test_journal_records_land_before_any_apply(tmp_path):
    """The 'write-ahead' property: ops are on disk before the store changes."""
    wal_dir = tmp_path / "wal"
    mlds = MLDS(backend_count=2, wal=wal_dir)
    mlds.kds.execute(insert("f", a=1))
    view = read_wal(wal_dir)
    # the auto-committed transaction journaled exactly one op
    assert len(view.committed) == 1
    ops = sum(len(ops) for ops in view.committed[0].ops.values())
    assert ops == 1
    assert view.committed[0].counts == mlds.kds.controller.distribution()
    mlds.kds.shutdown()


def test_explicit_transaction_groups_ops_under_one_commit(tmp_path):
    wal_dir = tmp_path / "wal"
    mlds = MLDS(backend_count=2, wal=wal_dir)
    with mlds.kds.transaction():
        mlds.kds.execute(insert("f", a=1))
        mlds.kds.execute(insert("f", a=2))
        mlds.kds.execute(delete(("a", "=", 1)))
    view = read_wal(wal_dir)
    assert len(view.committed) == 1
    transaction = view.committed[0]
    # two routed inserts plus a delete broadcast to both backends = 4 ops
    assert sum(len(ops) for ops in transaction.ops.values()) == 4
    assert transaction.counts == [0, 1]  # a=1 landed on backend 0 and was deleted
    mlds.kds.shutdown()


def test_abort_is_recorded_and_excluded_from_committed(tmp_path):
    wal = manager(tmp_path)
    wal.begin()
    wal.log_op(0, insert("f", a=1))
    wal.abort()
    view = read_wal(wal.directory)
    assert view.committed == []
    assert view.transactions[1].status == "aborted"
    wal.close()


def test_sequence_numbers_resume_after_reopen(tmp_path):
    wal = manager(tmp_path)
    first = wal.begin()
    wal.log_op(0, insert("f", a=1))
    wal.log_op(1, insert("f", a=2))
    wal.commit([1, 1])
    wal.close()

    resumed = manager(tmp_path)
    second = resumed.begin()
    assert second == first + 1
    seq = resumed.log_op(0, insert("f", a=3))
    assert seq == 2  # continues backend 0's stream, no reuse
    resumed.commit([2, 1])
    view = read_wal(resumed.directory)
    assert [t.txn for t in view.committed] == [first, second]
    assert view.max_seq[0] == 2
    resumed.close()


def test_reopen_rejects_wrong_backend_count(tmp_path):
    manager(tmp_path, backends=2).close()
    with pytest.raises(WalError):
        manager(tmp_path, backends=3)
    assert read_backend_count(tmp_path / "wal") == 2


def test_torn_final_line_is_dropped(tmp_path):
    wal = manager(tmp_path)
    wal.begin()
    wal.log_op(0, insert("f", a=1))
    wal.commit([1, 0])
    wal.close()
    master = wal.directory / master_segment_name(0)
    with master.open("a") as handle:
        handle.write('{"seq": 3, "type": "beg')  # the crash hit mid-append
    view = read_wal(wal.directory)
    assert [t.txn for t in view.committed] == [1]


def test_mid_stream_corruption_raises(tmp_path):
    wal = manager(tmp_path)
    wal.begin()
    wal.log_op(0, insert("f", a=1))
    wal.commit([1, 0])
    wal.close()
    master = wal.directory / master_segment_name(0)
    lines = master.read_text().splitlines()
    lines.insert(1, "not json at all")
    master.write_text("\n".join(lines) + "\n")
    with pytest.raises(WalError):
        read_wal(wal.directory)


def test_non_monotonic_sequence_raises(tmp_path):
    wal = manager(tmp_path)
    wal.begin()
    wal.log_op(0, insert("f", a=1))
    wal.commit([1, 0])
    wal.close()
    backend_log = wal.directory / backend_segment_name(0, 0)
    line = backend_log.read_text().splitlines()[0]
    with backend_log.open("a") as handle:
        handle.write(line + "\n")  # duplicate seq 1
    with pytest.raises(WalError):
        read_wal(wal.directory)


def test_guard_rails(tmp_path):
    wal = manager(tmp_path)
    with pytest.raises(WalError):
        wal.log_op(0, insert("f", a=1))  # no open transaction
    with pytest.raises(WalError):
        wal.commit([0, 0])  # nothing to commit
    wal.begin()
    with pytest.raises(WalError):
        wal.begin()  # no nesting
    with pytest.raises(WalError):
        wal.log_op(5, insert("f", a=1))  # no such backend
    with pytest.raises(WalError):
        from tests.wal.conftest import query
        from repro.abdl.ast import RetrieveRequest

        wal.log_op(0, RetrieveRequest(query(("FILE", "=", "f"))))
    with pytest.raises(WalError):
        wal.commit([1])  # counts must cover every backend
    with pytest.raises(WalError):
        wal.start_new_segment()  # not while a transaction is open
    wal.abort()
    wal.close()


def test_start_new_segment_drops_old_files_and_bumps_meta(tmp_path):
    wal = manager(tmp_path)
    wal.begin()
    wal.log_op(0, insert("f", a=1))
    wal.commit([1, 0])
    old_master = wal.directory / master_segment_name(0)
    assert old_master.exists()
    wal.start_new_segment()
    assert not old_master.exists()
    assert not (wal.directory / backend_segment_name(0, 0)).exists()
    meta = json.loads((wal.directory / META_NAME).read_text())
    assert meta["segment"] == 1
    # numbering continues in the fresh segment
    wal.begin()
    assert wal.log_op(0, insert("f", a=2)) == 2
    wal.commit([2, 0])
    view = read_wal(wal.directory)
    assert view.last_committed_txn == 2
    wal.close()


def test_stale_segment_surviving_a_crashed_truncation_is_still_read(tmp_path):
    """Segment GC can die half-done; the reader must union the leftovers."""
    wal = manager(tmp_path, backends=1)
    wal.begin()
    wal.log_op(0, insert("f", a=1))
    wal.commit([1])
    wal.close()
    # simulate: meta bumped to segment 1, old files never unlinked
    meta_path = wal.directory / META_NAME
    meta = json.loads(meta_path.read_text())
    meta["segment"] = 1
    meta_path.write_text(json.dumps(meta))
    resumed = manager(tmp_path, backends=1)
    resumed.begin()
    resumed.log_op(0, insert("f", a=2))
    resumed.commit([2])
    view = read_wal(resumed.directory)
    assert [t.txn for t in view.committed] == [1, 2]
    assert view.max_seq[0] == 2
    resumed.close()
