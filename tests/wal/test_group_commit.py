"""Group commit and bulk journaling: shared fsyncs, never a torn batch.

Three contracts on top of the PR-5 crash matrix:

* a **bulk batch is atomic in the journal** — one BULK-INSERT log record
  per backend; a crash anywhere around the bulk append loses the whole
  transaction, never applies part of a batch (serial AND process
  engines);
* **concurrent committers sharing one fsync recover independently** —
  each staged commit record stands on its own in the master log, so a
  crash before the shared flush loses all of them and a crash after it
  keeps all of them, with no cross-transaction coupling;
* the **coordinator itself**: batching under a window, sequence numbers
  staying monotonic against interleaved begin/abort records, and a
  leader failure poisoning every follower instead of hanging them.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.mlds import MLDS
from repro.obs import Observability
from repro.wal.faults import CrashPoint, FaultInjector, InjectedCrash
from repro.wal.log import WalManager
from repro.wal.reader import read_wal
from repro.wal.recovery import recover_mlds

from tests.wal.conftest import bulk, farm_image, insert

BACKENDS = 3

ENGINES = [("serial", None), ("process", 2)]


def seed(kds):
    for i in range(6):
        kds.execute(insert("f", a=i))


class TestTornBatch:
    """A bulk batch is journaled whole or not at all."""

    @pytest.mark.parametrize("engine,workers", ENGINES, ids=[e for e, _ in ENGINES])
    @pytest.mark.parametrize(
        "point",
        [CrashPoint.BEFORE_BULK_APPEND, CrashPoint.AFTER_BULK_APPEND],
        ids=lambda p: p.value,
    )
    def test_bulk_crash_never_partially_applies(self, tmp_path, point, engine, workers):
        injector = FaultInjector()
        wal = WalManager(tmp_path / "wal", BACKENDS, injector=injector)
        mlds = MLDS(backend_count=BACKENDS, engine=engine, workers=workers, wal=wal)
        seed(mlds.kds)
        pre = farm_image(mlds)

        injector.arm(point)
        with pytest.raises(InjectedCrash):
            # 9 records spread over all three backends: the batch shards
            # into three per-backend journal records.
            mlds.kds.execute(bulk("f", range(100, 109)))
        wal.close()
        mlds.kds.controller.engine.shutdown()

        recovered = recover_mlds(
            tmp_path / "wal", engine=engine, workers=workers, attach_wal=False
        )
        assert farm_image(recovered) == pre
        for backend in recovered.kds.controller.backends:
            values = [r.get("a") for r in backend.store.all_records()]
            assert not any(v is not None and v >= 100 for v in values)
        recovered.kds.shutdown()

    @pytest.mark.parametrize("engine,workers", ENGINES, ids=[e for e, _ in ENGINES])
    def test_crash_between_backend_shards_discards_them_all(
        self, tmp_path, engine, workers
    ):
        """2 of 3 shard records journaled, then the machine dies: recovery
        must not apply the journaled shards without the third."""
        injector = FaultInjector()
        wal = WalManager(tmp_path / "wal", BACKENDS, injector=injector)
        mlds = MLDS(backend_count=BACKENDS, engine=engine, workers=workers, wal=wal)
        seed(mlds.kds)
        pre = farm_image(mlds)

        injector.arm(CrashPoint.AFTER_BULK_APPEND, hits=2)
        with pytest.raises(InjectedCrash):
            mlds.kds.execute(bulk("f", range(100, 109)))
        wal.close()
        mlds.kds.controller.engine.shutdown()

        recovered = recover_mlds(
            tmp_path / "wal", engine=engine, workers=workers, attach_wal=False
        )
        assert farm_image(recovered) == pre
        recovered.kds.shutdown()


class TestSharedFsyncIndependence:
    """Committers batched into one flush recover as separate transactions."""

    def _commit_pair_concurrently(self, wal):
        """Two owned transactions whose commits race into one group."""
        t_a = wal.begin(owner="alice")
        t_b = wal.begin(owner="bob")
        wal.log_op(0, insert("fa", a=1), txn=t_a)
        wal.log_op(1, insert("fb", b=2), txn=t_b)
        barrier = threading.Barrier(2)
        errors = []

        def commit(txn):
            barrier.wait()
            try:
                wal.commit(txn=txn)
            except BaseException as exc:  # noqa: BLE001 - collected for asserts
                errors.append(exc)

        threads = [threading.Thread(target=commit, args=(t,)) for t in (t_a, t_b)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return errors

    def test_both_recover_after_shared_flush(self, tmp_path):
        wal = WalManager(tmp_path / "wal", 2, group_window_ms=50.0)
        errors = self._commit_pair_concurrently(wal)
        wal.close()
        assert errors == []
        view = read_wal(tmp_path / "wal")
        assert sorted(t.owner for t in view.committed) == ["alice", "bob"]

    def test_commits_share_a_flush_under_the_window(self, tmp_path):
        obs = Observability()
        wal = WalManager(tmp_path / "wal", 2, group_window_ms=200.0)
        wal.bind_obs(obs)
        errors = self._commit_pair_concurrently(wal)
        wal.close()
        assert errors == []
        registry = obs.metrics.as_dict()
        assert registry["wal.commits"]["value"] == 2.0
        # Both committers fit in the 200ms window: one group, size 2.
        assert registry["wal.group_commits"]["value"] == 1.0
        assert registry["wal.group_size"]["max"] == 2.0

    def test_crash_before_shared_flush_loses_both(self, tmp_path):
        injector = FaultInjector()
        wal = WalManager(
            tmp_path / "wal", 2, injector=injector, group_window_ms=200.0
        )
        injector.arm(CrashPoint.BEFORE_GROUP_FSYNC)
        errors = self._commit_pair_concurrently(wal)
        wal.close()
        # The leader crashed inside the flush; the follower's commit was
        # poisoned rather than left hanging on an event that never sets.
        assert len(errors) == 2
        assert all(isinstance(exc, InjectedCrash) for exc in errors)
        view = read_wal(tmp_path / "wal")
        assert view.committed == []

    def test_crash_after_shared_flush_keeps_both(self, tmp_path):
        injector = FaultInjector()
        wal = WalManager(
            tmp_path / "wal", 2, injector=injector, group_window_ms=200.0
        )
        injector.arm(CrashPoint.AFTER_GROUP_FSYNC)
        errors = self._commit_pair_concurrently(wal)
        wal.close()
        assert len(errors) == 2  # the machine still died mid-commit...
        view = read_wal(tmp_path / "wal")
        # ...but both staged commit records were already durable.
        assert sorted(t.owner for t in view.committed) == ["alice", "bob"]

    def test_sessions_share_fsync_and_recover_independently(self, tmp_path):
        """Kernel-level: concurrent sessions on distinct files group-commit,
        and the recovered farm equals the live one."""
        obs = Observability()
        wal = WalManager(tmp_path / "wal", BACKENDS, sync=True, group_window_ms=25.0)
        mlds = MLDS(backend_count=BACKENDS, wal=wal, obs=obs)
        sessions = [mlds.kds.create_session(f"s{i}") for i in range(4)]
        barrier = threading.Barrier(4)

        def work(i, session):
            barrier.wait()
            mlds.kds.execute(bulk(f"file{i}", range(5)), session=session)

        threads = [
            threading.Thread(target=work, args=(i, s))
            for i, s in enumerate(sessions)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        live = farm_image(mlds)
        registry = obs.metrics.as_dict()
        assert registry["wal.commits"]["value"] == 4.0
        assert registry["wal.group_commits"]["value"] < 4.0  # some sharing
        mlds.kds.shutdown()

        recovered = recover_mlds(tmp_path / "wal", attach_wal=False)
        assert farm_image(recovered) == live
        assert recovered.kds.record_count() == 20
        recovered.kds.shutdown()


class TestCoordinator:
    def test_window_zero_still_commits(self, tmp_path):
        wal = WalManager(tmp_path / "wal", 1, group_window_ms=0.0)
        txn = wal.begin(owner="alice")
        wal.log_op(0, insert("f", a=1), txn=txn)
        wal.commit(txn=txn)
        wal.close()
        assert [t.owner for t in read_wal(tmp_path / "wal").committed] == ["alice"]

    def test_sequences_stay_monotonic_across_interleaved_begins(self, tmp_path):
        """Begin/abort records append immediately; staged commits get their
        seqs at flush time, so the master log must still read cleanly."""
        wal = WalManager(tmp_path / "wal", 1, group_window_ms=0.0)
        for i in range(5):
            txn = wal.begin(owner=f"o{i}")
            wal.log_op(0, insert("f", a=i), txn=txn)
            wal.commit(txn=txn)
        aborted = wal.begin(owner="quitter")
        wal.abort(txn=aborted)
        wal.close()
        view = read_wal(tmp_path / "wal")  # raises on non-monotonic seqs
        assert len(view.committed) == 5

    def test_disabled_group_commit_is_the_default(self, tmp_path):
        obs = Observability()
        wal = WalManager(tmp_path / "wal", 1)
        wal.bind_obs(obs)
        txn = wal.begin(owner="alice")
        wal.log_op(0, insert("f", a=1), txn=txn)
        wal.commit(txn=txn)
        wal.close()
        registry = obs.metrics.as_dict()
        assert "wal.group_commits" not in registry
