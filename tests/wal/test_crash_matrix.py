"""The crash matrix: kill the system at every crash point, recover, compare.

For every :data:`~repro.wal.faults.CRASH_MATRIX` point and both execution
engines, the harness seeds a farm, runs one multi-request transaction with
the injector armed, lets the injected crash "kill the machine", and
recovers a fresh system from the WAL directory.  The recovered farm must
be bit-identical to either the pre-transaction or the committed
post-transaction image — never a torn in-between — and identical across
engines.
"""

from __future__ import annotations

import pytest

from repro.abdl.ast import Modifier
from repro.core.mlds import MLDS
from repro.wal.faults import CRASH_MATRIX, CrashPoint, FaultInjector, InjectedCrash
from repro.wal.log import WalManager
from repro.wal.recovery import checkpoint_mlds, recover_mlds

from tests.wal.conftest import bulk, delete, farm_image, insert, update

BACKENDS = 3

#: Which durable state each crash point must recover to.  Everything
#: before the commit record reaches the master log loses the transaction;
#: from AFTER_COMMIT on (including every checkpoint stage, which the
#: harness runs after a committed transaction) the transaction survives.
EXPECTED = {
    CrashPoint.BEFORE_LOG_APPEND: "pre",
    CrashPoint.AFTER_LOG_APPEND: "pre",
    CrashPoint.BEFORE_BULK_APPEND: "pre",
    CrashPoint.AFTER_BULK_APPEND: "pre",
    CrashPoint.BEFORE_APPLY: "pre",
    CrashPoint.AFTER_APPLY: "pre",
    CrashPoint.BEFORE_COMMIT: "pre",
    CrashPoint.BEFORE_GROUP_FSYNC: "pre",
    # The version-seal points fire per mutating request; this harness's
    # transaction is still open at its first mutation's seal, so the
    # commit record was never written and the transaction is lost.
    # (The session matrix in test_concurrent_transactions covers the
    # post-commit firing inside session_commit.)
    CrashPoint.BEFORE_VERSION_SEAL: "pre",
    CrashPoint.AFTER_VERSION_SEAL: "pre",
    CrashPoint.AFTER_GROUP_FSYNC: "post",
    CrashPoint.AFTER_COMMIT: "post",
    CrashPoint.BEFORE_CHECKPOINT: "post",
    CrashPoint.AFTER_CHECKPOINT_SNAPSHOT: "post",
    CrashPoint.AFTER_CHECKPOINT: "post",
}

CHECKPOINT_POINTS = {
    CrashPoint.BEFORE_CHECKPOINT,
    CrashPoint.AFTER_CHECKPOINT_SNAPSHOT,
    CrashPoint.AFTER_CHECKPOINT,
}

ENGINES = [("serial", None), ("threads", 2), ("process", 2)]


def seed(kds):
    for i in range(6):
        kds.execute(insert("f", a=i))


def crash_transaction(kds):
    """Two routed inserts, a bulk insert, a broadcast update and delete."""
    with kds.transaction():
        kds.execute(insert("f", a=100))
        kds.execute(insert("f", a=101))
        kds.execute(bulk("f", [200, 201, 202, 203]))
        kds.execute(update(Modifier("a", arithmetic="+", operand=1000), ("a", ">=", 4)))
        kds.execute(delete(("a", "=", 0)))


def reference_images():
    """Pre/post farm images from an uncrashed, WAL-less twin."""
    twin = MLDS(backend_count=BACKENDS)
    seed(twin.kds)
    pre = farm_image(twin)
    crash_transaction(twin.kds)
    post = farm_image(twin)
    twin.kds.shutdown()
    return pre, post


def crash_and_recover(tmp_path, point, engine, workers):
    """Run the scenario for one (point, engine) cell; return the images."""
    wal_dir = tmp_path / f"wal-{engine}"
    injector = FaultInjector()
    # group_window_ms=0 routes every commit through the group-commit
    # coordinator (batching only concurrent arrivals), so the
    # BEFORE/AFTER_GROUP_FSYNC points fire even for this single committer.
    wal = WalManager(wal_dir, BACKENDS, injector=injector, group_window_ms=0.0)
    mlds = MLDS(backend_count=BACKENDS, engine=engine, workers=workers, wal=wal)
    seed(mlds.kds)

    injector.arm(point)
    with pytest.raises(InjectedCrash) as crash:
        if point in CHECKPOINT_POINTS:
            crash_transaction(mlds.kds)  # commits cleanly...
            checkpoint_mlds(mlds)  # ...then the checkpoint is killed
        else:
            crash_transaction(mlds.kds)
    assert crash.value.point is point
    wal.close()  # the machine is dead; release handles, change nothing
    mlds.kds.controller.engine.shutdown()

    recovered = recover_mlds(wal_dir, engine=engine, workers=workers, attach_wal=False)
    image = farm_image(recovered)
    recovered.kds.shutdown()
    return image


@pytest.mark.parametrize("point", CRASH_MATRIX, ids=lambda p: p.value)
def test_recovery_is_never_torn(tmp_path, point):
    pre, post = reference_images()
    expected = pre if EXPECTED[point] == "pre" else post
    images = [
        crash_and_recover(tmp_path, point, engine, workers)
        for engine, workers in ENGINES
    ]
    for image in images:
        assert image == expected, f"torn recovery after crash at {point.value}"
    assert images[0] == images[1], "engines recovered to different states"


def test_matrix_covers_every_crash_point():
    assert set(EXPECTED) == set(CRASH_MATRIX)


def test_partially_journaled_broadcast_is_discarded(tmp_path):
    """Crash mid-journal: 2 of 3 backend logs got the op; none may replay."""
    injector = FaultInjector()
    wal = WalManager(tmp_path / "wal", BACKENDS, injector=injector)
    mlds = MLDS(backend_count=BACKENDS, wal=wal)
    seed(mlds.kds)
    pre = farm_image(mlds)

    injector.arm(CrashPoint.AFTER_LOG_APPEND, hits=2)
    with pytest.raises(InjectedCrash):
        mlds.kds.execute(delete(("a", ">=", 0)))  # broadcasts to all three
    wal.close()
    mlds.kds.controller.engine.shutdown()

    recovered = recover_mlds(tmp_path / "wal", attach_wal=False)
    assert farm_image(recovered) == pre
    recovered.kds.shutdown()


@pytest.mark.parametrize(
    "point, outcome",
    [(CrashPoint.AFTER_APPLY, "pre"), (CrashPoint.AFTER_COMMIT, "post")],
    ids=["after-apply", "after-commit"],
)
def test_auto_commit_single_request_is_atomic(tmp_path, point, outcome):
    """Single mutating requests are one-request transactions: all or nothing."""
    injector = FaultInjector()
    wal = WalManager(tmp_path / "wal", BACKENDS, injector=injector)
    mlds = MLDS(backend_count=BACKENDS, wal=wal)
    seed(mlds.kds)
    pre = farm_image(mlds)

    injector.arm(point)
    with pytest.raises(InjectedCrash):
        mlds.kds.execute(insert("f", a=100))
    post = farm_image(mlds)  # the apply itself happened in memory
    wal.close()
    mlds.kds.controller.engine.shutdown()

    recovered = recover_mlds(tmp_path / "wal", attach_wal=False)
    assert farm_image(recovered) == (pre if outcome == "pre" else post)
    recovered.kds.shutdown()
