"""Concurrent WAL transactions: interleaved sessions, crash, recover.

Two layers of assurance.  First, write-side unit tests: owned
transactions interleave freely in the log, commit out of begin order,
and the reader attributes every op to the right owner with the
watermark at the *highest* committed id.  Second, a concurrent crash
matrix: while a spectator session holds an open (never-committed)
transaction with journaled ops, a writer session crashes at every
:data:`~repro.wal.faults.CRASH_MATRIX` point — recovery must land on
the writer's pre- or post-image exactly as the single-session matrix
demands, and must *never* replay the spectator's uncommitted writes.
"""

from __future__ import annotations

import pytest

from repro.abdl.ast import Modifier
from repro.core.mlds import MLDS
from repro.errors import ExecutionError, WalError
from repro.wal.faults import CRASH_MATRIX, CrashPoint, FaultInjector, InjectedCrash
from repro.wal.log import WalManager
from repro.wal.reader import read_wal
from repro.wal.recovery import checkpoint_mlds, recover_mlds

from tests.wal.conftest import bulk, delete, farm_image, insert, update

BACKENDS = 3

#: The spectator's marker value; must never appear in a recovered farm.
MARKER = 424242


class TestOwnedTransactionLog:
    def test_interleaved_sessions_attributed_to_owners(self, tmp_path):
        wal = WalManager(tmp_path / "wal", 2)
        t_a = wal.begin(owner="alice")
        t_b = wal.begin(owner="bob")
        wal.log_op(0, insert("f", a=1), txn=t_a)
        wal.log_op(1, insert("g", b=2), txn=t_b)
        wal.log_op(0, insert("f", a=3), txn=t_a)
        wal.commit(txn=t_b)
        wal.commit(txn=t_a)
        wal.close()
        view = read_wal(tmp_path / "wal")
        assert [t.owner for t in view.committed] == ["bob", "alice"]
        by_owner = {t.owner: t for t in view.committed}
        assert sum(len(ops) for ops in by_owner["alice"].ops.values()) == 2
        assert sum(len(ops) for ops in by_owner["bob"].ops.values()) == 1

    def test_watermark_is_max_committed_id(self, tmp_path):
        # bob (the later begin) commits first; the watermark must end at
        # max(committed ids), not at whichever committed last.
        wal = WalManager(tmp_path / "wal", 1)
        t_a = wal.begin(owner="alice")
        t_b = wal.begin(owner="bob")
        assert t_b > t_a
        wal.log_op(0, insert("f", a=1), txn=t_b)
        wal.commit(txn=t_b)
        wal.log_op(0, insert("f", a=2), txn=t_a)
        wal.commit(txn=t_a)
        assert wal.last_committed_txn == t_b
        wal.close()
        assert read_wal(tmp_path / "wal").last_committed_txn == t_b

    def test_owned_commits_skip_distribution_counts(self, tmp_path):
        wal = WalManager(tmp_path / "wal", 2)
        txn = wal.begin(owner="alice")
        wal.log_op(0, insert("f", a=1), txn=txn)
        wal.commit(txn=txn)
        wal.close()
        view = read_wal(tmp_path / "wal")
        assert view.committed[0].counts is None

    def test_one_open_transaction_per_owner(self, tmp_path):
        wal = WalManager(tmp_path / "wal", 1)
        wal.begin(owner="alice")
        with pytest.raises(WalError):
            wal.begin(owner="alice")
        wal.begin(owner="bob")  # other owners are free
        wal.close()

    def test_aborted_session_txn_not_in_committed(self, tmp_path):
        wal = WalManager(tmp_path / "wal", 1)
        txn = wal.begin(owner="alice")
        wal.log_op(0, insert("f", a=MARKER), txn=txn)
        wal.abort(txn=txn)
        wal.close()
        view = read_wal(tmp_path / "wal")
        assert view.committed == []
        assert view.transactions[txn].status == "aborted"

    def test_open_owners_guard_checkpointing(self, tmp_path):
        wal = WalManager(tmp_path / "wal", 1)
        wal.begin(owner="alice")
        assert wal.has_open_transactions
        assert wal.open_owners() == ["alice"]
        with pytest.raises(WalError):
            wal.start_new_segment()
        wal.close()


# -- the concurrent crash matrix ------------------------------------------------

EXPECTED = {
    CrashPoint.BEFORE_LOG_APPEND: "pre",
    CrashPoint.AFTER_LOG_APPEND: "pre",
    CrashPoint.BEFORE_BULK_APPEND: "pre",
    CrashPoint.AFTER_BULK_APPEND: "pre",
    CrashPoint.BEFORE_APPLY: "pre",
    CrashPoint.AFTER_APPLY: "pre",
    CrashPoint.BEFORE_COMMIT: "pre",
    CrashPoint.BEFORE_GROUP_FSYNC: "pre",
    CrashPoint.AFTER_GROUP_FSYNC: "post",
    CrashPoint.AFTER_COMMIT: "post",
    # session_commit seals the version chains only after the commit
    # record is durable: dying mid-seal (or mid-GC, just after) loses
    # only in-memory MVCC bookkeeping, never the committed transaction.
    CrashPoint.BEFORE_VERSION_SEAL: "post",
    CrashPoint.AFTER_VERSION_SEAL: "post",
    CrashPoint.BEFORE_CHECKPOINT: "post",
    CrashPoint.AFTER_CHECKPOINT_SNAPSHOT: "post",
    CrashPoint.AFTER_CHECKPOINT: "post",
}

CHECKPOINT_POINTS = {
    CrashPoint.BEFORE_CHECKPOINT,
    CrashPoint.AFTER_CHECKPOINT_SNAPSHOT,
    CrashPoint.AFTER_CHECKPOINT,
}


def seed(kds):
    for i in range(6):
        kds.execute(insert("f", a=i))


def writer_transaction(kds, session):
    """Pinned mutations only: file locks, not the global X, so the
    spectator's open transaction on its own file never conflicts."""
    with kds.session_transaction(session):
        kds.execute(insert("f", a=100), session=session)
        kds.execute(insert("f", a=101), session=session)
        kds.execute(bulk("f", [200, 201, 202]), session=session)
        kds.execute(
            update(
                Modifier("a", arithmetic="+", operand=1000),
                ("FILE", "=", "f"),
                ("a", ">=", 4),
            ),
            session=session,
        )
        kds.execute(delete(("FILE", "=", "f"), ("a", "=", 0)), session=session)


def reference_images():
    twin = MLDS(backend_count=BACKENDS)
    seed(twin.kds)
    pre = farm_image(twin)
    session = twin.kds.create_session("writer")
    writer_transaction(twin.kds, session)
    post = farm_image(twin)
    twin.kds.shutdown()
    return pre, post


def assert_no_marker(mlds):
    for backend in mlds.kds.controller.backends:
        for record in backend.store.all_records():
            assert record.get("g") != MARKER and record.get("b") != MARKER


@pytest.mark.parametrize("point", CRASH_MATRIX, ids=lambda p: p.name)
def test_recovery_never_replays_the_uncommitted_session(tmp_path, point):
    injector = FaultInjector()
    # group_window_ms=0: commits go through the group-commit coordinator
    # so the GROUP_FSYNC crash points fire (batching stays opportunistic).
    wal = WalManager(tmp_path / "wal", BACKENDS, injector=injector, group_window_ms=0.0)
    mlds = MLDS(backend_count=BACKENDS, wal=wal)
    seed(mlds.kds)

    spectator = mlds.kds.create_session("spectator")
    writer = mlds.kds.create_session("writer")
    mlds.kds.session_begin(spectator)
    mlds.kds.execute(insert("g", b=MARKER), session=spectator)

    injector.arm(point)
    with pytest.raises(InjectedCrash):
        if point in CHECKPOINT_POINTS:
            writer_transaction(mlds.kds, writer)  # commits cleanly...
            mlds.kds.session_abort(spectator)  # ...spectator clears out...
            checkpoint_mlds(mlds)  # ...then the checkpoint dies
        else:
            writer_transaction(mlds.kds, writer)

    pre, post = reference_images()
    recovered = recover_mlds(tmp_path / "wal", attach_wal=False)
    try:
        expected = pre if EXPECTED[point] == "pre" else post
        assert farm_image(recovered) == expected
        assert_no_marker(recovered)
    finally:
        recovered.kds.shutdown()
        mlds.kds.shutdown()


class TestAutoCommitApplyFailure:
    """A journaled request whose *apply* fails must abort its WAL txn.

    Without the abort the auto-commit slot (the session's owner slot or
    the legacy single slot) stays occupied forever: the next mutation
    raises WalError and checkpointing is wedged.
    """

    def _failing_apply(self, mlds, exc):
        def boom(*args, **kwargs):
            raise exc

        return boom

    def test_failed_session_autocommit_frees_the_owner_slot(self, tmp_path):
        mlds = MLDS(backend_count=BACKENDS, wal=tmp_path / "wal")
        seed(mlds.kds)
        session = mlds.kds.create_session("writer")
        engine = mlds.kds.controller.engine
        original = engine.execute_one
        engine.execute_one = self._failing_apply(
            mlds, ExecutionError("backend died mid-apply")
        )
        try:
            with pytest.raises(ExecutionError):
                mlds.kds.execute(insert("f", a=7), session=session)
        finally:
            engine.execute_one = original
        assert not mlds.kds.wal.has_open_transactions
        # The owner slot is free: the session's next mutation works...
        mlds.kds.execute(insert("f", a=8), session=session)
        # ...and checkpointing is not wedged by a phantom transaction.
        checkpoint_mlds(mlds)
        mlds.kds.shutdown()

    def test_failed_broadcast_autocommit_frees_the_owner_slot(self, tmp_path):
        mlds = MLDS(backend_count=BACKENDS, wal=tmp_path / "wal")
        seed(mlds.kds)
        session = mlds.kds.create_session("writer")
        engine = mlds.kds.controller.engine
        original = engine.run
        engine.run = self._failing_apply(mlds, ExecutionError("farm died"))
        try:
            with pytest.raises(ExecutionError):
                mlds.kds.execute(
                    delete(("FILE", "=", "f"), ("a", "=", 1)), session=session
                )
        finally:
            engine.run = original
        assert not mlds.kds.wal.has_open_transactions
        mlds.kds.execute(delete(("FILE", "=", "f"), ("a", "=", 1)), session=session)
        checkpoint_mlds(mlds)
        mlds.kds.shutdown()

    def test_failed_legacy_autocommit_frees_the_single_slot(self, tmp_path):
        mlds = MLDS(backend_count=BACKENDS, wal=tmp_path / "wal")
        seed(mlds.kds)
        engine = mlds.kds.controller.engine
        original = engine.execute_one
        engine.execute_one = self._failing_apply(
            mlds, ExecutionError("backend died mid-apply")
        )
        try:
            with pytest.raises(ExecutionError):
                mlds.kds.execute(insert("f", a=7))
        finally:
            engine.execute_one = original
        assert not mlds.kds.wal.in_transaction
        mlds.kds.execute(insert("f", a=8))  # the slot is free again
        mlds.kds.shutdown()

    def test_failed_autocommit_is_aborted_on_the_log(self, tmp_path):
        # Recovery must discard the failed request's ops: the abort is
        # durable, not only an in-memory slot release.
        wal_dir = tmp_path / "wal"
        mlds = MLDS(backend_count=BACKENDS, wal=wal_dir)
        seed(mlds.kds)
        pre = farm_image(mlds)
        session = mlds.kds.create_session("writer")
        engine = mlds.kds.controller.engine
        original = engine.execute_one
        engine.execute_one = self._failing_apply(
            mlds, ExecutionError("backend died mid-apply")
        )
        try:
            with pytest.raises(ExecutionError):
                mlds.kds.execute(insert("g", b=MARKER), session=session)
        finally:
            engine.execute_one = original
        mlds.kds.shutdown()

        recovered = recover_mlds(wal_dir, attach_wal=False)
        try:
            assert farm_image(recovered) == pre
            assert_no_marker(recovered)
        finally:
            recovered.kds.shutdown()


def test_checkpoint_refuses_while_any_session_is_open(tmp_path):
    mlds = MLDS(backend_count=BACKENDS, wal=tmp_path / "wal")
    seed(mlds.kds)
    spectator = mlds.kds.create_session("spectator")
    mlds.kds.session_begin(spectator)
    mlds.kds.execute(insert("g", b=1), session=spectator)
    with pytest.raises(WalError, match="spectator"):
        checkpoint_mlds(mlds)
    mlds.kds.session_abort(spectator)
    checkpoint_mlds(mlds)  # clean once the session resolved
    mlds.kds.shutdown()


def test_interleaved_sessions_recover_committed_work_only(tmp_path):
    """No crash injection: one committed, one left open at 'power loss'."""
    wal_dir = tmp_path / "wal"
    mlds = MLDS(backend_count=BACKENDS, wal=wal_dir)
    seed(mlds.kds)
    committed = mlds.kds.create_session("committed")
    abandoned = mlds.kds.create_session("abandoned")
    mlds.kds.session_begin(committed)
    mlds.kds.session_begin(abandoned)
    mlds.kds.execute(insert("g", b=MARKER), session=abandoned)
    mlds.kds.execute(insert("f", a=200), session=committed)
    mlds.kds.session_commit(committed)
    live = farm_image(mlds)
    # power loss: no abort record is ever written for `abandoned`

    recovered = recover_mlds(wal_dir, attach_wal=False)
    try:
        image = farm_image(recovered)
        assert_no_marker(recovered)
        # the recovered farm is the live farm minus the abandoned writes
        stripped = [
            sorted(entry for entry in backend if ("b", MARKER) not in entry[0])
            for backend in live
        ]
        assert image == stripped
    finally:
        recovered.kds.shutdown()
        mlds.kds.shutdown()
