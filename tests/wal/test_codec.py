"""The WAL codec must round-trip every mutating request exactly."""

from __future__ import annotations

import json

import pytest

from repro.abdl.ast import (
    ALL_ATTRIBUTES,
    DeleteRequest,
    InsertRequest,
    Modifier,
    RetrieveRequest,
    UpdateRequest,
)
from repro.abdm.predicate import Conjunction, Predicate, Query
from repro.abdm.record import Record
from repro.errors import WalError
from repro.wal.codec import (
    decode_request,
    encode_query,
    decode_query,
    encode_request,
    is_mutating,
)

from tests.wal.conftest import query


def roundtrip(request):
    """Encode, force through actual JSON text, decode."""
    return decode_request(json.loads(json.dumps(encode_request(request))))


def test_insert_roundtrips_pairs_text_and_value_types():
    record = Record.from_pairs(
        [("FILE", "course"), ("units", 3), ("gpa", 3.5), ("note", None)],
        text="An introduction to database design.",
    )
    request = InsertRequest(record)
    decoded = roundtrip(request)
    assert isinstance(decoded, InsertRequest)
    assert decoded.record == record
    assert decoded.record.text == record.text


def test_insert_text_survives_where_rendered_abdl_drops_it():
    # The rendered ABDL form loses the textual portion — the very reason
    # the WAL journals JSON rather than request.render() text.
    record = Record.from_pairs([("FILE", "f"), ("a", 1)], text="textual portion")
    rendered = InsertRequest(record).render()
    assert "textual portion" not in rendered
    assert roundtrip(InsertRequest(record)).record.text == "textual portion"


def test_delete_roundtrips_multi_clause_query():
    dnf = Query(
        [
            Conjunction([Predicate("FILE", "=", "f"), Predicate("a", ">=", 2)]),
            Conjunction([Predicate("b", "!=", "x")]),
        ]
    )
    decoded = roundtrip(DeleteRequest(dnf))
    assert isinstance(decoded, DeleteRequest)
    assert decoded.query == dnf


def test_update_roundtrips_plain_and_arithmetic_modifiers():
    plain = UpdateRequest(query(("FILE", "=", "f")), Modifier("a", value=7))
    decoded = roundtrip(plain)
    assert isinstance(decoded, UpdateRequest)
    assert decoded.modifier == plain.modifier
    assert decoded.query == plain.query

    arithmetic = UpdateRequest(
        query(("FILE", "=", "f")),
        Modifier("salary", arithmetic="+", operand=1000.0),
    )
    decoded = roundtrip(arithmetic)
    assert decoded.modifier == arithmetic.modifier


def test_query_codec_roundtrips_empty_query():
    empty = Query([])
    assert decode_query(encode_query(empty)) == empty


def test_retrievals_are_not_journaled():
    retrieval = RetrieveRequest(query(("FILE", "=", "f")), (ALL_ATTRIBUTES,))
    assert not is_mutating(retrieval)
    with pytest.raises(WalError):
        encode_request(retrieval)


def test_unknown_operation_rejected():
    with pytest.raises(WalError):
        decode_request({"op": "VACUUM"})


def test_mutating_classifier():
    record = Record.from_pairs([("FILE", "f")])
    assert is_mutating(InsertRequest(record))
    assert is_mutating(DeleteRequest(query(("FILE", "=", "f"))))
    assert is_mutating(
        UpdateRequest(query(("FILE", "=", "f")), Modifier("a", value=1))
    )
