"""Recovery semantics: redo committed work, discard everything else."""

from __future__ import annotations

import json

import pytest

from repro.abdl.ast import Modifier
from repro.core.mlds import MLDS
from repro.errors import WalError
from repro.persistence import load_mlds, save_mlds
from repro.university import load_university
from repro.wal.log import backend_segment_name
from repro.wal.recovery import checkpoint_mlds, recover_mlds, snapshot_watermark

from tests.wal.conftest import delete, farm_image, insert, update


def small_workload(kds):
    """A deterministic mixed workload across two files."""
    for i in range(8):
        kds.execute(insert("f", a=i))
    for i in range(4):
        kds.execute(insert("g", b=i, note=f"row {i}"))
    kds.execute(update(Modifier("a", arithmetic="*", operand=10), ("a", ">=", 6)))
    kds.execute(delete(("FILE", "=", "g"), ("b", "=", 1)))


def test_recovery_without_checkpoint_rebuilds_the_whole_farm(tmp_path):
    wal_dir = tmp_path / "wal"
    mlds = MLDS(backend_count=3, wal=wal_dir)
    small_workload(mlds.kds)
    live = farm_image(mlds)
    mlds.kds.shutdown()

    recovered = recover_mlds(wal_dir)
    assert farm_image(recovered) == live
    recovered.kds.shutdown()


def test_recovery_after_checkpoint_replays_only_the_tail(tmp_path):
    wal_dir = tmp_path / "wal"
    mlds = MLDS(backend_count=3, wal=wal_dir)
    small_workload(mlds.kds)
    checkpoint_mlds(mlds)
    # tail beyond the checkpoint
    mlds.kds.execute(insert("f", a=99))
    mlds.kds.execute(delete(("FILE", "=", "f"), ("a", "=", 0)))
    live = farm_image(mlds)
    watermark = mlds.kds.wal.last_committed_txn
    mlds.kds.shutdown()

    recovered = recover_mlds(wal_dir)
    assert farm_image(recovered) == live
    # journaling resumes after everything already on disk
    assert recovered.kds.wal.last_committed_txn == watermark
    recovered.kds.shutdown()


def test_checkpoint_carries_schemas_and_placement(tmp_path):
    wal_dir = tmp_path / "wal"
    mlds = MLDS(backend_count=4, wal=wal_dir)
    load_university(mlds)
    checkpoint_mlds(mlds)
    mlds.kds.shutdown()

    recovered = recover_mlds(wal_dir)
    assert recovered.database_names() == ["university"]
    # placement counters restored: the next insert round-robins onward
    # exactly as the uncrashed system would have
    counters = recovered.kds.controller.placement._counters
    assert counters  # populated from the snapshot, not empty
    recovered.kds.shutdown()


def test_uncommitted_tail_is_discarded(tmp_path):
    wal_dir = tmp_path / "wal"
    mlds = MLDS(backend_count=2, wal=wal_dir)
    mlds.kds.execute(insert("f", a=1))
    pre = farm_image(mlds)
    # an explicit transaction the crash beats to the commit record
    mlds.kds.begin_transaction()
    mlds.kds.execute(insert("f", a=2))
    mlds.kds.execute(insert("f", a=3))
    mlds.kds.controller.wal.close()  # the plug is pulled; no commit record

    recovered = recover_mlds(wal_dir)
    assert farm_image(recovered) == pre
    recovered.kds.shutdown()
    mlds.kds.controller.wal = None  # already closed; skip shutdown's close
    mlds.kds.shutdown()


def test_aborted_transaction_rolls_back_live_and_stays_out_of_recovery(tmp_path):
    wal_dir = tmp_path / "wal"
    mlds = MLDS(backend_count=2, wal=wal_dir)
    mlds.kds.execute(insert("f", a=1))
    pre = farm_image(mlds)

    class Boom(RuntimeError):
        pass

    with pytest.raises(Boom):
        with mlds.kds.transaction():
            mlds.kds.execute(insert("f", a=2))
            mlds.kds.execute(update(Modifier("a", value=7), ("FILE", "=", "f")))
            raise Boom()
    # in-memory rollback: the live farm is back to the pre-image
    assert farm_image(mlds) == pre
    mlds.kds.shutdown()

    recovered = recover_mlds(wal_dir)
    assert farm_image(recovered) == pre
    recovered.kds.shutdown()


def test_missing_journaled_op_fails_the_count_checksum(tmp_path):
    wal_dir = tmp_path / "wal"
    mlds = MLDS(backend_count=1, wal=wal_dir)
    with mlds.kds.transaction():
        mlds.kds.execute(insert("f", a=1))
        mlds.kds.execute(insert("f", a=2))
    mlds.kds.shutdown()
    # drop the second (still well-formed) op line from the backend log
    log = wal_dir / backend_segment_name(0, 0)
    lines = log.read_text().splitlines()
    log.write_text("\n".join(lines[:-1]) + "\n")
    with pytest.raises(WalError, match="checksum"):
        recover_mlds(wal_dir)


def test_recover_into_any_engine_is_identical(tmp_path):
    wal_dir = tmp_path / "wal"
    mlds = MLDS(backend_count=3, wal=wal_dir)
    small_workload(mlds.kds)
    live = farm_image(mlds)
    mlds.kds.shutdown()

    serial = recover_mlds(wal_dir, engine="serial", attach_wal=False)
    threads = recover_mlds(wal_dir, engine="threads", workers=2, attach_wal=False)
    assert farm_image(serial) == live
    assert farm_image(threads) == live
    serial.kds.shutdown()
    threads.kds.shutdown()


def test_recovered_placement_continues_round_robin(tmp_path):
    """Post-recovery inserts land where the uncrashed system would put them."""
    wal_dir = tmp_path / "wal"
    mlds = MLDS(backend_count=3, wal=wal_dir)
    for i in range(4):  # 4 inserts over 3 backends: next goes to backend 1
        mlds.kds.execute(insert("f", a=i))
    mlds.kds.shutdown()

    twin = MLDS(backend_count=3)
    for i in range(4):
        twin.kds.execute(insert("f", a=i))

    recovered = recover_mlds(wal_dir)
    recovered.kds.execute(insert("f", a=100))
    twin.kds.execute(insert("f", a=100))
    assert farm_image(recovered) == farm_image(twin)
    recovered.kds.shutdown()
    twin.kds.shutdown()


def test_recover_requires_a_wal_directory(tmp_path):
    with pytest.raises(WalError):
        recover_mlds(tmp_path / "nowhere")


def test_version_1_snapshot_still_loads_with_zero_watermark(tmp_path):
    mlds = MLDS(backend_count=2)
    mlds.kds.execute(insert("f", a=1))
    path = tmp_path / "snap.json"
    save_mlds(mlds, path)
    # rewrite as the pre-WAL format 1 (no wal/placement keys)
    snapshot = json.loads(path.read_text())
    snapshot["format"] = 1
    del snapshot["wal"]
    del snapshot["placement"]
    path.write_text(json.dumps(snapshot))

    assert snapshot_watermark(path) == 0
    migrated = load_mlds(path)
    assert farm_image(migrated) == farm_image(mlds)


def test_wrong_backend_count_snapshot_rejected_by_recovery(tmp_path):
    wal_dir = tmp_path / "wal"
    mlds = MLDS(backend_count=2, wal=wal_dir)
    mlds.kds.execute(insert("f", a=1))
    mlds.kds.shutdown()

    other = MLDS(backend_count=3)
    snapshot = tmp_path / "other.json"
    save_mlds(other, snapshot)
    with pytest.raises(WalError, match="backends"):
        recover_mlds(wal_dir, snapshot=snapshot)
