"""Shared helpers for the durability test suite.

The WAL tests drive the kernel directly with small hand-built ABDL
requests (no language front-end involved), so the helpers here build
requests and canonical farm images with minimal ceremony.
"""

from __future__ import annotations

from repro.abdl.ast import (
    BulkInsertRequest,
    DeleteRequest,
    InsertRequest,
    Modifier,
    UpdateRequest,
)
from repro.abdm.predicate import Conjunction, Predicate, Query
from repro.abdm.record import Record


def query(*predicates: tuple) -> Query:
    """A one-conjunction query from ``(attribute, operator, value)`` tuples."""
    return Query([Conjunction([Predicate(a, o, v) for a, o, v in predicates])])


def insert(file_name: str, text: str = "", **attrs) -> InsertRequest:
    """An INSERT of a record in *file_name* with keyword *attrs*."""
    pairs = [("FILE", file_name), *attrs.items()]
    return InsertRequest(Record.from_pairs(pairs, text=text))


def bulk(file_name: str, values, attr: str = "a") -> BulkInsertRequest:
    """A BULK-INSERT of one record per value in *values* (all ``attr=value``)."""
    return BulkInsertRequest(
        [Record.from_pairs([("FILE", file_name), (attr, v)]) for v in values]
    )


def delete(*predicates: tuple) -> DeleteRequest:
    return DeleteRequest(query(*predicates))


def update(modifier: Modifier, *predicates: tuple) -> UpdateRequest:
    return UpdateRequest(query(*predicates), modifier)


def farm_image(mlds) -> list:
    """Canonical per-backend contents: sorted (pairs, text) per backend.

    Two systems with equal farm images hold bit-identical stores —
    the acceptance check for recovery correctness.
    """
    return [
        sorted((tuple(r.pairs()), r.text) for r in backend.store.all_records())
        for backend in mlds.kds.controller.backends
    ]
