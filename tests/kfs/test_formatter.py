"""KFS result formatting."""

from repro.abdm import Record
from repro.kfs import format_record, format_records, format_table
from repro.network import AttributeType, NetAttribute, NetRecordType


def course_def():
    return NetRecordType(
        "course",
        [
            NetAttribute("title", AttributeType.CHARACTER, length=10),
            NetAttribute("credits", AttributeType.INTEGER),
        ],
    )


class TestFormatRecord:
    def test_items_in_schema_order(self):
        text = format_record(course_def(), {"credits": 4, "title": "DB"})
        lines = text.splitlines()
        assert lines[0] == "course:"
        assert lines[1].strip() == "title = DB"
        assert lines[2].strip() == "credits = 4"

    def test_missing_values_render_null(self):
        text = format_record(course_def(), {})
        assert "title = <null>" in text

    def test_float_rendering(self):
        record_def = NetRecordType("r", [NetAttribute("x", AttributeType.FLOAT)])
        assert "x = 2.5" in format_record(record_def, {"x": 2.5})


class TestFormatTable:
    def test_header_and_rows(self):
        text = format_table(["a", "b"], [{"a": 1, "b": "xyz"}, {"a": 22}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "xyz" in lines[2]
        assert "<null>" in lines[3]

    def test_title(self):
        text = format_table(["a"], [], title="Empty")
        assert text.startswith("Empty")
        assert "(no records)" in text

    def test_column_width_fits_longest(self):
        text = format_table(["col"], [{"col": "a-rather-long-value"}])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("a-rather-long-value")


class TestFormatRecords:
    def test_projects_ab_records(self):
        records = [
            Record.from_pairs([("FILE", "course"), ("title", "DB"), ("credits", 4)]),
            Record.from_pairs([("FILE", "course"), ("title", "OS"), ("credits", 3)]),
        ]
        text = format_records(course_def(), records)
        assert "DB" in text and "OS" in text

    def test_item_subset(self):
        records = [Record.from_pairs([("FILE", "course"), ("title", "DB"), ("credits", 4)])]
        text = format_records(course_def(), records, items=["credits"])
        assert "title" not in text
