"""The shared lexer and token stream."""

import pytest

from repro.errors import LexError, ParseError
from repro.lang import Lexer, TokenStream, TokenType


@pytest.fixture()
def lexer():
    return Lexer(["FIND", "WITHIN", "NULL"])


class TestTokens:
    def test_keywords_normalized(self, lexer):
        tokens = lexer.tokenize("find WiThIn")
        assert [t.type for t in tokens[:2]] == [TokenType.KEYWORD] * 2
        assert tokens[0].text == "FIND"

    def test_identifiers_keep_case(self, lexer):
        token = lexer.tokenize("Person_Student")[0]
        assert token.type is TokenType.IDENT
        assert token.text == "Person_Student"

    def test_dollar_in_identifier(self, lexer):
        token = lexer.tokenize("person$31")[0]
        assert token.type is TokenType.IDENT
        assert token.text == "person$31"

    def test_integer(self, lexer):
        token = lexer.tokenize("42")[0]
        assert token.type is TokenType.NUMBER
        assert token.value == 42

    def test_float(self, lexer):
        token = lexer.tokenize("3.25")[0]
        assert token.value == 3.25

    def test_range_dots_not_float(self):
        lexer = Lexer([], symbols=("..", ".", "(", ")"))
        tokens = lexer.tokenize("1..5")
        assert [t.text for t in tokens[:3]] == ["1", "..", "5"]

    def test_string_with_escape(self, lexer):
        token = lexer.tokenize("'it''s'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "it's"

    def test_comment_skipped(self, lexer):
        tokens = lexer.tokenize("find -- comment here\nwithin")
        assert [t.text for t in tokens[:2]] == ["FIND", "WITHIN"]

    def test_longest_symbol_wins(self):
        lexer = Lexer([], symbols=("<=", "<", "="))
        assert lexer.tokenize("<=")[0].text == "<="

    def test_positions(self, lexer):
        tokens = lexer.tokenize("find\n  within")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_terminates(self, lexer):
        assert lexer.tokenize("")[0].type is TokenType.EOF


class TestLexErrors:
    def test_unterminated_string(self, lexer):
        with pytest.raises(LexError):
            lexer.tokenize("'oops")

    def test_unknown_character(self):
        lexer = Lexer([], symbols=("(",))
        with pytest.raises(LexError):
            lexer.tokenize("@")


class TestTokenStream:
    def make(self, text, keywords=("FIND", "WITHIN")):
        return TokenStream(Lexer(keywords).tokenize(text))

    def test_accept_and_expect(self):
        stream = self.make("FIND x WITHIN y")
        assert stream.accept_keyword("FIND")
        assert stream.expect_ident().text == "x"
        assert stream.expect_keyword("WITHIN")
        assert stream.expect_ident().text == "y"
        stream.expect_eof()

    def test_expect_failure_raises_parse_error(self):
        stream = self.make("x")
        with pytest.raises(ParseError):
            stream.expect_keyword("FIND")

    def test_peek_does_not_consume(self):
        stream = self.make("FIND x")
        assert stream.peek(1).text == "x"
        assert stream.current.text == "FIND"

    def test_trailing_input_detected(self):
        stream = self.make("x y")
        stream.expect_ident()
        with pytest.raises(ParseError):
            stream.expect_eof()

    def test_keywords_usable_as_identifiers(self):
        stream = self.make("FIND")
        token = stream.expect_ident()
        assert token.text == "FIND"

    def test_advance_at_eof_is_stable(self):
        stream = self.make("")
        assert stream.advance().type is TokenType.EOF
        assert stream.advance().type is TokenType.EOF
