"""Span trees and the tracer's context propagation."""

import threading

import pytest

from repro.obs import NULL_SPAN, NULL_TRACER, Span, Tracer


class TestSpan:
    def test_nesting_and_walk(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child-a"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("child-b"):
                pass
        assert [s.name for s in root.walk()] == ["root", "child-a", "leaf", "child-b"]
        assert root.closed
        assert all(s.closed for s in root.walk())

    def test_children_attach_to_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                assert child.parent is root
        assert root.children == [child]

    def test_record_simulated_and_attrs(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            root.record(simulated_ms=42.5, records=3)
        assert root.simulated_ms == 42.5
        assert root.attrs["records"] == 3

    def test_find(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("kc.dispatch"):
                pass
            with tracer.span("kc.dispatch"):
                pass
        root = tracer.last_trace
        assert len(root.find("kc.dispatch")) == 2
        assert root.find("nothing") == []

    def test_as_dict_snapshots_subtree(self):
        tracer = Tracer()
        with tracer.span("root", user="u") as root:
            root.record(simulated_ms=1.0)
            with tracer.span("child"):
                pass
        payload = root.as_dict()
        assert payload["name"] == "root"
        assert payload["simulated_ms"] == 1.0
        assert payload["attrs"] == {"user": "u"}
        assert [c["name"] for c in payload["children"]] == ["child"]

    def test_render_is_indented(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        text = tracer.last_trace.render()
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")

    def test_exception_still_closes_spans(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                with tracer.span("child"):
                    raise RuntimeError("boom")
        root = tracer.last_trace
        assert root is not None and root.closed
        assert all(s.closed for s in root.walk())


class TestTracer:
    def test_roots_collect_in_traces(self):
        tracer = Tracer()
        for i in range(3):
            with tracer.span(f"r{i}"):
                pass
        assert [t.name for t in tracer.traces] == ["r0", "r1", "r2"]
        assert tracer.last_trace.name == "r2"

    def test_capacity_bounds_traces(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            with tracer.span(f"r{i}"):
                pass
        assert [t.name for t in tracer.traces] == ["r3", "r4"]

    def test_sink_fires_per_root_only(self):
        seen = []
        tracer = Tracer(sink=seen.append)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [s.name for s in seen] == ["root"]

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("root") as root:
            assert tracer.current is root
            with tracer.span("child") as child:
                assert tracer.current is child
            assert tracer.current is root
        assert tracer.current is None

    def test_open_with_explicit_parent_crosses_threads(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            parent = tracer.current

            def pool_work():
                # Pool threads see no thread-local context ...
                assert tracer.current is None
                span = tracer.open("backend[0].broadcast", parent)
                span.finish()

            worker = threading.Thread(target=pool_work)
            worker.start()
            worker.join()
        # ... yet the span landed under the controller-side parent.
        assert [c.name for c in root.children] == ["backend[0].broadcast"]

    def test_open_defaults_to_current(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            leaf = tracer.open("leaf")
            leaf.finish()
        assert leaf.parent is root

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        tracer.clear()
        assert tracer.last_trace is None


class TestNullObjects:
    def test_null_span_is_falsy_and_inert(self):
        assert not NULL_SPAN
        NULL_SPAN.record(simulated_ms=1.0, anything=2)
        NULL_SPAN.finish()

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("x", a=1) as span:
            assert span is NULL_SPAN
        assert NULL_TRACER.open("y") is NULL_SPAN
        assert NULL_TRACER.current is None
        assert NULL_TRACER.last_trace is None

    def test_real_span_is_truthy(self):
        assert Span("s")
