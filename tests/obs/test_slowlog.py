"""The slow-request log."""

import pytest

from repro.obs import NULL_SLOWLOG, Observability, SlowLog, Span, Tracer


def finished_span(name="root", wall_ms=10.0):
    span = Span(name)
    span.finish()
    span.wall_ms = wall_ms  # pin the duration for deterministic tests
    return span


class TestSlowLog:
    def test_captures_at_or_above_threshold(self):
        slowlog = SlowLog(threshold_ms=5.0)
        assert slowlog.consider(finished_span(wall_ms=5.0))
        assert slowlog.consider(finished_span(wall_ms=9.0))
        assert not slowlog.consider(finished_span(wall_ms=4.9))
        assert len(slowlog) == 2

    def test_open_spans_are_never_captured(self):
        slowlog = SlowLog(threshold_ms=0.0)
        assert not slowlog.consider(Span("still-open"))

    def test_entries_are_dict_snapshots(self):
        slowlog = SlowLog(threshold_ms=0.0)
        span = finished_span()
        span.record(user="u")
        slowlog.consider(span)
        entry = slowlog.entries()[0]
        assert entry["name"] == "root"
        assert entry["attrs"] == {"user": "u"}
        # Mutating the live span later cannot retouch the snapshot.
        span.attrs["user"] = "someone-else"
        assert slowlog.entries()[0]["attrs"] == {"user": "u"}

    def test_capacity_keeps_newest(self):
        slowlog = SlowLog(threshold_ms=0.0, capacity=2)
        for i in range(4):
            slowlog.consider(finished_span(name=f"r{i}"))
        assert [e["name"] for e in slowlog.entries()] == ["r2", "r3"]

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowLog(threshold_ms=-1)
        with pytest.raises(ValueError):
            SlowLog(capacity=0)

    def test_clear_and_as_dict(self):
        slowlog = SlowLog(threshold_ms=1.0)
        slowlog.consider(finished_span())
        assert slowlog.as_dict()["threshold_ms"] == 1.0
        slowlog.clear()
        assert slowlog.as_dict()["entries"] == []


class TestNullSlowLog:
    def test_inert(self):
        assert not NULL_SLOWLOG.consider(finished_span())
        assert NULL_SLOWLOG.entries() == []
        assert len(NULL_SLOWLOG) == 0
        assert NULL_SLOWLOG.as_dict() == {"threshold_ms": None, "entries": []}


class TestObservabilityBundle:
    def test_slow_ms_implies_tracing(self):
        obs = Observability(slow_ms=0.0)
        assert obs.tracer.enabled
        assert isinstance(obs.slowlog, SlowLog)

    def test_traces_feed_the_slow_log(self):
        obs = Observability(slow_ms=0.0)
        with obs.tracer.span("root"):
            pass
        assert len(obs.slowlog) == 1
        assert obs.slowlog.entries()[0]["name"] == "root"

    def test_fast_requests_stay_out(self):
        obs = Observability(slow_ms=10_000.0)
        with obs.tracer.span("root"):
            pass
        assert len(obs.slowlog) == 0

    def test_metrics_live_without_tracing(self):
        obs = Observability()
        assert not isinstance(obs.tracer, Tracer)
        obs.metrics.inc("n")
        assert obs.metrics.counter_value("n") == 1

    def test_as_dict_bundles_metrics_and_slowlog(self):
        obs = Observability(slow_ms=0.0)
        obs.metrics.inc("n")
        payload = obs.as_dict()
        assert payload["metrics"]["n"]["value"] == 1
        assert payload["slowlog"]["threshold_ms"] == 0.0
