"""Property tests: traced span trees are well-formed under either engine.

For any random mutating/retrieving workload, under SerialEngine and
ThreadPoolEngine alike:

* every span in every captured trace is closed;
* every child's lifetime nests within its parent's (within a small
  epsilon — parent and child stop different perf_counter calls);
* the sum of ``kds.execute`` simulated times over the traces equals the
  kernel clock's total, bit-for-bit (same floats, same accumulation
  order — the spans *copy* the engine's numbers, never recompute them).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import MLDS
from repro.obs import Observability

DDL = """
DATABASE registrar;
CREATE TABLE student (sid INT, sname CHAR(30), major CHAR(20), PRIMARY KEY (sid));
"""

#: Parent/child wall-clock nesting slack, in milliseconds.  finish()
#: timestamps parent and child with different perf_counter calls, so a
#: child can appear (immeasurably) longer than an instant parent.
EPSILON_MS = 0.5


@st.composite
def workloads(draw):
    """A statement mix: inserts plus point/major SELECTs and UPDATEs."""
    statements = []
    sid = 0
    for _ in range(draw(st.integers(1, 8))):
        kind = draw(st.sampled_from(["insert", "select", "update"]))
        if kind == "insert" or sid == 0:
            major = draw(st.sampled_from(["cs", "math"]))
            statements.append(
                f"INSERT INTO student VALUES ({sid}, 'u{sid}', '{major}')"
            )
            sid += 1
        elif kind == "select":
            target = draw(st.integers(0, sid - 1))
            statements.append(f"SELECT * FROM student WHERE sid = {target}")
        else:
            target = draw(st.integers(0, sid - 1))
            statements.append(
                f"UPDATE student SET major = 'ee' WHERE sid = {target}"
            )
    return statements


def run_workload(engine: str, statements: list[str]):
    obs = Observability(tracing=True, trace_capacity=256)
    mlds = MLDS(backend_count=3, engine=engine, pruning=True, obs=obs)
    mlds.define_relational_database(DDL)
    session = mlds.open_sql_session("registrar")
    for statement in statements:
        session.execute(statement)
    try:
        return list(obs.tracer.traces), mlds.kds.clock.total_ms
    finally:
        mlds.kds.shutdown()


@settings(max_examples=25, deadline=None)
@given(statements=workloads(), engine=st.sampled_from(["serial", "threads"]))
def test_every_span_is_closed(statements, engine):
    traces, _ = run_workload(engine, statements)
    assert traces
    for root in traces:
        for span in root.walk():
            assert span.closed, f"{span.name} left open"


@settings(max_examples=25, deadline=None)
@given(statements=workloads(), engine=st.sampled_from(["serial", "threads"]))
def test_children_nest_within_parents(statements, engine):
    traces, _ = run_workload(engine, statements)
    for root in traces:
        for span in root.walk():
            for child in span.children:
                assert child.parent is span
                assert child.wall_ms <= span.wall_ms + EPSILON_MS, (
                    f"{child.name} ({child.wall_ms}ms) outlives "
                    f"{span.name} ({span.wall_ms}ms)"
                )


@settings(max_examples=25, deadline=None)
@given(statements=workloads(), engine=st.sampled_from(["serial", "threads"]))
def test_simulated_totals_match_engine_report(statements, engine):
    traces, clock_total = run_workload(engine, statements)
    total = 0.0
    for root in traces:
        for span in root.walk():
            if span.name == "kds.execute":
                total += span.simulated_ms
    assert total == clock_total  # bit-identical — copied, not recomputed


@settings(max_examples=10, deadline=None)
@given(statements=workloads())
def test_engines_trace_the_same_shape(statements):
    """Serial and threaded runs produce the same span-name multisets."""
    serial_traces, serial_total = run_workload("serial", statements)
    threads_traces, threads_total = run_workload("threads", statements)
    assert serial_total == threads_total

    def shape(traces):
        return [sorted(span.name for span in root.walk()) for root in traces]

    assert shape(serial_traces) == shape(threads_traces)
