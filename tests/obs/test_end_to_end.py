"""Observability end to end: one transaction, one span tree, all layers.

The ISSUE's acceptance shape: a single traced transaction yields one
span tree covering LIL, KMS, KC, KDS, backend, and WAL phases under both
execution engines, with simulated-time span totals bit-identical to the
engine's own reports.
"""

import json

import pytest

from repro import MLDS
from repro.cli import MLDSShell, build_parser
from repro.obs import NULL_OBS, Observability

RELATIONAL_DDL = """
DATABASE registrar;
CREATE TABLE student (sid INT, sname CHAR(30), major CHAR(20), PRIMARY KEY (sid));
"""

NETWORK_DDL = """
SCHEMA NAME IS plant;

RECORD NAME IS part;
    pno TYPE IS CHARACTER 8;
    weight TYPE IS INTEGER;
"""


@pytest.fixture(params=["serial", "threads"])
def traced(request, tmp_path):
    obs = Observability(tracing=True)
    mlds = MLDS(
        backend_count=3,
        engine=request.param,
        pruning=True,
        wal=tmp_path / "wal",
        obs=obs,
    )
    mlds.define_relational_database(RELATIONAL_DDL)
    yield mlds, obs
    mlds.kds.shutdown()


class TestSingleTransactionTrace:
    def test_insert_trace_covers_every_layer(self, traced):
        mlds, obs = traced
        session = mlds.open_sql_session("registrar")
        session.execute("INSERT INTO student VALUES (1, 'Ann', 'cs')")
        root = obs.last_trace
        names = {span.name for span in root.walk()}
        assert root.name == "lil.session"
        assert "kms.translate" in names
        assert "kc.dispatch" in names
        assert "kds.execute" in names
        assert "wal.append" in names
        assert "wal.commit" in names
        assert any(name.startswith("backend[") for name in names)
        assert all(span.closed for span in root.walk())

    def test_retrieve_trace_has_prune_and_backend_phases(self, traced):
        mlds, obs = traced
        session = mlds.open_sql_session("registrar")
        session.execute("INSERT INTO student VALUES (1, 'Ann', 'cs')")
        session.execute("SELECT sname FROM student WHERE major = 'cs'")
        root = obs.last_trace
        names = {span.name for span in root.walk()}
        assert "prune.decision" in names
        assert any(name.endswith(".broadcast") for name in names)

    def test_simulated_totals_bit_identical_to_clock(self, traced):
        mlds, obs = traced
        session = mlds.open_sql_session("registrar")
        for i in range(8):
            session.execute(f"INSERT INTO student VALUES ({i}, 'u{i}', 'cs')")
        session.execute("SELECT * FROM student WHERE major = 'cs'")
        total = 0.0
        for trace in obs.tracer.traces:
            for span in trace.walk():
                if span.name == "kds.execute":
                    total += span.simulated_ms
        assert total == mlds.kds.clock.total_ms  # bit-identical, not approx

    def test_backend_spans_report_simulated_and_scan_attrs(self, traced):
        mlds, obs = traced
        session = mlds.open_sql_session("registrar")
        session.execute("INSERT INTO student VALUES (1, 'Ann', 'cs')")
        session.execute("SELECT * FROM student WHERE sid = 1")
        root = obs.last_trace
        backend_spans = [
            span for span in root.walk() if span.name.startswith("backend[")
        ]
        assert backend_spans
        for span in backend_spans:
            assert span.simulated_ms > 0
            assert "records_examined" in span.attrs
            assert "index_hits" in span.attrs

    def test_multi_statement_run_is_one_trace(self, traced):
        mlds, obs = traced
        session = mlds.open_sql_session("registrar")
        obs.tracer.clear()
        session.run(
            "INSERT INTO student VALUES (1, 'Ann', 'cs');"
            "INSERT INTO student VALUES (2, 'Bob', 'math');"
        )
        assert len(obs.tracer.traces) == 1
        root = obs.last_trace
        assert len(root.find("kms.translate")) == 2

    def test_phase_labels_match_response_phases(self, traced):
        """Span names and BroadcastPhase labels come from one constant."""
        mlds, obs = traced
        session = mlds.open_sql_session("registrar")
        session.execute("INSERT INTO student VALUES (1, 'Ann', 'cs')")
        session.execute("SELECT * FROM student WHERE sid = 1")
        for trace in list(obs.tracer.traces)[-2:]:
            kds_span = trace.find("kds.execute")[-1]
            suffixes = {
                span.name.split(".", 1)[1]
                for span in kds_span.walk()
                if span.name.startswith("backend[")
            }
            assert suffixes <= {"insert", "broadcast", "left", "right"}


class TestMetricsAcrossRequests:
    def test_registry_aggregates(self, traced):
        mlds, obs = traced
        session = mlds.open_sql_session("registrar")
        session.execute("INSERT INTO student VALUES (1, 'Ann', 'cs')")
        session.execute("SELECT * FROM student WHERE sid = 1")
        metrics = obs.metrics
        assert metrics.counter_value("kds.requests") >= 2
        assert metrics.counter_value("kds.requests.insert") >= 1
        assert metrics.counter_value("kds.requests.retrieve") >= 1
        assert metrics.counter_value("wal.ops") >= 1
        assert metrics.counter_value("wal.commits") >= 1
        assert metrics.counter_value("backend.requests") >= 1
        assert metrics.get("kds.request.simulated_ms").count >= 2
        assert metrics.counter_value("prune.broadcasts") >= 1

    def test_export_is_json_serialisable(self, traced):
        mlds, obs = traced
        session = mlds.open_sql_session("registrar")
        session.execute("INSERT INTO student VALUES (1, 'Ann', 'cs')")
        payload = json.loads(json.dumps(obs.as_dict()))
        assert "metrics" in payload and "slowlog" in payload


class TestLanguageRoots:
    """Every language interface opens the lil.session root span."""

    def test_codasyl_root(self):
        obs = Observability(tracing=True)
        mlds = MLDS(backend_count=2, obs=obs)
        mlds.define_network_database(NETWORK_DDL)
        session = mlds.open_codasyl_session("plant")
        session.run("MOVE 'p1' TO pno IN part\nSTORE part")
        root = obs.last_trace
        assert root.name == "lil.session"
        assert root.attrs["language"] == "codasyl"
        assert root.find("kms.translate")

    def test_sql_root_attrs(self):
        obs = Observability(tracing=True)
        mlds = MLDS(backend_count=2, obs=obs)
        mlds.define_relational_database(RELATIONAL_DDL)
        session = mlds.open_sql_session("registrar")
        session.execute("INSERT INTO student VALUES (1, 'Ann', 'cs')")
        root = obs.last_trace
        assert root.attrs == {
            "language": "sql",
            "database": "registrar",
            "user": "user",
        }


class TestDefaultIsNull:
    def test_untraced_system_uses_shared_null_bundle(self):
        mlds = MLDS(backend_count=2)
        assert mlds.obs is NULL_OBS
        assert not mlds.obs.enabled

    def test_untraced_system_still_answers(self):
        mlds = MLDS(backend_count=2)
        mlds.define_relational_database(RELATIONAL_DDL)
        session = mlds.open_sql_session("registrar")
        session.execute("INSERT INTO student VALUES (1, 'Ann', 'cs')")
        result = session.execute("SELECT sname FROM student WHERE sid = 1")
        assert result.rows == [{"sname": "Ann"}]


class TestCli:
    def test_parser_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["--trace", "--slow-ms", "5", "--metrics-out", "m.json"]
        )
        assert args.trace and args.slow_ms == 5.0
        assert args.metrics_out == "m.json"

    def test_stats_command_dumps_metrics(self):
        obs = Observability(tracing=True)
        shell = MLDSShell(MLDS(backend_count=2, obs=obs))
        shell.handle_line(".open sql registrar")  # fails: db undefined — fine
        shell.mlds.define_relational_database(RELATIONAL_DDL)
        shell.handle_line(".open sql registrar")
        shell.handle_line("INSERT INTO student VALUES (1, 'Ann', 'cs')")
        payload = json.loads(shell.handle_line(".stats"))
        assert payload["kds.requests"]["value"] >= 1

    def test_trace_command_renders_tree(self):
        obs = Observability(tracing=True)
        shell = MLDSShell(MLDS(backend_count=2, obs=obs))
        shell.mlds.define_relational_database(RELATIONAL_DDL)
        shell.handle_line(".open sql registrar")
        shell.handle_line("INSERT INTO student VALUES (1, 'Ann', 'cs')")
        output = shell.handle_line(".trace")
        assert output.startswith("lil.session")
        assert "kds.execute" in output

    def test_trace_command_off_by_default(self):
        shell = MLDSShell(MLDS(backend_count=2))
        assert "tracing is off" in shell.handle_line(".trace")

    def test_slow_command(self):
        obs = Observability(slow_ms=0.0)
        shell = MLDSShell(MLDS(backend_count=2, obs=obs))
        shell.mlds.define_relational_database(RELATIONAL_DDL)
        shell.handle_line(".open sql registrar")
        shell.handle_line("INSERT INTO student VALUES (1, 'Ann', 'cs')")
        output = shell.handle_line(".slow")
        assert "lil.session" in output

    def test_slow_command_off_by_default(self):
        shell = MLDSShell(MLDS(backend_count=2))
        assert "slow logging is off" in shell.handle_line(".slow")


class TestObsSurvivesSwaps:
    def test_recovered_system_keeps_tracing(self, tmp_path):
        from repro.wal.recovery import recover_mlds

        obs = Observability(tracing=True)
        mlds = MLDS(backend_count=2, wal=tmp_path / "wal", obs=obs)
        mlds.define_relational_database(RELATIONAL_DDL)
        session = mlds.open_sql_session("registrar")
        session.execute("INSERT INTO student VALUES (1, 'Ann', 'cs')")
        mlds.kds.shutdown()

        recovered = recover_mlds(tmp_path / "wal", obs=obs)
        assert recovered.obs is obs
        assert recovered.kds.wal.obs is obs  # attach_wal re-bound the bundle
        recovered.kds.shutdown()
