"""The metrics registry: counters, gauges, fixed-bucket histograms."""

import pytest

from repro.obs import (
    Counter,
    DEFAULT_BUCKETS_MS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2


class TestHistogram:
    def test_default_buckets_are_fixed_and_sorted(self):
        histogram = Histogram("h")
        assert histogram.boundaries == DEFAULT_BUCKETS_MS
        assert tuple(sorted(DEFAULT_BUCKETS_MS)) == DEFAULT_BUCKETS_MS

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(2.0, 1.0))

    def test_bucketing_and_summary(self):
        histogram = Histogram("h", boundaries=(1.0, 10.0))
        for value in (0.5, 5.0, 5.0, 100.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [1, 2, 1]  # <=1, <=10, +Inf
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(110.5)
        assert histogram.max == 100.0
        assert histogram.mean == pytest.approx(110.5 / 4)

    def test_quantiles_report_bucket_bounds(self):
        histogram = Histogram("h", boundaries=(1.0, 10.0))
        for value in (0.5, 5.0, 5.0, 5.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 10.0
        assert histogram.quantile(0.0) == 1.0
        # The overflow bucket reports the observed maximum.
        histogram.observe(50.0)
        assert histogram.quantile(1.0) == 50.0

    def test_quantile_edge_cases(self):
        histogram = Histogram("h")
        assert histogram.quantile(0.5) == 0.0  # empty
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_as_dict_schema(self):
        histogram = Histogram("h")
        histogram.observe(3.0)
        payload = histogram.as_dict()
        assert payload["type"] == "histogram"
        assert payload["count"] == 1
        assert payload["boundaries_ms"] == list(DEFAULT_BUCKETS_MS)
        assert len(payload["bucket_counts"]) == len(DEFAULT_BUCKETS_MS) + 1
        assert set(payload) >= {"sum", "max", "mean", "p50", "p99"}


class TestRegistry:
    def test_instruments_create_on_first_use(self):
        registry = MetricsRegistry()
        registry.inc("requests")
        registry.inc("requests", 2)
        registry.set_gauge("resident", 10)
        registry.observe("latency_ms", 5.0)
        assert registry.counter_value("requests") == 3
        assert registry.counter_value("resident") == 10
        assert registry.get("latency_ms").count == 1
        assert registry.names() == ["latency_ms", "requests", "resident"]

    def test_missing_names(self):
        registry = MetricsRegistry()
        assert registry.get("nope") is None
        assert registry.counter_value("nope") == 0.0

    def test_as_dict_is_name_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.observe("b", 1.0)
        registry.inc("a")
        payload = registry.as_dict()
        assert list(payload) == ["a", "b"]
        assert payload["a"]["type"] == "counter"
        assert payload["b"]["type"] == "histogram"

    def test_clear(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.clear()
        assert registry.names() == []

    def test_thread_safety_of_inc(self):
        import threading

        registry = MetricsRegistry()

        def spin():
            for _ in range(1000):
                registry.inc("n")

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("n") == 4000


class TestNullMetrics:
    def test_inert(self):
        NULL_METRICS.inc("a")
        NULL_METRICS.set_gauge("b", 1)
        NULL_METRICS.observe("c", 2.0)
        assert NULL_METRICS.as_dict() == {}
        assert NULL_METRICS.names() == []
        assert NULL_METRICS.counter_value("a") == 0.0
        assert NULL_METRICS.get("a") is None
