"""Model-based testing: random CODASYL-DML walks vs a reference model.

A hypothesis state machine drives a native network database (the simplest
target: every membership is a member-side keyword) with random STORE /
CONNECT / DISCONNECT / MODIFY / ERASE operations, mirroring each step in
a plain-Python reference model, and checks after every step that both
agree on the set memberships and field values — the run-unit semantics
cannot silently diverge from the data.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro import MLDS
from repro.errors import MLDSError

SCHEMA = """
SCHEMA NAME IS firm;
RECORD NAME IS department;
    dname TYPE IS CHARACTER 20;
RECORD NAME IS worker;
    wname TYPE IS CHARACTER 20;
    salary TYPE IS INTEGER;
SET NAME IS staff;
    OWNER IS department;
    MEMBER IS worker;
    INSERTION IS MANUAL;
    RETENTION IS OPTIONAL;
    SET SELECTION IS BY APPLICATION;
"""


class CodasylMachine(RuleBasedStateMachine):
    """Random walks over one network database plus a dict-based oracle."""

    departments = Bundle("departments")
    workers = Bundle("workers")

    def __init__(self) -> None:
        super().__init__()
        self.mlds = MLDS(backend_count=3)
        self.mlds.define_network_database(SCHEMA)
        self.session = self.mlds.open_codasyl_session("firm")
        self.counter = 0
        #: oracle: dbkey -> {"salary": int, "staff": owner dbkey | None}
        self.model_workers: dict[str, dict] = {}
        self.model_departments: dict[str, str] = {}  # dbkey -> dname

    # -- operations --------------------------------------------------------------

    @rule(target=departments)
    def store_department(self):
        self.counter += 1
        name = f"dept{self.counter}"
        self.session.execute(f"MOVE '{name}' TO dname IN department")
        result = self.session.execute("STORE department")
        assert result.ok
        self.model_departments[result.dbkey] = name
        return result.dbkey

    @rule(target=workers, salary=st.integers(1, 9))
    def store_worker(self, salary):
        self.counter += 1
        name = f"w{self.counter}"
        self.session.execute(f"MOVE '{name}' TO wname IN worker")
        self.session.execute(f"MOVE {salary} TO salary IN worker")
        result = self.session.execute("STORE worker")
        assert result.ok
        self.model_workers[result.dbkey] = {
            "wname": name,
            "salary": salary,
            "staff": None,
        }
        return result.dbkey

    def _find_worker(self, worker):
        self.session.execute(
            f"MOVE '{self.model_workers[worker]['wname']}' TO wname IN worker"
        )
        found = self.session.execute("FIND ANY worker USING wname IN worker")
        assert found.ok and found.dbkey == worker
        return found

    def _find_department(self, dept):
        self.session.execute(
            f"MOVE '{self.model_departments[dept]}' TO dname IN department"
        )
        found = self.session.execute("FIND ANY department USING dname IN department")
        assert found.ok and found.dbkey == dept
        return found

    @rule(worker=workers, dept=departments)
    def connect(self, worker, dept):
        if worker not in self.model_workers or dept not in self.model_departments:
            return
        state = self.model_workers[worker]
        self._find_department(dept)
        self._find_worker(worker)
        if state["staff"] is not None:
            # A member of one occurrence must be DISCONNECTed first.
            with pytest.raises(MLDSError):
                self.session.execute("CONNECT worker TO staff")
            return
        # Finding the (disconnected) worker leaves the department's staff
        # occurrence current; CONNECT joins that occurrence.
        self.session.execute("CONNECT worker TO staff")
        state["staff"] = dept

    @rule(worker=workers)
    def disconnect(self, worker):
        if worker not in self.model_workers:
            return
        state = self.model_workers[worker]
        if state["staff"] is None:
            return  # never connected: the currency machinery would refuse
        self._find_department(state["staff"])
        self._find_worker(worker)
        self.session.execute("DISCONNECT worker FROM staff")
        state["staff"] = None

    @rule(worker=workers, salary=st.integers(10, 99))
    def modify_salary(self, worker, salary):
        if worker not in self.model_workers:
            return
        self._find_worker(worker)
        self.session.execute(f"MOVE {salary} TO salary IN worker")
        self.session.execute("MODIFY salary IN worker")
        self.model_workers[worker]["salary"] = salary

    @rule(worker=workers)
    def erase_worker(self, worker):
        if worker not in self.model_workers:
            return
        self._find_worker(worker)
        self.session.execute("ERASE worker")
        del self.model_workers[worker]

    @rule(dept=departments)
    def erase_department(self, dept):
        if dept not in self.model_departments:
            return
        self._find_department(dept)
        members = [
            w for w, s in self.model_workers.items() if s["staff"] == dept
        ]
        if members:
            with pytest.raises(MLDSError):
                self.session.execute("ERASE department")
        else:
            self.session.execute("ERASE department")
            del self.model_departments[dept]

    # -- invariants ---------------------------------------------------------------

    @invariant()
    def workers_agree(self):
        for worker, state in self.model_workers.items():
            found = self._find_worker(worker)
            assert found.values["salary"] == state["salary"]
            if state["staff"] is not None:
                # Finding a connected member makes its occurrence current;
                # a disconnected member leaves the set currency untouched
                # (CODASYL: currency only follows records *in* the set).
                assert (
                    self.session.cit.set_currency("staff").owner_dbkey
                    == state["staff"]
                )

    @invariant()
    def set_occurrences_agree(self):
        for dept in self.model_departments:
            expected = {
                w for w, s in self.model_workers.items() if s["staff"] == dept
            }
            self._find_department(dept)
            got = set()
            result = self.session.execute("FIND FIRST worker WITHIN staff")
            while result.ok:
                got.add(result.dbkey)
                result = self.session.execute("FIND NEXT worker WITHIN staff")
            assert got == expected


CodasylMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
TestCodasylStateMachine = CodasylMachine.TestCase
