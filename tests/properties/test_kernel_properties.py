"""Property-based tests over the kernel: values, queries, stores, MBDS.

The central invariants:

* value render/parse is a bijection on the kernel domain;
* query evaluation agrees with a naive reference evaluator;
* an N-backend MBDS is observationally equivalent to a single store for
  any request sequence (partitioning must never change answers).
"""

from hypothesis import given, settings, strategies as st

from repro.abdl import Executor, InsertRequest, RetrieveRequest
from repro.abdm import (
    ABStore,
    Conjunction,
    Predicate,
    Query,
    Record,
    parse_literal,
    render,
)
from repro.mbds import KernelDatabaseSystem

# -- strategies -----------------------------------------------------------------

kernel_values = st.one_of(
    st.none(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\n"),
        max_size=20,
    ),
)

attribute_names = st.sampled_from(["alpha", "beta", "gamma", "delta"])

operators = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def records(draw):
    file_name = draw(st.sampled_from(["f1", "f2"]))
    pairs = [("FILE", file_name)]
    for attribute in draw(st.sets(attribute_names, max_size=4)):
        pairs.append((attribute, draw(kernel_values)))
    return Record.from_pairs(pairs)


@st.composite
def queries(draw):
    clauses = []
    for _ in range(draw(st.integers(1, 3))):
        predicates = [
            Predicate(draw(attribute_names), draw(operators), draw(kernel_values))
            for _ in range(draw(st.integers(1, 3)))
        ]
        clauses.append(Conjunction(predicates))
    return Query(clauses)


# -- value round-trip ---------------------------------------------------------------


class TestValueRoundtrip:
    @given(kernel_values)
    def test_render_parse_identity(self, value):
        assert parse_literal(render(value)) == value


# -- query evaluation ------------------------------------------------------------------


def naive_matches(query, record):
    from repro.abdm.values import compare

    def predicate_holds(p):
        if p.attribute not in record:
            return False
        return compare(record.get(p.attribute), p.value, p.operator)

    return any(all(predicate_holds(p) for p in clause) for clause in query)


class TestQuerySemantics:
    @given(queries(), records())
    def test_matches_agrees_with_reference(self, query, record):
        assert query.matches(record) == naive_matches(query, record)

    @given(queries(), records())
    def test_disjunction_monotone(self, query, record):
        widened = Query(list(query.clauses) + [Conjunction([])])
        assert widened.matches(record)  # empty clause matches everything

    @given(queries())
    def test_render_parses_back_when_flat(self, query):
        from repro.abdl import parse_query

        # Only string/int/float/null values render into parseable literals;
        # the strategy guarantees that, so the round trip must hold.
        reparsed = parse_query(query.render())
        assert reparsed.render() == query.render()


# -- store consistency ----------------------------------------------------------------


class TestStoreConsistency:
    @given(st.lists(records(), max_size=30), queries())
    @settings(max_examples=50)
    def test_find_returns_exactly_matching(self, record_list, query):
        store = ABStore()
        for record in record_list:
            store.insert(record.copy())
        found = store.find(query)
        assert len(found) == sum(1 for r in record_list if query.matches(r))

    @given(st.lists(records(), max_size=30), queries())
    @settings(max_examples=50)
    def test_delete_then_find_empty(self, record_list, query):
        store = ABStore()
        for record in record_list:
            store.insert(record.copy())
        total = store.count()
        deleted = store.delete(query)
        assert store.count() == total - deleted
        assert store.find(query) == []


# -- MBDS equivalence --------------------------------------------------------------------


class TestMBDSEquivalence:
    @given(
        st.lists(records(), min_size=1, max_size=25),
        queries(),
        st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_partitioned_equals_single_store(self, record_list, query, backends):
        """Partitioning across N backends never changes the answer set."""
        kds = KernelDatabaseSystem(backend_count=backends)
        reference = ABStore()
        reference_executor = Executor(reference)
        for record in record_list:
            kds.execute(InsertRequest(record))
            reference_executor.execute(InsertRequest(record))
        request = RetrieveRequest(query)
        distributed = kds.execute(request).result.records
        local = reference_executor.execute(request).records
        key = lambda r: sorted((a, str(v)) for a, v in r.pairs())
        assert sorted(map(key, distributed)) == sorted(map(key, local))

    @given(st.lists(records(), min_size=1, max_size=25), st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_no_record_lost_in_partitioning(self, record_list, backends):
        kds = KernelDatabaseSystem(backend_count=backends)
        for record in record_list:
            kds.execute(InsertRequest(record))
        assert kds.record_count() == len(record_list)
