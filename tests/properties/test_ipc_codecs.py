"""Hypothesis: the framed codecs against the JSON oracle.

The worker protocol's correctness contract is *JSON parity*: for any
JSON-shaped value, decoding what the binary or tagged codec encoded must
yield exactly the object ``json.loads(json.dumps(v))`` would — with the
one deliberate improvement that floats survive bit-for-bit (NaN
payloads, ``-0.0``) where JSON's decimal detour may wobble.  Comparison
is therefore bit-aware: floats compare by IEEE-754 image, everything
else by equality *and* type (``True != 1`` on this wire).

Covers the edges the issue names: NaN, -0.0, huge ints, empty records,
deeply nested span trees — plus a stateful pass proving the tagged
codec's interning tables stay mirrored across a message sequence.
"""

from __future__ import annotations

import json
import math
import struct

from hypothesis import given, settings, strategies as st

from repro.ipc.frames import ValueDecoder, ValueEncoder
from repro.ipc.transport import PipeTransport


class _Loopback:
    """A Connection stand-in: bytes out one side, straight in the other."""

    def __init__(self) -> None:
        self._frames: list[bytes] = []

    def send_bytes(self, frame: bytes) -> None:
        self._frames.append(frame)

    def recv_bytes(self) -> bytes:
        return self._frames.pop(0)


SPECIAL_FLOATS = [
    float("nan"),
    struct.unpack("!d", bytes.fromhex("7ff8000000001234"))[0],  # NaN payload
    -0.0,
    0.0,
    float("inf"),
    float("-inf"),
    5e-324,  # smallest subnormal
]

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),  # unbounded: exercises the BIGINT path
    st.floats(allow_nan=True, allow_infinity=True),  # bit-aware compare
    st.sampled_from(SPECIAL_FLOATS),
    st.text(max_size=40),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=12), children, max_size=6),
    ),
    max_leaves=25,
)

#: Span-tree shaped values: the deepest structures the wire carries.
span_trees = st.recursive(
    st.fixed_dictionaries(
        {"name": st.text(max_size=10), "elapsed_ms": st.floats(allow_nan=False)}
    ),
    lambda children: st.fixed_dictionaries(
        {
            "name": st.text(max_size=10),
            "children": st.lists(children, max_size=3),
        }
    ),
    max_leaves=20,
)


def bit_equal(left, right) -> bool:
    """Equality where floats compare by bits and bools are not ints."""
    if type(left) is not type(right):
        return False
    if isinstance(left, float):
        return struct.pack("!d", left) == struct.pack("!d", right)
    if isinstance(left, list):
        return len(left) == len(right) and all(
            bit_equal(a, b) for a, b in zip(left, right)
        )
    if isinstance(left, dict):
        return left.keys() == right.keys() and all(
            bit_equal(value, right[key]) for key, value in left.items()
        )
    return left == right


def json_oracle(value):
    """What the pre-framing JSON transport would deliver."""
    return json.loads(json.dumps(value))


def transport_roundtrip(value, codec: str):
    wire = _Loopback()
    PipeTransport(wire, codec).send(value)
    return PipeTransport(wire, codec).recv()


def assert_matches_oracle(value, decoded):
    """decoded == the JSON oracle, except floats may be *more* faithful."""
    oracle = json_oracle(value)

    def check(original, ours, theirs):
        if isinstance(original, float):
            # The binary codecs must be bit-exact to the ORIGINAL; JSON
            # merely has to be close (and loses NaN payloads entirely).
            assert struct.pack("!d", ours) == struct.pack("!d", original)
            if not math.isnan(original):
                assert ours == theirs or math.isinf(original)
            return
        assert type(ours) is type(theirs)
        if isinstance(original, list):
            assert len(ours) == len(theirs) == len(original)
            for triple in zip(original, ours, theirs):
                check(*triple)
        elif isinstance(original, dict):
            assert list(ours) == list(theirs) == list(original)
            for key in original:
                check(original[key], ours[key], theirs[key])
        else:
            assert ours == theirs == original

    check(value, decoded, oracle)


class TestTaggedCodecVsJson:
    @given(value=values)
    @settings(max_examples=300, deadline=None)
    def test_roundtrip_matches_oracle(self, value):
        decoded = ValueDecoder().decode(ValueEncoder().encode(value))
        assert_matches_oracle(value, decoded)

    @given(trees=st.lists(span_trees, min_size=1, max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_span_trees(self, trees):
        decoded = ValueDecoder().decode(ValueEncoder().encode(trees))
        assert_matches_oracle(trees, decoded)

    @given(messages=st.lists(values, min_size=2, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_interning_tables_stay_mirrored(self, messages):
        """One encoder/decoder pair across a whole message sequence."""
        encoder, decoder = ValueEncoder(), ValueDecoder()
        for message in messages:
            decoded = decoder.decode(encoder.encode(message))
            assert bit_equal(
                decoded, ValueDecoder().decode(ValueEncoder().encode(message))
            )
            assert_matches_oracle(message, decoded)


class TestBinaryCodecVsJson:
    @given(value=values)
    @settings(max_examples=300, deadline=None)
    def test_roundtrip_matches_oracle(self, value):
        assert_matches_oracle(value, transport_roundtrip(value, "binary"))

    @given(trees=st.lists(span_trees, min_size=1, max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_span_trees(self, trees):
        assert_matches_oracle(trees, transport_roundtrip(trees, "binary"))


class TestCodecsAgreeWithEachOther:
    @given(value=values)
    @settings(max_examples=150, deadline=None)
    def test_all_three_codecs_decode_identically(self, value):
        binary = transport_roundtrip(value, "binary")
        tagged = transport_roundtrip(value, "tagged")
        assert bit_equal(binary, tagged)

    def test_empty_records(self):
        for value in [{}, [], {"records": []}, [{}], {"": ""}]:
            assert transport_roundtrip(value, "binary") == value
            assert transport_roundtrip(value, "tagged") == value
