"""Property-based tests over the schema transformations.

Invariants of Chapter V, checked on generated functional schemas:

* every entity type maps to a record type plus a SYSTEM-owned set;
* every subtype maps to a record type plus one ISA set per supertype;
* every entity-valued function contributes exactly one set (or one link
  side), named after itself;
* the one-step and two-step strategies produce identical schemas;
* build_records / collapse round-trips instance values.
"""

from hypothesis import given, settings, strategies as st

from repro.functional.model import (
    EntitySubtype,
    EntityType,
    Function,
    FunctionalSchema,
    ScalarKind,
    ScalarType,
)
from repro.mapping import (
    ABFunctionalMapping,
    SetKind,
    transform_schema,
    transform_schema_two_step,
)

_SCALARS = [
    ScalarType(ScalarKind.INTEGER),
    ScalarType(ScalarKind.FLOAT),
    ScalarType(ScalarKind.STRING, length=10),
    ScalarType(ScalarKind.ENUMERATION, values=("on", "off")),
]


@st.composite
def functional_schemas(draw):
    """Generate a small valid functional schema.

    Entity names are e0..eN; each later type may subtype an earlier one;
    functions (names unique schema-wide to respect the set-name rule) are
    scalar, scalar multi-valued, single- or multi-valued entity functions
    whose range is any declared type.
    """
    schema = FunctionalSchema("gen")
    count = draw(st.integers(2, 5))
    names = [f"e{i}" for i in range(count)]
    fn_counter = 0
    for index, name in enumerate(names):
        functions = []
        for _ in range(draw(st.integers(0, 3))):
            fn_name = f"f{fn_counter}"
            fn_counter += 1
            choice = draw(st.integers(0, 3))
            if choice == 0:
                functions.append(Function(fn_name, draw(st.sampled_from(_SCALARS))))
            elif choice == 1:
                functions.append(
                    Function(fn_name, draw(st.sampled_from(_SCALARS)), set_valued=True)
                )
            elif choice == 2:
                functions.append(Function(fn_name, draw(st.sampled_from(names))))
            else:
                functions.append(
                    Function(fn_name, draw(st.sampled_from(names)), set_valued=True)
                )
        if index > 0 and draw(st.booleans()):
            supertype = draw(st.sampled_from(names[:index]))
            schema.add_subtype(EntitySubtype(name, [supertype], functions))
        else:
            schema.add_entity_type(EntityType(name, functions))
    return schema.validate()


class TestTransformInvariants:
    @given(functional_schemas())
    @settings(max_examples=60, deadline=None)
    def test_every_type_becomes_a_record(self, schema):
        t = transform_schema(schema)
        for name in schema.type_names():
            assert t.schema.has_record(name)

    @given(functional_schemas())
    @settings(max_examples=60, deadline=None)
    def test_entity_types_get_system_sets(self, schema):
        t = transform_schema(schema)
        for name in schema.entity_types:
            origin = t.origin(f"system_{name}")
            assert origin.kind is SetKind.SYSTEM

    @given(functional_schemas())
    @settings(max_examples=60, deadline=None)
    def test_subtypes_get_isa_sets(self, schema):
        t = transform_schema(schema)
        for subtype in schema.subtypes.values():
            for supertype in subtype.supertypes:
                set_def = t.schema.set_type(f"{supertype}_{subtype.name}")
                assert set_def.owner_name == supertype
                assert set_def.member_name == subtype.name

    @given(functional_schemas())
    @settings(max_examples=60, deadline=None)
    def test_every_entity_function_owns_one_set(self, schema):
        t = transform_schema(schema)
        for type_name in schema.type_names():
            for function in schema.functions_of(type_name):
                if function.is_entity_valued:
                    origin = t.origin(function.name)
                    assert origin.function_name == function.name

    @given(functional_schemas())
    @settings(max_examples=60, deadline=None)
    def test_link_records_pair_two_sets(self, schema):
        t = transform_schema(schema)
        for link in t.links.values():
            first = t.origin(link.first_set)
            second = t.origin(link.second_set)
            assert first.partner_set == link.second_set
            assert second.partner_set == link.first_set
            assert t.schema.set_type(link.first_set).member_name == link.name
            assert t.schema.set_type(link.second_set).member_name == link.name

    @given(functional_schemas())
    @settings(max_examples=60, deadline=None)
    def test_scalar_functions_become_attributes(self, schema):
        t = transform_schema(schema)
        for type_name in schema.type_names():
            record = t.schema.record(type_name)
            for function in schema.functions_of(type_name):
                if function.is_entity_valued:
                    assert record.attribute(function.name) is None
                else:
                    attribute = record.attribute(function.name)
                    assert attribute is not None
                    assert attribute.duplicates_allowed != function.set_valued

    @given(functional_schemas())
    @settings(max_examples=40, deadline=None)
    def test_two_step_strategy_equivalent(self, schema):
        direct = transform_schema(schema)
        two_step = transform_schema_two_step(schema)
        assert two_step.schema.render() == direct.schema.render()
        assert set(two_step.set_origins) == set(direct.set_origins)


class TestBuildCollapseRoundtrip:
    @given(
        st.lists(st.integers(-100, 100), max_size=4),
        st.text(alphabet="abcdefg", min_size=1, max_size=8),
    )
    @settings(max_examples=60)
    def test_roundtrip(self, phone_list, name):
        schema = FunctionalSchema("rt")
        schema.add_entity_type(
            EntityType(
                "p",
                [
                    Function("name", ScalarType(ScalarKind.STRING, length=20)),
                    Function("phones", ScalarType(ScalarKind.INTEGER), set_valued=True),
                ],
            )
        )
        schema.validate()
        mapping = ABFunctionalMapping(schema)
        unique_phones = list(dict.fromkeys(phone_list))
        records = mapping.build_records(
            "p", "p$1", {"name": name, "phones": unique_phones}
        )
        assert len(records) == max(1, len(unique_phones))
        collapsed = mapping.collapse("p", records)
        assert collapsed["name"] == name
        assert collapsed["phones"] == unique_phones
        assert collapsed["p"] == "p$1"
