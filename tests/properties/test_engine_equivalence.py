"""Property: engine choice never changes behavior, to the bit.

Randomized mixed workloads — interleaved INSERT / RETRIEVE / UPDATE /
DELETE over two files, so mutations land mid-run between reads — must
produce bit-identical ``BackendResult``s (records, ScanStats counters,
simulated ``ResponseTime``) and the same final farm state under
SerialEngine, ThreadPoolEngine, and ProcessPoolEngine.

Process workers are real forked processes, so the example budget is kept
modest; the determinism burden is carried by comparing *complete*
fingerprints per request, not by running many examples.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.abdl import parse_request
from repro.mbds import KernelDatabaseSystem
from repro.obs import Observability
from repro.qc import runtime as qc_runtime

FILES = ("alpha", "beta")


@st.composite
def workloads(draw):
    """An interleaved request script over two files."""
    script: list[str] = []
    serial = 0
    for _ in range(draw(st.integers(6, 14))):
        kind = draw(
            st.sampled_from(
                ["insert", "insert", "insert", "retrieve", "update", "delete"]
            )
        )
        file_name = draw(st.sampled_from(FILES))
        value = draw(st.integers(0, 5))
        if kind == "insert":
            script.append(
                f"INSERT (<FILE, {file_name}>, <{file_name}, r${serial}>, "
                f"<x, {value}>)"
            )
            serial += 1
        elif kind == "retrieve":
            operator = draw(st.sampled_from(["=", ">=", "<"]))
            script.append(
                f"RETRIEVE ((FILE = {file_name}) AND (x {operator} {value})) (*)"
            )
        elif kind == "update":
            script.append(
                f"UPDATE ((FILE = {file_name}) AND (x = {value})) (x = x + 1)"
            )
        else:
            script.append(f"DELETE ((FILE = {file_name}) AND (x = {value}))")
    script.append("RETRIEVE ((FILE = alpha) OR (FILE = beta)) (*)")
    return script


def fingerprint(trace):
    result = trace.result
    return (
        result.operation,
        result.count,
        [r.pairs() for r in result.records],
        trace.response.total_ms,
        trace.response.backend_ms,
        trace.response.controller_ms,
        tuple(trace.per_backend_ms),
    )


def run(script, engine, workers=None):
    # The metrics registry is the per-engine ledger of ScanStats
    # (backend.records_examined / index_hits) and every cache counter;
    # comparing it whole pins those alongside the per-request results.
    # The process-global parse caches must start cold each run, or the
    # first engine warms them for the others.
    qc_runtime.reset()
    obs = Observability()
    kds = KernelDatabaseSystem(
        backend_count=2, engine=engine, workers=workers, obs=obs
    )
    try:
        fingerprints = [
            fingerprint(kds.execute(parse_request(text))) for text in script
        ]
        return {
            "fingerprints": fingerprints,
            "distribution": kds.controller.distribution(),
            "clock": kds.clock.as_dict(),
            "stores": [b.store.snapshot() for b in kds.controller.backends],
            # Histograms track *wall* milliseconds (non-deterministic);
            # counters/gauges are the deterministic half of the registry.
            "metrics": {
                name: payload
                for name, payload in obs.metrics.as_dict().items()
                if payload.get("type") in ("counter", "gauge")
            },
        }
    finally:
        kds.shutdown()


@settings(max_examples=10, deadline=None)
@given(workloads())
def test_three_engines_bit_identical(script):
    serial = run(script, "serial")
    assert run(script, "threads", workers=2) == serial
    assert run(script, "process", workers=2) == serial
