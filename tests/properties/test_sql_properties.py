"""Property-based tests of the SQL engine against a reference evaluator.

Random tuples go through INSERT; random WHERE clauses through SELECT;
the answers must equal a plain-Python filter over the same tuples, and a
random equi-join must equal the nested-loop reference join.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro import MLDS
from repro.abdm.values import compare

DDL = """
DATABASE props;
CREATE TABLE t (a INT, b INT, tag CHAR(8));
CREATE TABLE u (a INT, label CHAR(8));
"""

rows_t = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5), st.sampled_from(["x", "y", "z"])),
    max_size=12,
)
rows_u = st.lists(
    st.tuples(st.integers(0, 5), st.sampled_from(["p", "q"])),
    max_size=8,
)
operators = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


def build(t_rows, u_rows):
    mlds = MLDS(backend_count=3)
    mlds.define_relational_database(DDL)
    session = mlds.open_sql_session("props")
    for a, b, tag in t_rows:
        session.execute(f"INSERT INTO t VALUES ({a}, {b}, '{tag}')")
    for a, label in u_rows:
        session.execute(f"INSERT INTO u VALUES ({a}, '{label}')")
    return session


def ref_compare(left, op, right):
    return compare(left, right, "!=" if op == "<>" else op)


class TestSelectEquivalence:
    @given(rows_t, st.integers(0, 5), operators)
    @settings(max_examples=40, deadline=None)
    def test_where_matches_reference_filter(self, t_rows, pivot, op):
        session = build(t_rows, [])
        result = session.execute(f"SELECT a, b FROM t WHERE a {op} {pivot}")
        expected = sorted(
            (a, b) for a, b, _ in t_rows if ref_compare(a, op, pivot)
        )
        assert sorted((r["a"], r["b"]) for r in result.rows) == expected

    @given(rows_t, st.integers(0, 5), st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_dnf_where(self, t_rows, p, q):
        session = build(t_rows, [])
        result = session.execute(
            f"SELECT tag FROM t WHERE a = {p} AND b = {q} OR a > {q}"
        )
        expected = sorted(
            tag for a, b, tag in t_rows if (a == p and b == q) or a > q
        )
        assert sorted(r["tag"] for r in result.rows) == expected

    @given(rows_t)
    @settings(max_examples=30, deadline=None)
    def test_grouped_count_matches_reference(self, t_rows):
        session = build(t_rows, [])
        result = session.execute("SELECT a, COUNT(*) FROM t GROUP BY a")
        expected = {}
        for a, _, _ in t_rows:
            expected[a] = expected.get(a, 0) + 1
        assert {r["a"]: r["COUNT(*)"] for r in result.rows} == expected


class TestJoinEquivalence:
    @given(rows_t, rows_u)
    @settings(max_examples=30, deadline=None)
    def test_equi_join_matches_nested_loop(self, t_rows, u_rows):
        session = build(t_rows, u_rows)
        result = session.execute(
            "SELECT tag, label FROM t, u WHERE t.a = u.a"
        )
        expected = sorted(
            (tag, label)
            for (a1, _, tag), (a2, label) in itertools.product(t_rows, u_rows)
            if a1 == a2
        )
        assert sorted((r["tag"], r["label"]) for r in result.rows) == expected
