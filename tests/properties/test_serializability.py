"""Serializability of concurrent kernel sessions, proven by replay.

Strict two-phase locking makes every concurrent history
conflict-equivalent to the order in which transactions committed — and
the kernel stamps that order (``commit_seq``) while each committer still
holds its locks.  So the proof obligation is mechanical: run N threads
of randomized mixed workloads against one kernel, then replay just the
committed mutations, in commit order, into a fresh single-threaded twin.
The two farms must match bit for bit (per backend, because placement is
deterministic given the serial order).  A WAL variant closes the loop
through recovery: the log's committed transactions, replayed in master
log order, rebuild the same farm.

Runs under both the in-process serial engine and the worker-process
engine — the latter exercises the IPC layer's concurrent dispatch.
"""

from __future__ import annotations

import random
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.abdl.ast import Modifier
from repro.errors import LockTimeout, MLDSError
from repro.mbds import KernelDatabaseSystem
from repro.abdl import parse_request

from tests.wal.conftest import delete, insert, update

FILES = ["alpha", "beta", "gamma"]
ENGINES = [("serial", None), ("process", 2)]


def image(kds):
    return [
        sorted((tuple(r.pairs()), r.text) for r in backend.store.all_records())
        for backend in kds.controller.backends
    ]


def build_op(kind: str, file_name: str, value: int):
    """One workload operation; *value* is unique per (session, step)."""
    if kind == "insert":
        return insert(file_name, a=value, tag=value % 7)
    if kind == "update":
        return update(
            Modifier("tag", arithmetic="+", operand=1),
            ("FILE", "=", file_name),
            ("tag", "<=", 3),
        )
    if kind == "delete":
        return delete(("FILE", "=", file_name), ("tag", "=", 6))
    return parse_request(f"RETRIEVE (FILE = {file_name}) (*)")


def random_ops(seed: int, steps: int):
    rng = random.Random(seed)
    ops = []
    for step in range(steps):
        kind = rng.choices(
            ["insert", "update", "delete", "retrieve"],
            weights=[5, 2, 1, 3],
        )[0]
        ops.append((kind, rng.choice(FILES), seed * 10_000 + step))
    return ops


def replay_twin(backend_count: int, committed) -> KernelDatabaseSystem:
    """A fresh kernel fed the committed mutations in commit order."""
    twin = KernelDatabaseSystem(backend_count=backend_count)
    for _, requests in sorted(committed, key=lambda item: item[0]):
        for request in requests:
            twin.execute(request)
    return twin


def run_concurrently(kds, workers):
    """Run thread-per-session workers; return [(commit_seq, [mutations])]."""
    committed: list = []
    failures: list = []
    lock = threading.Lock()
    barrier = threading.Barrier(len(workers))

    def runner(worker):
        try:
            barrier.wait(timeout=10)
            for seq, requests in worker():
                with lock:
                    committed.append((seq, requests))
        except Exception as exc:  # pragma: no cover - failure detail
            failures.append(exc)

    threads = [threading.Thread(target=runner, args=(w,)) for w in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not failures, failures
    return committed


def autocommit_worker(kds, seed, steps=12):
    """Single-request transactions: every mutation commits on its own."""

    def work():
        session = kds.create_session()
        out = []
        for kind, file_name, value in random_ops(seed, steps):
            request = build_op(kind, file_name, value)
            trace = kds.execute(request, session=session)
            if trace.commit_seq is not None:
                out.append((trace.commit_seq, [request]))
        return out

    return work


def transaction_worker(kds, seed, steps=4, per_txn=3):
    """Multi-request transactions with LockTimeout-abort-retry."""

    def work():
        session = kds.create_session()
        session.lock_timeout = 0.2
        rng = random.Random(seed)
        out = []
        for txn_index in range(steps):
            ops = [
                op
                for op in random_ops(seed * 100 + txn_index, per_txn)
                if op[0] != "retrieve"
            ] or [("insert", rng.choice(FILES), seed * 100 + txn_index)]
            requests = [build_op(*op) for op in ops]
            for attempt in range(60):
                try:
                    kds.session_begin(session)
                    for request in requests:
                        kds.execute(request, session=session)
                    seq = kds.session_commit(session)
                    out.append((seq, requests))
                    break
                except LockTimeout:
                    if session.in_transaction:  # timed out mid-transaction
                        kds.session_abort(session)
                    # Jittered backoff: without it, colliding transactions
                    # retry in lockstep and can livelock indefinitely.
                    time.sleep(rng.random() * 0.01 * (attempt + 1))
                except MLDSError:
                    if session.in_transaction:
                        kds.session_abort(session)
                    raise
            else:  # pragma: no cover - starvation would be a bug
                raise AssertionError("transaction starved after 60 tries")
        return out

    return work


@pytest.mark.parametrize("engine,workers", ENGINES, ids=[e for e, _ in ENGINES])
def test_autocommit_sessions_serialize_to_commit_order(engine, workers):
    kds = KernelDatabaseSystem(backend_count=3, engine=engine, workers=workers)
    try:
        committed = run_concurrently(
            kds, [autocommit_worker(kds, seed) for seed in range(1, 6)]
        )
        seqs = [seq for seq, _ in committed]
        assert len(seqs) == len(set(seqs)), "commit seqs must be unique"
        twin = replay_twin(3, committed)
        assert image(kds) == image(twin)
    finally:
        kds.shutdown()


@pytest.mark.parametrize("engine,workers", ENGINES, ids=[e for e, _ in ENGINES])
def test_multi_request_transactions_serialize_to_commit_order(engine, workers):
    kds = KernelDatabaseSystem(backend_count=3, engine=engine, workers=workers)
    try:
        committed = run_concurrently(
            kds, [transaction_worker(kds, seed) for seed in range(1, 6)]
        )
        twin = replay_twin(3, committed)
        assert image(kds) == image(twin)
    finally:
        kds.shutdown()


def test_wal_recovery_matches_live_concurrent_farm(tmp_path):
    from repro.core.mlds import MLDS
    from repro.wal.recovery import recover_mlds

    wal_dir = tmp_path / "wal"
    mlds = MLDS(backend_count=3, wal=wal_dir)
    kds = mlds.kds
    try:
        run_concurrently(
            kds,
            [autocommit_worker(kds, 1), autocommit_worker(kds, 2)]
            + [transaction_worker(kds, seed) for seed in (3, 4)],
        )
        live = image(kds)
    finally:
        kds.shutdown()

    recovered = recover_mlds(wal_dir, attach_wal=False)
    try:
        assert image(recovered.kds) == live
    finally:
        recovered.kds.shutdown()


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seeds=st.lists(st.integers(1, 10_000), min_size=4, max_size=5, unique=True))
def test_any_seeded_interleaving_serializes(seeds):
    kds = KernelDatabaseSystem(backend_count=3)
    try:
        committed = run_concurrently(
            kds, [autocommit_worker(kds, seed, steps=8) for seed in seeds]
        )
        twin = replay_twin(3, committed)
        assert image(kds) == image(twin)
    finally:
        kds.shutdown()


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seeds=st.lists(st.integers(1, 10_000), min_size=4, max_size=4, unique=True))
def test_any_seeded_transaction_mix_serializes(seeds):
    kds = KernelDatabaseSystem(backend_count=3)
    try:
        committed = run_concurrently(
            kds,
            [transaction_worker(kds, seed, steps=3) for seed in seeds],
        )
        twin = replay_twin(3, committed)
        assert image(kds) == image(twin)
    finally:
        kds.shutdown()
