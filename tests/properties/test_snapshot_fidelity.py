"""Property: every snapshot read equals a serial committed-prefix replay.

Hypothesis drives randomized interleavings of overlapping write
transactions (each session owns one file, so open transactions never
block each other at the file-lock granularity) punctuated by snapshot
reads from a session that never writes.  The MVCC contract under test:
a read that pinned ``snapshot_seq = W`` must return **exactly** the
records produced by replaying the committed transactions with seq <= W,
in commit order, on a fresh serial kernel — nothing from uncommitted or
later transactions, nothing missing.

The same script runs on the serial and the process engine: reconstruction
must survive the IPC hop (version chains live in the worker processes).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.abdl import parse_request
from repro.mbds import KernelDatabaseSystem

SESSION_FILES = ("fa", "fb", "fc")
AUTO_FILE = "auto"
READ_QUERY = (
    "RETRIEVE ((FILE = fa) OR (FILE = fb) OR (FILE = fc) OR (FILE = auto)) (*)"
)


@st.composite
def scripts(draw):
    """An action list: begin/write/commit per session, reads, autocommits.

    Writes only happen inside an open transaction and each session
    writes only its own file, so the single-threaded driver can never
    self-deadlock; interleaving comes from which sessions are open at
    once and the order their commits land.
    """
    sessions = draw(st.integers(2, 3))
    actions = []
    open_sessions: set[int] = set()
    serial = 0
    for _ in range(draw(st.integers(8, 18))):
        kind = draw(st.sampled_from(["begin", "write", "commit", "read", "auto"]))
        if kind == "begin":
            closed = sorted(set(range(sessions)) - open_sessions)
            if not closed:
                continue
            chosen = draw(st.sampled_from(closed))
            open_sessions.add(chosen)
            actions.append(("begin", chosen))
        elif kind in ("write", "commit"):
            if not open_sessions:
                continue
            chosen = draw(st.sampled_from(sorted(open_sessions)))
            if kind == "write":
                value = draw(st.integers(0, 5))
                actions.append(("write", chosen, serial, value))
                serial += 1
            else:
                open_sessions.discard(chosen)
                actions.append(("commit", chosen))
        elif kind == "auto":
            value = draw(st.integers(0, 5))
            actions.append(("auto", serial, value))
            serial += 1
        else:
            actions.append(("read",))
    for chosen in sorted(open_sessions):  # settle every open transaction
        actions.append(("commit", chosen))
    actions.append(("read",))
    return actions


def run_script(actions, engine, workers=None):
    """Execute *actions*; return (committed history, observed reads)."""
    kds = KernelDatabaseSystem(backend_count=2, engine=engine, workers=workers)
    try:
        sessions = {i: kds.create_session(f"s{i}") for i in range(3)}
        reader = kds.create_session("reader")
        auto = kds.create_session("auto")
        pending: dict[int, list[str]] = {}
        committed: list[tuple[int, list[str]]] = []
        reads: list[tuple[int, list]] = []
        for action in actions:
            if action[0] == "begin":
                kds.session_begin(sessions[action[1]])
                pending[action[1]] = []
            elif action[0] == "write":
                _, who, serial, value = action
                text = (
                    f"INSERT (<FILE, {SESSION_FILES[who]}>, "
                    f"<{SESSION_FILES[who]}, r${serial}>, <x, {value}>)"
                )
                kds.execute(parse_request(text), session=sessions[who])
                pending[who].append(text)
            elif action[0] == "commit":
                seq = kds.session_commit(sessions[action[1]])
                committed.append((seq, pending.pop(action[1], [])))
            elif action[0] == "auto":
                _, serial, value = action
                text = (
                    f"INSERT (<FILE, {AUTO_FILE}>, <{AUTO_FILE}, r${serial}>, "
                    f"<x, {value}>)"
                )
                trace = kds.execute(parse_request(text), session=auto)
                committed.append((trace.commit_seq, [text]))
            else:
                trace = kds.execute(parse_request(READ_QUERY), session=reader)
                assert trace.snapshot_seq is not None  # really lock-free
                reads.append((trace.snapshot_seq, fingerprint(trace)))
        return committed, reads
    finally:
        kds.shutdown()


def fingerprint(trace):
    """Order-independent record image (placement order may differ
    between a concurrent run and its commit-order replay)."""
    return sorted((tuple(r.pairs()), r.text) for r in trace.result.records)


def replay_prefix(committed, upto_seq):
    """The read image after replaying commits with seq <= *upto_seq*."""
    kds = KernelDatabaseSystem(backend_count=2)
    try:
        for seq, texts in sorted(committed):
            if seq > upto_seq:
                break
            for text in texts:
                kds.execute(parse_request(text))
        return fingerprint(kds.execute(parse_request(READ_QUERY)))
    finally:
        kds.shutdown()


def check_engine(actions, engine, workers=None):
    committed, reads = run_script(actions, engine, workers)
    seqs = [seq for seq, _ in committed]
    assert len(seqs) == len(set(seqs))  # commit seqs are unique
    for snapshot_seq, image in reads:
        assert image == replay_prefix(committed, snapshot_seq)


@settings(max_examples=12, deadline=None)
@given(scripts())
def test_snapshot_reads_equal_committed_prefix_serial(actions):
    check_engine(actions, "serial")


@settings(max_examples=5, deadline=None)
@given(scripts())
def test_snapshot_reads_equal_committed_prefix_process(actions):
    check_engine(actions, "process", workers=2)
