"""Property-based tests of the DL/I engine: random trees, exact traversal.

Random segment forests are built through ISRT and compared against a
plain-Python reference tree: the unqualified GN walk must be exactly the
reference pre-order, GNP must list exactly the reference children in
order, and DLET must remove exactly the reference subtree.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import MLDS

DDL = """
DATABASE forest;
SEGMENT a ROOT (tag CHAR(8));
SEGMENT b UNDER a (tag CHAR(8));
SEGMENT c UNDER b (tag CHAR(8));
"""


@st.composite
def tree_specs(draw):
    """A forest spec: [(a_tag, [(b_tag, [c_tag, ...]), ...]), ...]."""
    forest = []
    n_roots = draw(st.integers(1, 3))
    tag = 0
    for _ in range(n_roots):
        b_list = []
        for _ in range(draw(st.integers(0, 3))):
            c_list = [f"c{tag}-{i}" for i in range(draw(st.integers(0, 3)))]
            b_list.append((f"b{tag}", c_list))
            tag += 1
        forest.append((f"a{tag}", b_list))
        tag += 1
    return forest


def build(forest):
    mlds = MLDS(backend_count=3)
    mlds.define_hierarchical_database(DDL)
    session = mlds.open_dli_session("forest")
    for a_tag, b_list in forest:
        session.execute(f"FLD tag = '{a_tag}'")
        assert session.execute("ISRT a").ok
        for b_tag, c_list in b_list:
            session.execute(f"FLD tag = '{b_tag}'")
            assert session.execute(f"ISRT a(tag = '{a_tag}') b").ok
            for c_tag in c_list:
                session.execute(f"FLD tag = '{c_tag}'")
                assert session.execute(
                    f"ISRT a(tag = '{a_tag}') b(tag = '{b_tag}') c"
                ).ok
    return session


def reference_preorder(forest):
    order = []
    for a_tag, b_list in forest:
        order.append(("a", a_tag))
        for b_tag, c_list in b_list:
            order.append(("b", b_tag))
            order.extend(("c", c_tag) for c_tag in c_list)
    return order


class TestTraversal:
    @given(tree_specs())
    @settings(max_examples=25, deadline=None)
    def test_gn_walk_is_preorder(self, forest):
        session = build(forest)
        expected = reference_preorder(forest)
        walk = []
        result = session.execute("GU a")
        while result.ok:
            walk.append((result.segment, result.fields["tag"]))
            result = session.execute("GN")
        assert walk == expected

    @given(tree_specs())
    @settings(max_examples=25, deadline=None)
    def test_gnp_lists_children_in_order(self, forest):
        session = build(forest)
        for a_tag, b_list in forest:
            session.execute(f"GU a(tag = '{a_tag}')")
            got = []
            while True:
                result = session.execute("GNP b")
                if not result.ok:
                    break
                got.append(result.fields["tag"])
            assert got == [b_tag for b_tag, _ in b_list]

    @given(tree_specs())
    @settings(max_examples=20, deadline=None)
    def test_dlet_removes_exactly_the_subtree(self, forest):
        if not forest[0][1]:
            return  # first root has no children: nothing interesting
        session = build(forest)
        a_tag, b_list = forest[0]
        victim_b, victim_cs = b_list[0]
        session.execute(f"GU a(tag = '{a_tag}') b(tag = '{victim_b}')")
        assert session.execute("DLET").ok
        # The b subtree is gone...
        assert not session.execute(f"GU b(tag = '{victim_b}')").ok
        for c_tag in victim_cs:
            assert not session.execute(f"GU c(tag = '{c_tag}')").ok
        # ...and everything else survives.
        assert session.execute(f"GU a(tag = '{a_tag}')").ok
        for other_b, other_cs in b_list[1:]:
            assert session.execute(f"GU b(tag = '{other_b}')").ok
            for c_tag in other_cs:
                assert session.execute(f"GU c(tag = '{c_tag}')").ok
