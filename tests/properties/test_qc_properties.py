"""Property tests: compiled matchers are extensionally equal to interpreted.

Random queries over the full operator set and random records over a
value domain mixing ints, floats (incl. NaN/inf), strings, nulls and
absent attributes: for every (query, record) pair the compiled closure
must return exactly what ``Query.matches`` returns, and a full store
scan must select exactly the same records in the same order.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.abdm.predicate import Conjunction, Predicate, Query
from repro.abdm.record import Record
from repro.abdm.store import ABStore
from repro.qc.compile import compile_query

ATTRS = ("a", "b", "c", "d")
OPERATORS = ("=", "!=", "<", "<=", ">", ">=")

values = st.one_of(
    st.none(),
    st.integers(-3, 3),
    st.sampled_from([0.0, 1.5, -2.5, float("nan"), float("inf")]),
    st.sampled_from(["", "x", "y", "1", "abc"]),
)

predicates = st.builds(
    Predicate,
    st.sampled_from(ATTRS),
    st.sampled_from(OPERATORS),
    values,
)

queries = st.builds(
    Query,
    st.lists(
        st.builds(Conjunction, st.lists(predicates, max_size=3)),
        max_size=3,
    ).map(tuple),
)

records = st.dictionaries(st.sampled_from(ATTRS), values, max_size=4).map(
    lambda attrs: Record.from_pairs(attrs.items())
)


@settings(max_examples=300)
@given(queries, records)
def test_compiled_matches_agree_with_interpreted(query, record):
    assert compile_query(query).matches(record) == query.matches(record)


@settings(max_examples=100)
@given(queries, st.lists(records, max_size=8))
def test_store_scan_identical_compiled_and_interpreted(query, rows):
    store = ABStore()
    for i, record in enumerate(rows):
        copy = record.copy()
        copy.set("FILE", "f")
        copy.set("rowid", i)
        store.insert(copy)
    matcher = store.matcher(query)
    compiled_scan = [r for r in store.file("f").records() if matcher(r)]
    interpreted_scan = [r for r in store.file("f").records() if query.matches(r)]
    assert compiled_scan == interpreted_scan
