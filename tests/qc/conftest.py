"""Shared fixtures for the query-compilation/caching suite.

Every test runs against pristine qc state: the process-wide
:data:`repro.qc.runtime.config` singleton and the global parse caches
are reset before and after each test so flag flips and cache contents
never leak between tests (or into the rest of the suite).
"""

from __future__ import annotations

import pytest

from repro.qc import runtime as qc_runtime


@pytest.fixture(autouse=True)
def _pristine_qc_state():
    qc_runtime.reset()
    yield
    qc_runtime.reset()


@pytest.fixture
def config():
    return qc_runtime.config
