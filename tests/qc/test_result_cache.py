"""The epoch-guarded backend result cache.

A RETRIEVE's result may be served from cache only while the epoch
signature of the files it pins is unchanged — any insert, delete,
update, drop or rollback touching those files must force a re-scan.
Served hits must be indistinguishable from re-scans: same records, same
simulated time, same cumulative scan statistics.
"""

from __future__ import annotations

import pytest

from repro.abdl.ast import ALL_ATTRIBUTES, Modifier, RetrieveRequest
from repro.core.mlds import MLDS
from repro.obs import Observability
from repro.wal.recovery import checkpoint_mlds, recover_mlds

from tests.wal.conftest import delete, farm_image, insert, query, update


def retrieve(*predicates: tuple) -> RetrieveRequest:
    return RetrieveRequest(query(*predicates), [ALL_ATTRIBUTES])


def seed(mlds: MLDS, rows: int = 12) -> None:
    for i in range(rows):
        mlds.kds.execute(insert("alpha", n=i, parity=i % 2))
        mlds.kds.execute(insert("beta", n=i))


def result_image(trace) -> list:
    return [(tuple(r.pairs()), r.text) for r in trace.result.records]


def total_result_snapshot(mlds: MLDS) -> dict:
    snaps = [b.cache_snapshots()["result"] for b in mlds.kds.controller.backends]
    return {
        "hits": sum(s["hits"] for s in snaps),
        "misses": sum(s["misses"] for s in snaps),
    }


@pytest.fixture()
def mlds():
    system = MLDS(backend_count=2)
    seed(system)
    return system


REQ = ("FILE", "=", "alpha"), ("parity", "=", 0)


class TestHits:
    def test_repeat_retrieve_hits_and_matches(self, mlds):
        first = mlds.kds.execute(retrieve(*REQ))
        second = mlds.kds.execute(retrieve(*REQ))
        assert result_image(first) == result_image(second)
        assert total_result_snapshot(mlds)["hits"] >= 1

    def test_hit_replays_simulated_time(self, mlds):
        first = mlds.kds.execute(retrieve(*REQ))
        second = mlds.kds.execute(retrieve(*REQ))
        assert first.response.total_ms == second.response.total_ms
        assert first.response.backend_ms == second.response.backend_ms

    def test_hit_replays_scan_statistics(self):
        cached = MLDS(backend_count=2)
        uncached = MLDS(backend_count=2)
        seed(cached)
        seed(uncached)
        from repro.qc import runtime as qc_runtime

        for _ in range(3):
            cached.kds.execute(retrieve(*REQ))
        qc_runtime.config.result_cache_enabled = False
        for _ in range(3):
            uncached.kds.execute(retrieve(*REQ))
        stats = lambda m: [  # noqa: E731
            (
                b.store.stats.records_examined,
                b.store.stats.index_hits,
                b.store.stats.records_touched,
            )
            for b in m.kds.controller.backends
        ]
        assert stats(cached) == stats(uncached)

    def test_hit_returns_fresh_record_copies(self, mlds):
        first = mlds.kds.execute(retrieve(*REQ))
        first.result.records[0].set("n", 999)  # caller mangles its copy
        second = mlds.kds.execute(retrieve(*REQ))
        assert ("n", 999) not in second.result.records[0].pairs()

    def test_disabled_flag_bypasses(self, mlds, config):
        config.result_cache_enabled = False
        mlds.kds.execute(retrieve(*REQ))
        mlds.kds.execute(retrieve(*REQ))
        snap = total_result_snapshot(mlds)
        assert snap == {"hits": 0, "misses": 0}


class TestInvalidation:
    def test_insert_into_pinned_file_invalidates(self, mlds):
        before = result_image(mlds.kds.execute(retrieve(*REQ)))
        mlds.kds.execute(insert("alpha", n=100, parity=0))
        after = result_image(mlds.kds.execute(retrieve(*REQ)))
        assert len(after) == len(before) + 1

    def test_delete_invalidates(self, mlds):
        mlds.kds.execute(retrieve(*REQ))
        mlds.kds.execute(delete(("FILE", "=", "alpha"), ("n", "=", 0)))
        after = result_image(mlds.kds.execute(retrieve(*REQ)))
        assert all(dict(pairs).get("n") != 0 for pairs, _ in after)

    def test_update_invalidates(self, mlds):
        mlds.kds.execute(retrieve(*REQ))
        mlds.kds.execute(
            update(Modifier("parity", value=5), ("FILE", "=", "alpha"), ("n", "=", 2))
        )
        after = result_image(mlds.kds.execute(retrieve(*REQ)))
        assert all(dict(pairs).get("n") != 2 for pairs, _ in after)

    def test_unrelated_file_mutation_keeps_entry(self, mlds):
        mlds.kds.execute(retrieve(*REQ))
        hits_before = total_result_snapshot(mlds)["hits"]
        mlds.kds.execute(insert("beta", n=100))  # beta is not pinned by REQ
        mlds.kds.execute(retrieve(*REQ))
        assert total_result_snapshot(mlds)["hits"] > hits_before

    def test_unpinned_query_invalidated_by_any_file(self, mlds):
        everything = retrieve(("n", "<", 3))  # pins no file: scans all
        before = result_image(mlds.kds.execute(everything))
        mlds.kds.execute(insert("gamma", n=1))
        after = result_image(mlds.kds.execute(everything))
        assert len(after) == len(before) + 1

    def test_rollback_restore_invalidates(self, mlds):
        from repro.abdm.record import Record

        backend = mlds.kds.controller.backends[0]
        image = backend.capture_image()
        backend.store.insert(
            Record.from_pairs([("FILE", "alpha"), ("n", 100), ("parity", 0)])
        )
        with_row = result_image(mlds.kds.execute(retrieve(*REQ)))  # caches n=100
        assert any(dict(pairs).get("n") == 100 for pairs, _ in with_row)
        backend.restore_image(image)  # abort path: clear + reinsert
        after = result_image(mlds.kds.execute(retrieve(*REQ)))
        assert all(dict(pairs).get("n") != 100 for pairs, _ in after)


class TestEnginesAndDurability:
    @pytest.mark.parametrize("engine", ["serial", "threads"])
    def test_engines_agree_with_cache_enabled(self, engine):
        mlds = MLDS(backend_count=3, engine=engine)
        seed(mlds)
        first = mlds.kds.execute(retrieve(*REQ))
        second = mlds.kds.execute(retrieve(*REQ))
        assert result_image(first) == result_image(second)
        assert first.response.total_ms == second.response.total_ms
        mlds.kds.shutdown()

    def test_serial_and_threads_results_identical(self):
        images = {}
        for engine in ("serial", "threads"):
            mlds = MLDS(backend_count=3, engine=engine)
            seed(mlds)
            mlds.kds.execute(retrieve(*REQ))
            images[engine] = result_image(mlds.kds.execute(retrieve(*REQ)))
            mlds.kds.shutdown()
        assert images["serial"] == images["threads"]

    def test_recovery_replay_bypasses_cache(self, tmp_path):
        wal_dir = tmp_path / "wal"
        mlds = MLDS(backend_count=2, wal=wal_dir)
        seed(mlds)
        # Warm the cache, then mutate: replay must re-apply the mutations
        # against real stores, never consult (or be confused by) caches.
        mlds.kds.execute(retrieve(*REQ))
        mlds.kds.execute(insert("alpha", n=100, parity=0))
        mlds.kds.execute(delete(("FILE", "=", "beta"), ("n", "=", 3)))
        expected = farm_image(mlds)

        recovered = recover_mlds(wal_dir)
        assert farm_image(recovered) == expected
        after = result_image(recovered.kds.execute(retrieve(*REQ)))
        assert any(dict(pairs).get("n") == 100 for pairs, _ in after)

    def test_checkpoint_restore_serves_fresh_results(self, tmp_path):
        wal_dir = tmp_path / "wal"
        mlds = MLDS(backend_count=2, wal=wal_dir)
        seed(mlds)
        mlds.kds.execute(retrieve(*REQ))  # warm
        checkpoint_mlds(mlds)
        mlds.kds.execute(insert("alpha", n=100, parity=0))
        expected = farm_image(mlds)

        recovered = recover_mlds(wal_dir)
        assert farm_image(recovered) == expected
        first = result_image(recovered.kds.execute(retrieve(*REQ)))
        second = result_image(recovered.kds.execute(retrieve(*REQ)))
        assert first == second
        assert any(dict(pairs).get("n") == 100 for pairs, _ in first)


class TestObservability:
    def test_result_cache_counters_reach_metrics(self):
        mlds = MLDS(backend_count=2, obs=Observability(tracing=True))
        seed(mlds)
        mlds.kds.execute(retrieve(*REQ))
        mlds.kds.execute(retrieve(*REQ))
        metrics = mlds.obs.metrics
        assert metrics.counter_value("qc.result.misses") >= 1
        assert metrics.counter_value("qc.result.hits") >= 1

    def test_compile_span_present_in_trace(self):
        mlds = MLDS(backend_count=2, obs=Observability(tracing=True))
        seed(mlds)
        mlds.kds.execute(retrieve(*REQ))
        trace = mlds.obs.tracer.last_trace
        assert trace.find("qc.compile")

    def test_controller_cache_snapshots_shape(self, mlds):
        mlds.kds.execute(retrieve(*REQ))
        report = mlds.kds.controller.cache_snapshots()
        assert "global" in report
        assert any(k.startswith("backend[") for k in report["backends"])
        one = next(iter(report["backends"].values()))
        assert set(one) == {"compile", "result"}
