"""KMS translation caches: currency-independent statement translations only."""

from __future__ import annotations

import pytest

from repro import MLDS
from repro.university import generate_university, load_university


SQL_DDL = """
DATABASE registrar;
CREATE TABLE student (sid INT, sname CHAR(30), major CHAR(20), PRIMARY KEY (sid));
"""


@pytest.fixture()
def university():
    mlds = MLDS(backend_count=2)
    load_university(mlds, generate_university(persons=24, courses=8, seed=13))
    return mlds


class TestFindAnyAdapterCache:
    def test_find_any_query_is_shared(self, university):
        adapter = university.open_codasyl_session("university").engine.adapter
        assert adapter.caches_translations
        first = adapter.find_any_query("student")
        second = adapter.find_any_query("student")
        assert first is second
        snap = adapter.translation_cache_snapshot()
        assert snap["misses"] == 1
        assert snap["hits"] == 1

    def test_uwa_values_are_part_of_the_key(self, university):
        from repro.abdm.predicate import Predicate

        adapter = university.open_codasyl_session("university").engine.adapter
        by_name = adapter.find_any_query("person", [Predicate("name", "=", "Ann")])
        other = adapter.find_any_query("person", [Predicate("name", "=", "Bob")])
        assert by_name is not other
        assert by_name.render() != other.render()

    def test_disabled_flag_bypasses(self, university, config):
        config.translation_cache_enabled = False
        adapter = university.open_codasyl_session("university").engine.adapter
        first = adapter.find_any_query("student")
        second = adapter.find_any_query("student")
        assert first is not second
        assert first == second
        assert adapter.translation_cache_snapshot()["misses"] == 0

    def test_invalidate_drops_entries(self, university):
        adapter = university.open_codasyl_session("university").engine.adapter
        adapter.find_any_query("student")
        adapter.invalidate_translations()
        adapter.find_any_query("student")
        assert adapter.translation_cache_snapshot()["misses"] == 2

    def test_fresh_session_has_a_fresh_cache(self, university):
        # Sessions opened after a schema (re)load never see stale entries:
        # every session constructs its own adapter and cache.
        first = university.open_codasyl_session("university").engine.adapter
        first.find_any_query("student")
        second = university.open_codasyl_session("university").engine.adapter
        assert second.translation_cache_snapshot()["size"] == 0

    def test_find_any_results_identical_with_and_without_cache(self, university, config):
        session = university.open_codasyl_session("university")
        text = (
            "MOVE 'computer science' TO major IN student\n"
            "FIND ANY student USING major IN student\n"
            "GET"
        )
        cached = session.run(text)
        config.translation_cache_enabled = False
        uncached = session.run(text)
        assert [(r.status, r.dbkey, r.values) for r in cached] == [
            (r.status, r.dbkey, r.values) for r in uncached
        ]


class TestSqlPlanCache:
    def test_repeated_select_reuses_plan(self):
        mlds = MLDS(backend_count=2)
        mlds.define_relational_database(SQL_DDL)
        session = mlds.open_sql_session("registrar")
        session.run("INSERT INTO student VALUES (1, 'Ann', 'cs');")
        query = "SELECT sname FROM student WHERE major = 'cs'"
        first = session.execute(query)
        second = session.execute(query)
        assert first.rows == second.rows
        snap = session.engine.translation_cache_snapshot()
        assert snap["misses"] == 1
        assert snap["hits"] == 1

    def test_plan_reuse_does_not_leak_column_mutation(self):
        # GROUP BY inserts the group column; a cached plan must not
        # accumulate it across executions.
        mlds = MLDS(backend_count=2)
        mlds.define_relational_database(SQL_DDL)
        session = mlds.open_sql_session("registrar")
        session.run(
            "INSERT INTO student VALUES (1, 'Ann', 'cs');"
            "INSERT INTO student VALUES (2, 'Bob', 'cs');"
        )
        query = "SELECT major, COUNT(*) FROM student GROUP BY major"
        first = session.execute(query)
        second = session.execute(query)
        assert first.columns == second.columns
        assert first.rows == second.rows


class TestDaplexSplitCache:
    def test_repeated_for_each_reuses_split(self, university):
        session = university.open_daplex_session("university")
        statement = (
            "FOR EACH s IN student SUCH THAT major(s) = 'computer science' "
            "PRINT gpa(s);"
        )
        first = session.execute(statement)
        second = session.execute(statement)
        assert first.rows == second.rows
        snap = session.engine.translation_cache_snapshot()
        assert snap["hits"] >= 1

    def test_invalidate_translations(self, university):
        session = university.open_daplex_session("university")
        statement = "FOR EACH s IN student SUCH THAT gpa(s) > 2.0 PRINT gpa(s);"
        session.execute(statement)
        session.engine.invalidate_translations()
        assert session.engine.translation_cache_snapshot()["size"] == 0
        after = session.execute(statement)
        assert after.rows
