"""Bounded memoization of ABDL and network-DML parsing."""

from __future__ import annotations

from repro.abdl.parser import parse_request
from repro.network import dml
from repro.qc import runtime as qc_runtime


ABDL = "RETRIEVE ((FILE = 'course') AND (credits > 2)) (*)"
DML = "FIND ANY course USING title IN course"


def test_parse_request_memoizes_exact_text():
    first = parse_request(ABDL)
    second = parse_request(ABDL)
    assert first is second
    assert parse_request(ABDL + " ") is not first  # exact text only
    cache = qc_runtime.request_parse_cache
    assert cache.hits == 1
    assert cache.misses == 2


def test_parse_request_bypasses_when_disabled(config):
    config.parse_cache_enabled = False
    first = parse_request(ABDL)
    second = parse_request(ABDL)
    assert first is not second
    assert first == second
    assert qc_runtime.request_parse_cache.misses == 0


def test_dml_statement_memoizes():
    first = dml.parse_statement(DML)
    second = dml.parse_statement(DML)
    assert first is second
    assert qc_runtime.dml_parse_cache.hits == 1


def test_dml_transaction_returns_fresh_list():
    text = DML + "\nGET"
    first = dml.parse_transaction(text)
    second = dml.parse_transaction(text)
    assert first is not second          # callers may mutate their list
    assert first == second
    assert [a is b for a, b in zip(first, second)] == [True, True]


def test_dml_statement_and_transaction_keys_do_not_collide():
    # The same source text parsed as a statement and as a transaction
    # must not serve each other's cached value.
    statement = dml.parse_statement(DML)
    transaction = dml.parse_transaction(DML)
    assert isinstance(transaction, list)
    assert transaction[0] is not None
    assert statement is not transaction


def test_parse_caches_respect_resize_to_zero(config):
    qc_runtime.apply_sizes("parse=0")
    first = parse_request(ABDL)
    second = parse_request(ABDL)
    assert first is not second
