"""The bounded LRU underneath every qc cache layer."""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.qc.lru import LRUCache, MISSING


def test_miss_then_hit_counts():
    cache = LRUCache(4)
    assert cache.get("a") is MISSING
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert (cache.hits, cache.misses) == (1, 1)


def test_cached_none_is_distinguishable_from_missing():
    cache = LRUCache(4)
    cache.put("a", None)
    assert cache.get("a") is None
    assert cache.get("b") is MISSING


def test_eviction_is_least_recently_used():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # refresh a: b is now the LRU entry
    cache.put("c", 3)
    assert cache.get("b") is MISSING
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.evictions == 1


def test_put_existing_key_updates_without_eviction():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)
    assert cache.get("a") == 10
    assert cache.get("b") == 2
    assert cache.evictions == 0


def test_resize_down_evicts_oldest():
    cache = LRUCache(4)
    for i in range(4):
        cache.put(i, i)
    cache.resize(2)
    assert cache.get(0) is MISSING
    assert cache.get(1) is MISSING
    assert cache.get(2) == 2
    assert cache.get(3) == 3


def test_disabled_cache_never_stores_or_counts():
    cache = LRUCache(0)
    assert not cache.enabled
    cache.put("a", 1)
    assert cache.get("a") is MISSING
    assert (cache.hits, cache.misses, cache.evictions) == (0, 0, 0)


def test_clear_empties_but_keeps_counters():
    cache = LRUCache(4)
    cache.put("a", 1)
    cache.get("a")
    cache.clear()
    assert cache.get("a") is MISSING
    assert cache.hits == 1
    assert cache.misses == 1


def test_snapshot_shape():
    cache = LRUCache(4, prefix="qc.test")
    cache.put("a", 1)
    cache.get("a")
    cache.get("b")
    snap = cache.snapshot()
    assert snap["prefix"] == "qc.test"
    assert snap["size"] == 1
    assert snap["maxsize"] == 4
    assert snap["hits"] == 1
    assert snap["misses"] == 1


def test_metrics_mirroring():
    metrics = MetricsRegistry()
    cache = LRUCache(1, prefix="qc.test", metrics=metrics)
    cache.get("a")           # miss
    cache.put("a", 1)
    cache.get("a")           # hit
    cache.put("b", 2)        # evicts a
    assert metrics.counter_value("qc.test.misses") == 1
    assert metrics.counter_value("qc.test.hits") == 1
    assert metrics.counter_value("qc.test.evictions") == 1
