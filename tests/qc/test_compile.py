"""Compiled matchers agree with the interpreted path, byte for byte."""

from __future__ import annotations

import pytest

from repro.abdm.predicate import Conjunction, Predicate, Query
from repro.abdm.record import Record
from repro.abdm.store import ABStore
from repro.qc.compile import CompiledQuery, compile_query


def record(**attrs) -> Record:
    return Record.from_pairs(attrs.items())


# (query, record) pairs covering every operator/domain corner the
# interpreted comparator (repro.abdm.values.compare) defines.
CASES = [
    (Query.single("a", "=", 1), record(a=1)),
    (Query.single("a", "=", 1), record(a=2)),
    (Query.single("a", "=", 1), record(b=1)),            # attribute absent
    (Query.single("a", "=", 1.0), record(a=1)),          # int/float equality
    (Query.single("a", "=", "x"), record(a="x")),
    (Query.single("a", "=", "1"), record(a=1)),          # mixed domains unequal
    (Query.single("a", "=", None), record(a=None)),      # null equals only null
    (Query.single("a", "=", None), record(a=0)),
    (Query.single("a", "!=", 1), record(a=2)),
    (Query.single("a", "!=", 1), record(b=2)),           # absent: no match even for !=
    (Query.single("a", "!=", None), record(a=1)),
    (Query.single("a", "<", 5), record(a=3)),
    (Query.single("a", "<", 5), record(a=5)),
    (Query.single("a", "<", 5), record(a="3")),          # str vs num incomparable
    (Query.single("a", "<", "m"), record(a="b")),        # string ordering
    (Query.single("a", ">=", 5.0), record(a=5)),
    (Query.single("a", ">", None), record(a=1)),         # null never comparable
    (Query.single("a", "<=", float("nan")), record(a=1)),
    (Query((Conjunction(()),)), record(a=1)),            # empty clause: matches all
    (Query(()), record(a=1)),                            # empty query: matches none
    (
        Query.conjunction(
            [Predicate("a", "=", 1), Predicate("b", ">", 2), Predicate("c", "!=", "x")]
        ),
        record(a=1, b=3, c="y"),
    ),
    (
        Query(
            (
                Conjunction([Predicate("a", "=", 1)]),
                Conjunction([Predicate("b", "<", 0)]),
            )
        ),
        record(b=-1),
    ),
]


@pytest.mark.parametrize("query,rec", CASES)
def test_compiled_agrees_with_interpreted(query, rec):
    assert compile_query(query).matches(rec) == query.matches(rec)


def test_compiled_query_exposes_source():
    query = Query.single("a", "=", 1)
    compiled = compile_query(query)
    assert isinstance(compiled, CompiledQuery)
    assert compiled.query is query
    assert compiled.source == query.render()


def test_store_matcher_caches_compilations():
    store = ABStore()
    query = Query.single("a", "=", 1)
    first = store.matcher(query)
    second = store.matcher(Query.single("a", "=", 1))  # equal, distinct object
    assert first.__self__ is second.__self__  # same CompiledQuery reused
    snap = store.cache_snapshot()
    assert snap["misses"] == 1
    assert snap["hits"] == 1


def test_store_matcher_distinguishes_empty_query_from_empty_clause():
    # Both render "()" — one matches nothing, the other everything.
    store = ABStore()
    rec = record(a=1)
    match_none = store.matcher(Query(()))
    match_all = store.matcher(Query((Conjunction(()),)))
    assert match_none is not match_all
    assert not match_none(rec)
    assert match_all(rec)


def test_disabled_compile_falls_back_to_interpreted(config):
    store = ABStore()
    query = Query.single("a", "=", 1)
    config.compile_enabled = False
    assert store.matcher(query) == query.matches
    assert store.cache_snapshot()["misses"] == 0
    config.compile_enabled = True
    assert store.matcher(query) != query.matches


def test_zero_size_compile_cache_disables_compilation(config):
    config.sizes["compile"] = 0
    store = ABStore()
    query = Query.single("a", "=", 1)
    assert store.matcher(query) == query.matches


def test_store_find_results_identical_with_and_without_compile(config):
    store = ABStore()
    for i in range(20):
        store.insert(record(FILE="f", n=i, parity=i % 2))
    query = Query.conjunction(
        [Predicate("FILE", "=", "f"), Predicate("parity", "=", 0), Predicate("n", ">", 4)]
    )
    compiled = [r.pairs() for r in store.find(query)]
    config.compile_enabled = False
    interpreted = [r.pairs() for r in store.find(query)]
    assert compiled == interpreted
