"""Wire protocol units: framing, error mapping, result flattening."""

from __future__ import annotations

import json

import pytest

from repro import errors
from repro.kms.results import StatementResult, Status
from repro.server import protocol


class TestFraming:
    def test_round_trip(self):
        line = protocol.encode({"op": "ping", "id": 7})
        assert line.endswith(b"\n")
        assert protocol.decode(line) == {"op": "ping", "id": 7}

    def test_rejects_non_json(self):
        with pytest.raises(errors.ProtocolError):
            protocol.decode(b"not json\n")

    def test_rejects_non_object(self):
        with pytest.raises(errors.ProtocolError):
            protocol.decode(b"[1, 2]\n")

    def test_rejects_oversized_line(self):
        with pytest.raises(errors.ProtocolError):
            protocol.decode(b"x" * (protocol.MAX_LINE + 1))


class TestErrorMapping:
    def test_error_response_carries_type_and_message(self):
        response = protocol.error_response(3, errors.LockTimeout("blocked on f"))
        assert response == {
            "id": 3,
            "ok": False,
            "error": {"type": "LockTimeout", "message": "blocked on f"},
        }

    def test_raise_error_restores_exact_type(self):
        with pytest.raises(errors.QuotaExceeded, match="over quota"):
            protocol.raise_error({"type": "QuotaExceeded", "message": "over quota"})

    def test_unknown_type_degrades_to_server_error(self):
        with pytest.raises(errors.ServerError):
            protocol.raise_error({"type": "NoSuchError", "message": "?"})

    def test_non_error_attribute_never_raises_arbitrary_objects(self):
        # A malicious/buggy server naming a non-exception module attr
        # must not make the client call it.
        with pytest.raises(errors.ServerError):
            protocol.raise_error({"type": "MLDSError.__init__", "message": "?"})


class TestResultToWire:
    def test_codasyl_result_flattens_with_status_value(self):
        result = StatementResult(
            statement="GET", status=Status.OK, record_type="ship",
            dbkey="ship$1", values={"hull": 68},
        )
        wire = protocol.result_to_wire(result)
        assert wire["status"] == "ok"
        assert wire["values"] == {"hull": 68}
        assert json.dumps(wire)  # JSON-safe end to end

    def test_only_existing_fields_cross(self):
        result = StatementResult(statement="FIND")
        wire = protocol.result_to_wire(result)
        assert "rows" not in wire and "columns" not in wire
