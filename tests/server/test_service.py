"""The MLDS server end to end: real sockets, four languages, one kernel.

A module-scoped server hosts the university (functional), a network, a
relational, and a hierarchical database; clients connect over TCP and
exercise authentication, quotas, rate limits, admission shedding,
transactions, and the metrics endpoint.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import MLDS, errors
from repro.server import (
    Authenticator,
    Credential,
    MLDSServer,
    ServerClient,
)
from repro.university import generate_university, load_university

NET_DDL = """
SCHEMA NAME IS fleet;
RECORD NAME IS ship;
    sname TYPE IS CHARACTER 20;
    hull TYPE IS INTEGER;
SET NAME IS system_ship;
    OWNER IS SYSTEM;
    MEMBER IS ship;
    INSERTION IS AUTOMATIC;
    RETENTION IS FIXED;
    SET SELECTION IS BY APPLICATION;
"""

REL_DDL = """
DATABASE payroll;
CREATE TABLE pay (pid INT, amount FLOAT, PRIMARY KEY (pid));
"""

HIE_DDL = """
DATABASE archive;
SEGMENT box ROOT (label CHAR(10));
SEGMENT folder UNDER box (topic CHAR(20));
"""


@pytest.fixture(scope="module")
def served():
    mlds = MLDS(backend_count=3)
    load_university(mlds, generate_university(persons=8, courses=3, seed=7))
    mlds.define_network_database(NET_DDL)
    mlds.define_relational_database(REL_DDL)
    mlds.define_hierarchical_database(HIE_DDL)
    authenticator = Authenticator()
    authenticator.register(Credential(token="open-sesame", user="alice"))
    authenticator.register(
        Credential(token="narrow", user="bob", max_sessions=1, max_requests=2)
    )
    authenticator.register(
        Credential(token="throttled", user="carol", rate=0.0001, burst=1)
    )
    authenticator.register(
        Credential(token="reconnect-throttle", user="dave", rate=0.0001, burst=1)
    )
    server = MLDSServer(
        mlds, authenticator, max_inflight=1, max_queue=0
    )
    handle = server.serve_in_thread()
    yield handle
    handle.stop()
    mlds.kds.shutdown()


def connect(served, token="open-sesame"):
    client = ServerClient(served.host, served.port)
    client.auth(token)
    return client


class TestHandshake:
    def test_ping_without_auth(self, served):
        with ServerClient(served.host, served.port) as client:
            assert client.ping()

    def test_operations_require_auth(self, served):
        with ServerClient(served.host, served.port) as client:
            with pytest.raises(errors.AuthenticationError):
                client.open("sql", "payroll")

    def test_bad_token_rejected(self, served):
        with ServerClient(served.host, served.port) as client:
            with pytest.raises(errors.AuthenticationError):
                client.auth("wrong")

    def test_double_auth_rejected(self, served):
        with connect(served) as client:
            with pytest.raises(errors.ProtocolError):
                client.auth("open-sesame")

    def test_unknown_op(self, served):
        with connect(served) as client:
            with pytest.raises(errors.ProtocolError, match="unknown op"):
                client.call("frobnicate")

    def test_malformed_line_is_answered_not_fatal(self, served):
        with connect(served) as client:
            client._file.write(b"this is not json\n")
            client._file.flush()
            from repro.server import protocol

            response = protocol.decode(client._file.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "ProtocolError"
            assert client.ping()  # connection survived


class TestFourLanguages:
    def test_all_four_languages_over_one_connection(self, served):
        with connect(served) as client:
            daplex = client.open("daplex", "university")
            rows = client.execute(daplex, "FOR EACH s IN student PRINT name(s);")
            assert rows[0]["rows"]

            codasyl = client.open("codasyl", "fleet")
            client.execute(codasyl, "MOVE 'Nimitz' TO sname IN ship")
            client.execute(codasyl, "MOVE 68 TO hull IN ship")
            client.execute(codasyl, "STORE ship")
            found = client.execute(codasyl, "FIND ANY ship USING sname IN ship")
            assert found[0]["values"]["hull"] == 68

            sql = client.open("sql", "payroll")
            client.execute(sql, "INSERT INTO pay VALUES (1, 99.5)")
            rows = client.execute(sql, "SELECT amount FROM pay WHERE pid = 1")
            assert rows[0]["rows"] == [{"amount": 99.5}]

            dli = client.open("dli", "archive")
            client.execute(dli, "FLD label = 'b-9'")
            isrt = client.execute(dli, "ISRT box")
            assert isrt[0]["dbkey"]

    def test_codasyl_over_functional_transform(self, served):
        # The thesis's centerpiece, through a socket: CODASYL-DML
        # against the functional university database.
        with connect(served) as client:
            session = client.open("codasyl", "university")
            result = client.execute(
                session, "FIND FIRST person WITHIN system_person"
            )
            assert result[0]["status"] == "ok"

    def test_unknown_language_and_database(self, served):
        with connect(served) as client:
            with pytest.raises(errors.ProtocolError, match="language"):
                client.open("cobol", "payroll")
            with pytest.raises(errors.SchemaError):
                client.open("sql", "missing-db")

    def test_execute_on_unknown_session(self, served):
        with connect(served) as client:
            with pytest.raises(errors.ProtocolError, match="no open session"):
                client.execute("s99", "SELECT * FROM pay")


class TestTransactionsOverTheWire:
    def test_commit_makes_writes_durable(self, served):
        with connect(served) as client:
            sql = client.open("sql", "payroll")
            client.begin()
            client.execute(sql, "INSERT INTO pay VALUES (10, 1.0)")
            seq = client.commit()
            assert seq > 0
            rows = client.execute(sql, "SELECT pid FROM pay WHERE pid = 10")
            assert rows[0]["rows"] == [{"pid": 10}]

    def test_abort_rolls_back(self, served):
        with connect(served) as client:
            sql = client.open("sql", "payroll")
            client.begin()
            client.execute(sql, "INSERT INTO pay VALUES (11, 1.0)")
            client.abort()
            rows = client.execute(sql, "SELECT pid FROM pay WHERE pid = 11")
            assert rows[0]["rows"] == []

    def test_disconnect_aborts_open_transaction(self, served):
        client = connect(served)
        sql = client.open("sql", "payroll")
        client.begin()
        client.execute(sql, "INSERT INTO pay VALUES (12, 1.0)")
        client.close()  # walks away mid-transaction
        with connect(served) as probe:
            probe_sql = probe.open("sql", "payroll")
            for _ in range(100):  # teardown is asynchronous; poll briefly
                rows = probe.execute(
                    probe_sql, "SELECT pid FROM pay WHERE pid = 12"
                )
                if rows[0]["rows"] == []:
                    break
                time.sleep(0.05)
            assert rows[0]["rows"] == []

    def test_two_connections_isolated_by_kernel_locks(self, served):
        with connect(served) as writer, connect(served) as reader:
            w = writer.open("sql", "payroll")
            r = reader.open("sql", "payroll")
            writer.begin()
            writer.execute(w, "INSERT INTO pay VALUES (13, 5.0)")
            writer.commit()
            rows = reader.execute(r, "SELECT amount FROM pay WHERE pid = 13")
            assert rows[0]["rows"] == [{"amount": 5.0}]


class TestQuotasAndLimits:
    def test_session_quota(self, served):
        first = connect(served, token="narrow")
        try:
            with ServerClient(served.host, served.port) as second:
                with pytest.raises(errors.QuotaExceeded):
                    second.auth("narrow")
        finally:
            first.close()

    def test_lifetime_request_quota(self, served):
        # bob's sessions quota is 1, so reuse one connection; his
        # lifetime statement quota is 2 and the previous test spent 0.
        for _ in range(100):  # wait out the previous test's teardown
            try:
                client = connect(served, token="narrow")
                break
            except errors.QuotaExceeded:
                time.sleep(0.05)
        with client:
            sql = client.open("sql", "payroll")
            client.execute(sql, "SELECT pid FROM pay WHERE pid = 0")
            client.execute(sql, "SELECT pid FROM pay WHERE pid = 0")
            with pytest.raises(errors.QuotaExceeded, match="lifetime"):
                client.execute(sql, "SELECT pid FROM pay WHERE pid = 0")

    def test_rate_limit(self, served):
        with connect(served, token="throttled") as client:
            sql = client.open("sql", "payroll")
            client.execute(sql, "SELECT pid FROM pay WHERE pid = 0")
            with pytest.raises(errors.RateLimitExceeded, match="retry"):
                client.execute(sql, "SELECT pid FROM pay WHERE pid = 0")

    def test_reconnecting_does_not_refresh_rate_limit_burst(self, served):
        # The bucket belongs to the credential, not the connection: a
        # client cannot mint a fresh burst by dropping and re-dialing.
        with connect(served, token="reconnect-throttle") as client:
            sql = client.open("sql", "payroll")
            client.execute(sql, "SELECT pid FROM pay WHERE pid = 0")
        with connect(served, token="reconnect-throttle") as client:
            sql = client.open("sql", "payroll")
            with pytest.raises(errors.RateLimitExceeded):
                client.execute(sql, "SELECT pid FROM pay WHERE pid = 0")

    def test_overload_sheds_with_clear_error(self, served):
        # Fill the single execution slot with a statement blocked on a
        # kernel lock, then watch the next statement get shed (queue 0).
        # Snapshot reads mean a SELECT no longer parks on the writer's
        # lock, so the slot-filler is a conflicting INSERT — writers
        # still serialize per file under strict 2PL.
        blocker = connect(served)
        blocked = connect(served)
        shed = connect(served)
        try:
            b = blocker.open("sql", "payroll")
            blocker.begin()
            blocker.execute(b, "INSERT INTO pay VALUES (77, 7.0)")

            blocked_sql = blocked.open("sql", "payroll")
            result: list = []

            def run_blocked():
                result.append(
                    blocked.execute(
                        blocked_sql, "INSERT INTO pay VALUES (78, 8.0)"
                    )
                )

            thread = threading.Thread(target=run_blocked)
            thread.start()
            server = served.server
            for _ in range(200):  # wait until it occupies the slot
                if server.admission.stats()["inflight"] >= 1:
                    break
                time.sleep(0.01)
            assert server.admission.stats()["inflight"] == 1

            shed_sql = shed.open("sql", "payroll")
            with pytest.raises(errors.ServerOverloaded, match="retry"):
                shed.execute(shed_sql, "SELECT pid FROM pay WHERE pid = 0")

            blocker.commit()  # release the lock; the blocked writer finishes
            thread.join(timeout=15)
            assert result
            rows = shed.execute(shed_sql, "SELECT pid FROM pay WHERE pid = 78")
            assert rows[0]["rows"] == [{"pid": 78}]
        finally:
            blocker.close()
            blocked.close()
            shed.close()


class TestMetricsEndpoint:
    def test_metrics_open_to_unauthenticated_scrapes(self, served):
        with ServerClient(served.host, served.port) as client:
            snapshot = client.metrics()
            assert set(snapshot) == {"obs", "server", "locks"}

    def test_metrics_never_leak_tokens(self, served):
        # The metrics op is open to unauthenticated scrapes, so no raw
        # credential token may appear anywhere in the snapshot.
        with connect(served) as client:
            sql = client.open("sql", "payroll")
            client.execute(sql, "SELECT pid FROM pay WHERE pid = 0")
        with ServerClient(served.host, served.port) as scraper:
            wire = repr(scraper.metrics())
        for token in ("open-sesame", "narrow", "throttled", "reconnect-throttle"):
            assert token not in wire
        assert "alice" in wire  # accounting is still published, by user

    def test_metrics_reflect_served_traffic(self, served):
        with connect(served) as client:
            sql = client.open("sql", "payroll")
            client.execute(sql, "SELECT pid FROM pay WHERE pid = 0")
            snapshot = client.metrics()
        server_stats = snapshot["server"]
        assert server_stats["statements_total"] >= 1
        assert server_stats["connections_total"] >= 2
        assert server_stats["admission"]["admitted_total"] >= 1
        assert "acquired" in snapshot["locks"]
        assert "metrics" in snapshot["obs"]  # the obs registry JSON
