"""Authenticator units: tokens, session quotas, lifetime request quotas."""

from __future__ import annotations

import pytest

from repro.errors import AuthenticationError, QuotaExceeded
from repro.server.auth import Authenticator, Credential, generate_token


@pytest.fixture()
def auth():
    authenticator = Authenticator()
    authenticator.register(
        Credential(token="tok", user="alice", max_sessions=2, max_requests=3)
    )
    return authenticator


def test_known_token_authenticates(auth):
    assert auth.authenticate("tok").user == "alice"


def test_unknown_token_rejected(auth):
    with pytest.raises(AuthenticationError):
        auth.authenticate("nope")


def test_missing_token_rejected(auth):
    with pytest.raises(AuthenticationError):
        auth.authenticate(None)


def test_revoked_token_rejected(auth):
    auth.revoke("tok")
    with pytest.raises(AuthenticationError):
        auth.authenticate("tok")


def test_session_quota_enforced(auth):
    credential = auth.authenticate("tok")
    auth.acquire_connection(credential)
    auth.acquire_connection(credential)
    with pytest.raises(QuotaExceeded, match="2"):
        auth.acquire_connection(credential)
    auth.release_connection(credential)
    auth.acquire_connection(credential)  # freed slot is reusable


def test_lifetime_request_quota_enforced(auth):
    credential = auth.authenticate("tok")
    for _ in range(3):
        auth.charge_request(credential)
    with pytest.raises(QuotaExceeded, match="lifetime"):
        auth.charge_request(credential)


def test_unlimited_requests_by_default():
    authenticator = Authenticator()
    credential = authenticator.register(Credential(token="t", user="bob"))
    for _ in range(1000):
        authenticator.charge_request(credential)


def test_generated_tokens_are_unique():
    assert generate_token() != generate_token()


def test_add_token_convenience():
    authenticator = Authenticator()
    credential = authenticator.add_token("abc123", rate=5.0)
    assert authenticator.authenticate("abc123") is credential
    assert credential.rate == 5.0
