"""Authenticator units: tokens, session quotas, lifetime request quotas."""

from __future__ import annotations

import pytest

from repro.errors import AuthenticationError, QuotaExceeded
from repro.server.auth import Authenticator, Credential, generate_token


@pytest.fixture()
def auth():
    authenticator = Authenticator()
    authenticator.register(
        Credential(token="tok", user="alice", max_sessions=2, max_requests=3)
    )
    return authenticator


def test_known_token_authenticates(auth):
    assert auth.authenticate("tok").user == "alice"


def test_unknown_token_rejected(auth):
    with pytest.raises(AuthenticationError):
        auth.authenticate("nope")


def test_missing_token_rejected(auth):
    with pytest.raises(AuthenticationError):
        auth.authenticate(None)


def test_revoked_token_rejected(auth):
    auth.revoke("tok")
    with pytest.raises(AuthenticationError):
        auth.authenticate("tok")


def test_session_quota_enforced(auth):
    credential = auth.authenticate("tok")
    auth.acquire_connection(credential)
    auth.acquire_connection(credential)
    with pytest.raises(QuotaExceeded, match="2"):
        auth.acquire_connection(credential)
    auth.release_connection(credential)
    auth.acquire_connection(credential)  # freed slot is reusable


def test_lifetime_request_quota_enforced(auth):
    credential = auth.authenticate("tok")
    for _ in range(3):
        auth.charge_request(credential)
    with pytest.raises(QuotaExceeded, match="lifetime"):
        auth.charge_request(credential)


def test_unlimited_requests_by_default():
    authenticator = Authenticator()
    credential = authenticator.register(Credential(token="t", user="bob"))
    for _ in range(1000):
        authenticator.charge_request(credential)


def test_generated_tokens_are_unique():
    assert generate_token() != generate_token()


class TestStatsNeverExposeTokens:
    """stats() feeds the unauthenticated metrics op: no raw tokens."""

    def test_stats_keyed_by_user(self, auth):
        credential = auth.authenticate("tok")
        auth.acquire_connection(credential)
        auth.charge_request(credential)
        stats = auth.stats()
        assert stats["connections"] == {"alice": 1}
        assert stats["requests"] == {"alice": 1}

    def test_token_string_absent_from_stats(self):
        authenticator = Authenticator()
        secret = "s3cret-credential-value"
        credential = authenticator.register(Credential(token=secret, user="alice"))
        authenticator.acquire_connection(credential)
        authenticator.charge_request(credential)
        assert secret not in repr(authenticator.stats())

    def test_same_user_tokens_aggregate(self):
        authenticator = Authenticator()
        first = authenticator.register(Credential(token="t1", user="alice"))
        second = authenticator.register(Credential(token="t2", user="alice"))
        authenticator.acquire_connection(first)
        authenticator.acquire_connection(second)
        assert authenticator.stats()["connections"] == {"alice": 2}

    def test_revoked_token_reports_redacted(self):
        authenticator = Authenticator()
        secret = "s3cret-credential-value"
        credential = authenticator.register(Credential(token=secret, user="alice"))
        authenticator.acquire_connection(credential)
        authenticator.revoke(secret)
        stats = authenticator.stats()
        assert stats["connections"] == {"<revoked>": 1}
        assert secret not in repr(stats)


class TestSharedBuckets:
    def test_bucket_shared_across_connections(self):
        authenticator = Authenticator()
        credential = authenticator.register(
            Credential(token="t", user="bob", rate=1.0, burst=2.0)
        )
        bucket = authenticator.bucket_for(credential)
        assert authenticator.bucket_for(credential) is bucket

    def test_reconnect_does_not_refresh_burst(self):
        # rate ~0 so the burst cannot refill during the test
        authenticator = Authenticator()
        credential = authenticator.register(
            Credential(token="t", user="bob", rate=0.0001, burst=1)
        )
        assert authenticator.bucket_for(credential).try_acquire()
        # the "reconnect": a second bucket_for must see the spent bucket
        assert not authenticator.bucket_for(credential).try_acquire()

    def test_revoke_drops_bucket(self):
        authenticator = Authenticator()
        credential = authenticator.register(
            Credential(token="t", user="bob", rate=0.0001, burst=1)
        )
        assert authenticator.bucket_for(credential).try_acquire()
        authenticator.revoke("t")
        fresh = authenticator.register(
            Credential(token="t", user="bob", rate=0.0001, burst=1)
        )
        assert authenticator.bucket_for(fresh).try_acquire()


def test_add_token_convenience():
    authenticator = Authenticator()
    credential = authenticator.add_token("abc123", rate=5.0)
    assert authenticator.authenticate("abc123") is credential
    assert credential.rate == 5.0
