"""Token bucket units, on an injectable clock — no real sleeping."""

from __future__ import annotations

from repro.server.ratelimit import TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_burst_then_empty():
    clock = FakeClock()
    bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
    assert bucket.try_acquire()
    assert bucket.try_acquire()
    assert not bucket.try_acquire()
    assert bucket.denied_total == 1


def test_refills_at_rate():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
    bucket.try_acquire()
    bucket.try_acquire()
    clock.advance(0.5)  # 2/s for half a second -> one token back
    assert bucket.try_acquire()
    assert not bucket.try_acquire()


def test_never_exceeds_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=100.0, burst=3, clock=clock)
    clock.advance(60)
    assert bucket.available == 3


def test_retry_after_names_the_wait():
    clock = FakeClock()
    bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
    bucket.try_acquire()
    assert bucket.retry_after() == 0.25
    clock.advance(0.25)
    assert bucket.retry_after() == 0.0


def test_zero_rate_is_unlimited():
    bucket = TokenBucket(rate=0.0, burst=1)
    assert all(bucket.try_acquire() for _ in range(1000))
    assert bucket.available == float("inf")
