"""Admission control units: slots, queueing, and shedding."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServerOverloaded
from repro.server.admission import AdmissionController


def test_admits_up_to_inflight_without_queueing():
    admission = AdmissionController(max_inflight=2, max_queue=0)
    admission.acquire()
    admission.acquire()
    assert admission.stats()["inflight"] == 2


def test_sheds_past_inflight_with_empty_queue():
    admission = AdmissionController(max_inflight=1, max_queue=0)
    admission.acquire()
    with pytest.raises(ServerOverloaded, match="retry later"):
        admission.acquire()
    assert admission.stats()["shed_total"] == 1


def test_queued_request_runs_when_slot_frees():
    admission = AdmissionController(max_inflight=1, max_queue=1)
    admission.acquire()
    admitted = threading.Event()

    def queued():
        with admission.admit():
            admitted.set()

    thread = threading.Thread(target=queued)
    thread.start()
    assert not admitted.wait(0.05)  # genuinely waiting
    assert admission.stats()["waiting"] == 1
    admission.release()
    assert admitted.wait(2.0)
    thread.join()


def test_sheds_past_the_queue_bound():
    admission = AdmissionController(max_inflight=1, max_queue=1)
    admission.acquire()
    started = threading.Event()
    release = threading.Event()

    def queued():
        started.set()
        with admission.admit():
            release.wait(5)

    thread = threading.Thread(target=queued)
    thread.start()
    started.wait(2)
    # Poll until the queued thread is registered as waiting.
    for _ in range(200):
        if admission.stats()["waiting"] == 1:
            break
        threading.Event().wait(0.01)
    with pytest.raises(ServerOverloaded):
        admission.acquire()  # queue is full: shed
    admission.release()
    release.set()
    thread.join()


def test_admit_context_manager_always_releases():
    admission = AdmissionController(max_inflight=1, max_queue=0)
    with pytest.raises(RuntimeError):
        with admission.admit():
            raise RuntimeError("boom")
    admission.acquire()  # slot came back


def test_bounds_validated():
    with pytest.raises(ValueError):
        AdmissionController(max_inflight=0)
    with pytest.raises(ValueError):
        AdmissionController(max_inflight=1, max_queue=-1)
