"""The network/ vs server/ naming split, asserted (see DESIGN.md).

``repro.network`` is the CODASYL *network data model* — Bachman
networks, nothing to do with sockets.  ``repro.server`` is MLDS as a
*network service* — sockets, nothing to do with data models.  These
tests keep the two from bleeding into each other as the codebase grows.
"""

from __future__ import annotations

import ast
from pathlib import Path

import repro.network
import repro.server

SOCKET_WORLD = {"socket", "asyncio", "ssl", "selectors", "http"}
MODEL_MODULES = {
    "repro.network",
    "repro.functional",
    "repro.relational",
    "repro.hierarchical",
}


def imported_modules(package) -> set[str]:
    """Top-level module names imported anywhere in *package*'s sources."""
    names: set[str] = set()
    for path in Path(package.__path__[0]).glob("*.py"):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                names.update(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom) and node.module:
                names.add(node.module)
    return names


def test_network_package_is_a_data_model_not_a_socket_layer():
    imports = imported_modules(repro.network)
    assert not {name.split(".")[0] for name in imports} & SOCKET_WORLD
    assert not any(name.startswith("repro.server") for name in imports)


def test_server_package_defines_no_data_model():
    imports = imported_modules(repro.server)
    assert not any(
        name == model or name.startswith(model + ".")
        for name in imports
        for model in MODEL_MODULES
    )


def test_both_packages_document_the_split():
    assert "network data model" in (repro.server.__doc__ or "")
    design = Path(repro.server.__path__[0]).parents[2] / "DESIGN.md"
    text = design.read_text()
    assert "`network/` vs `server/` naming" in text


def test_tcp_surface_lives_only_under_server():
    # The one place `asyncio`/`socket` may appear in the library.
    src = Path(repro.server.__path__[0]).parents[1]
    offenders = []
    for path in src.rglob("*.py"):
        if "server" in path.parts or path.name == "cli.py":
            continue  # cli.py is the wiring that boots the server
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            modules = (
                [alias.name for alias in node.names]
                if isinstance(node, ast.Import)
                else [node.module]
                if isinstance(node, ast.ImportFrom) and node.module
                else []
            )
            if {m.split(".")[0] for m in modules} & {"socket", "asyncio"}:
                offenders.append(path.name)
    assert not offenders
