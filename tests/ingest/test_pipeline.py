"""The streaming ingest pipeline: batching, reporting, CLI surface."""

from __future__ import annotations

from itertools import islice

import pytest

from repro.cli import MLDSShell, build_parser
from repro.core.mlds import MLDS
from repro.ingest import IngestPipeline, bulk_load, stream_university_records
from repro.mbds.placement import HashShardPlacement
from repro.obs import Observability
from repro.wal.log import WalManager


class TestGenerator:
    def test_deterministic(self):
        a = [tuple(r.pairs()) for r in stream_university_records(500)]
        b = [tuple(r.pairs()) for r in stream_university_records(500)]
        assert a == b

    def test_seed_changes_the_stream(self):
        a = [tuple(r.pairs()) for r in stream_university_records(100)]
        b = [tuple(r.pairs()) for r in stream_university_records(100, seed=7)]
        assert a != b

    def test_streaming_not_materialized(self):
        """Pulling 10 records off a billion-record stream is instant."""
        stream = stream_university_records(1_000_000_000)
        head = list(islice(stream, 10))
        assert len(head) == 10

    def test_ids_unique_and_sequential(self):
        ids = [r.get("ID") for r in stream_university_records(200)]
        assert ids == list(range(200))

    def test_university_file_mix(self):
        files = {r.file_name for r in stream_university_records(100)}
        assert files == {"student", "faculty", "support_staff", "course", "department"}
        students = sum(
            1 for r in stream_university_records(100) if r.file_name == "student"
        )
        assert students == 50  # the dominant file, as in the population

    def test_every_record_pinned_to_a_file(self):
        assert all(r.file_name for r in stream_university_records(100))


class TestPipeline:
    def test_batches_cover_the_stream(self):
        mlds = MLDS(backend_count=3)
        try:
            report = bulk_load(
                mlds.kds, stream_university_records(2_500), batch_size=1_000
            )
            assert report.records == 2_500
            assert report.batches == 3  # 1000 + 1000 + 500
            assert mlds.kds.record_count() == 2_500
        finally:
            mlds.kds.shutdown()

    def test_report_counts_wal_work(self, tmp_path):
        obs = Observability()
        wal = WalManager(tmp_path / "wal", 3, sync=True, group_window_ms=0.0)
        mlds = MLDS(backend_count=3, wal=wal, obs=obs)
        try:
            report = bulk_load(
                mlds.kds, stream_university_records(2_000), batch_size=500
            )
            assert report.commits == 4  # one auto-commit per batch
            assert report.group_commits == 4
            assert report.fsyncs > 0
            assert report.fsyncs_per_commit == report.fsyncs / report.commits
            assert report.records_per_second > 0
            payload = report.as_dict()
            assert payload["records"] == 2_000
            assert payload["batches"] == 4
        finally:
            mlds.kds.shutdown()

    def test_rejects_bad_batch_size(self):
        mlds = MLDS(backend_count=1)
        try:
            with pytest.raises(ValueError):
                IngestPipeline(mlds.kds, batch_size=0)
        finally:
            mlds.kds.shutdown()

    def test_session_scoped_ingest(self, tmp_path):
        """A pipeline bound to a session runs under concurrency control."""
        wal = WalManager(tmp_path / "wal", 2)
        mlds = MLDS(backend_count=2, wal=wal)
        try:
            session = mlds.kds.create_session("loader")
            report = bulk_load(
                mlds.kds,
                stream_university_records(600),
                batch_size=200,
                session=session,
            )
            assert report.records == 600
            assert session.requests_executed == 3
            assert mlds.kds.record_count() == 600
        finally:
            mlds.kds.shutdown()

    def test_hash_shard_ingest_spreads_by_id(self):
        placement = HashShardPlacement(
            {
                "student": "ID",
                "faculty": "ID",
                "support_staff": "ID",
                "course": "ID",
                "department": "ID",
            }
        )
        mlds = MLDS(backend_count=4, placement=placement)
        try:
            bulk_load(mlds.kds, stream_university_records(2_000), batch_size=500)
            distribution = mlds.kds.controller.distribution()
            assert sum(distribution) == 2_000
            assert all(count > 0 for count in distribution)
        finally:
            mlds.kds.shutdown()

    def test_stage_metrics_recorded(self):
        obs = Observability()
        mlds = MLDS(backend_count=2, obs=obs)
        try:
            bulk_load(mlds.kds, stream_university_records(400), batch_size=100)
            registry = obs.metrics.as_dict()
            assert registry["ingest.records"]["value"] == 400.0
            assert registry["ingest.batches"]["value"] == 4.0
            assert registry["ingest.batch_wall_ms"]["count"] == 4
        finally:
            mlds.kds.shutdown()


class TestPrefetch:
    def test_prefetched_run_matches_inline_run(self):
        inline = MLDS(backend_count=3)
        ahead = MLDS(backend_count=3)
        try:
            a = bulk_load(
                inline.kds, stream_university_records(2_500), batch_size=500
            )
            b = bulk_load(
                ahead.kds,
                stream_university_records(2_500),
                batch_size=500,
                prefetch_batches=2,
            )
            assert (a.records, a.batches) == (b.records, b.batches)
            assert b.prefetch_batches == 2
            # Same stream, same batching, same placement: bit-identical.
            image = lambda mlds: [  # noqa: E731
                sorted(tuple(r.pairs()) for r in backend.store.all_records())
                for backend in mlds.kds.controller.backends
            ]
            assert image(inline) == image(ahead)
        finally:
            inline.kds.shutdown()
            ahead.kds.shutdown()

    def test_report_separates_stall_from_generation(self):
        mlds = MLDS(backend_count=2)
        try:
            report = bulk_load(
                mlds.kds,
                stream_university_records(2_000),
                batch_size=250,
                prefetch_batches=3,
            )
            # The producer did real generation work, but the submit loop
            # only stalled for whatever overlap could not hide.
            assert report.generate_ms > 0.0
            assert report.generate_stall_ms >= 0.0
            assert report.as_dict()["prefetch_batches"] == 3
        finally:
            mlds.kds.shutdown()

    def test_generator_exception_propagates(self):
        def exploding():
            yield from stream_university_records(600)
            raise RuntimeError("stream went bad")

        mlds = MLDS(backend_count=2)
        try:
            with pytest.raises(RuntimeError, match="stream went bad"):
                bulk_load(
                    mlds.kds, exploding(), batch_size=100, prefetch_batches=2
                )
            # Every batch generated before the failure was still ingested.
            assert mlds.kds.record_count() == 600
        finally:
            mlds.kds.shutdown()

    def test_rejects_negative_prefetch(self):
        mlds = MLDS(backend_count=1)
        try:
            with pytest.raises(ValueError):
                IngestPipeline(mlds.kds, prefetch_batches=-1)
        finally:
            mlds.kds.shutdown()

    def test_wal_ingest_with_prefetch_stays_durable(self, tmp_path):
        mlds = MLDS(
            backend_count=2,
            wal=WalManager(tmp_path / "wal", 2),
            obs=Observability(),
        )
        try:
            report = bulk_load(
                mlds.kds,
                stream_university_records(900),
                batch_size=300,
                prefetch_batches=2,
            )
            assert report.commits == 3
            assert report.journal_records > 0
        finally:
            mlds.kds.shutdown()


class TestCliSurface:
    def test_ingest_dot_command(self):
        shell = MLDSShell(MLDS(backend_count=2))
        try:
            output = shell.handle_line(".ingest 300 100")
            assert "ingested 300 records in 3 batch(es)" in output
            assert shell.mlds.kds.record_count() == 300
        finally:
            shell.mlds.kds.shutdown()

    def test_ingest_usage_errors(self):
        shell = MLDSShell(MLDS(backend_count=1))
        try:
            assert "usage" in shell.handle_line(".ingest")
            assert "usage" in shell.handle_line(".ingest nope")
            assert "usage" in shell.handle_line(".ingest 0")
            assert "usage" in shell.handle_line(".ingest 10 0")
            assert shell.mlds.kds.record_count() == 0
        finally:
            shell.mlds.kds.shutdown()

    def test_parser_accepts_bulk_load_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["--bulk-load", "100000", "--bulk-batch", "5000", "--group-window-ms", "2"]
        )
        assert args.bulk_load == 100_000
        assert args.bulk_batch == 5_000
        assert args.group_window_ms == 2.0
