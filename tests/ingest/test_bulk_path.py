"""The bulk-insert path is the incremental path, faster.

Every test here is an equivalence claim: bulk loading must produce the
*bit-identical* post-load state — store contents, placement counters,
index arrays, pruning summaries, persistence snapshots — that inserting
the same records one request at a time produces, under every execution
engine.  The bulk path is allowed to change wall clock and fsync counts,
never state.
"""

from __future__ import annotations

import json

import pytest

from repro.abdl.ast import (
    BulkInsertRequest,
    InsertRequest,
    RetrieveRequest,
    TargetItem,
)
from repro.abdm.predicate import Conjunction, Predicate, Query
from repro.abdm.record import Record
from repro.abdm.store import ABStore
from repro.core.mlds import MLDS
from repro.errors import ExecutionError
from repro.mbds.placement import (
    HashShardPlacement,
    LeastLoadedPlacement,
    RoundRobinPlacement,
)
from repro.persistence import load_mlds, save_mlds

ENGINES = [("serial", None), ("threads", 2), ("process", 2)]


def records(n, start=0, file_name="f"):
    return [
        Record.from_pairs(
            [("FILE", file_name), ("a", i), ("b", float(i % 7)), ("s", f"v{i % 5}")]
        )
        for i in range(start, start + n)
    ]


def mixed_records(n):
    """Records alternating across three files (multi-file batches)."""
    out = []
    for i in range(n):
        out.append(
            Record.from_pairs([("FILE", f"file{i % 3}"), ("a", i), ("b", i * 0.5)])
        )
    return out


def farm_state(mlds):
    """Everything the load may not change: stores, routing, indexes."""
    controller = mlds.kds.controller
    return {
        "snapshots": [b.store.snapshot() for b in controller.backends],
        "distribution": controller.distribution(),
        "indexes": controller.index_report(),
    }


class TestStoreLevel:
    """ABStore.bulk_insert against the per-record insert loop."""

    def _loaded(self, bulk: bool, indexed: bool = True):
        store = ABStore()
        if indexed:
            store.add_index("a")
            store.add_index("s")
        rows = records(60)
        if bulk:
            store.bulk_insert(rows)
        else:
            for row in rows:
                store.insert(row)
        return store

    def test_contents_identical(self):
        assert self._loaded(bulk=True).snapshot() == self._loaded(bulk=False).snapshot()

    def test_deferred_index_arrays_identical(self):
        """The sort-once arrays must equal the insort-maintained ones."""
        incremental = self._loaded(bulk=False)
        bulk = self._loaded(bulk=True)
        for file_name, table in incremental._indexes.items():
            twin = bulk._indexes[file_name]
            for attribute, index in table.items():
                other = twin[attribute]
                assert other.numeric == index.numeric
                assert other.strings == index.strings
                assert list(other.buckets) == list(index.buckets)
                assert other.entries == index.entries
                assert other.nulls == index.nulls
                assert other.nans == index.nans

    def test_index_answers_queries_after_bulk_load(self):
        store = self._loaded(bulk=True)
        assert any(r.get("a") == 17 for r in store.all_records())
        digest = store.index_digest("f", "a")
        assert digest is not None and digest.entries == 60

    def test_empty_batch_is_a_no_op(self):
        store = ABStore()
        assert store.bulk_insert([]) == 0
        assert store.count() == 0

    def test_bad_record_rejects_whole_batch(self):
        """Pre-validation: no partial application on a FILE-less record."""
        store = ABStore()
        rows = records(5) + [Record.from_pairs([("a", 99)])]
        with pytest.raises(ExecutionError):
            store.bulk_insert(rows)
        assert store.count() == 0


class TestKernelEquivalence:
    """bulk_insert == insert-per-record across engines and placements."""

    def _load(self, engine, workers, bulk, placement=None, rows=None):
        mlds = MLDS(
            backend_count=3, engine=engine, workers=workers, placement=placement
        )
        mlds.kds.controller.add_index("a")
        rows = rows if rows is not None else mixed_records(90)
        if bulk:
            mlds.kds.bulk_insert(rows)
        else:
            for row in rows:
                mlds.kds.execute(InsertRequest(row))
        return mlds

    @pytest.mark.parametrize("engine,workers", ENGINES, ids=[e for e, _ in ENGINES])
    def test_engine_equivalence(self, engine, workers):
        bulk = self._load(engine, workers, bulk=True)
        incremental = self._load(engine, workers, bulk=False)
        try:
            assert farm_state(bulk) == farm_state(incremental)
        finally:
            bulk.kds.shutdown()
            incremental.kds.shutdown()

    @pytest.mark.parametrize(
        "placement_factory",
        [
            RoundRobinPlacement,
            LeastLoadedPlacement,
            lambda: HashShardPlacement({"file0": "a", "file1": "a", "file2": "a"}),
        ],
        ids=["round-robin", "least-loaded", "hash-shard"],
    )
    def test_placement_equivalence(self, placement_factory):
        bulk = self._load("serial", None, bulk=True, placement=placement_factory())
        incremental = self._load(
            "serial", None, bulk=False, placement=placement_factory()
        )
        try:
            assert farm_state(bulk) == farm_state(incremental)
            # Post-load inserts land identically too: routing state is equal.
            probe = Record.from_pairs([("FILE", "file1"), ("a", 9999)])
            bulk.kds.execute(InsertRequest(probe.copy()))
            incremental.kds.execute(InsertRequest(probe.copy()))
            assert (
                bulk.kds.controller.distribution()
                == incremental.kds.controller.distribution()
            )
        finally:
            bulk.kds.shutdown()
            incremental.kds.shutdown()

    def test_queries_after_bulk_load(self):
        mlds = self._load("serial", None, bulk=True)
        try:
            query = Query([Conjunction([Predicate("FILE", "=", "file1")])])
            trace = mlds.kds.execute(RetrieveRequest(query, (TargetItem("a"),)))
            assert trace.result.count == 30
        finally:
            mlds.kds.shutdown()

    def test_result_merges_all_shards(self):
        mlds = MLDS(backend_count=3)
        try:
            trace = mlds.kds.execute(BulkInsertRequest(mixed_records(30)))
            assert trace.result.operation == "BULK-INSERT"
            assert trace.result.count == 30
        finally:
            mlds.kds.shutdown()

    def test_empty_bulk_request(self):
        mlds = MLDS(backend_count=3)
        try:
            trace = mlds.kds.execute(BulkInsertRequest([]))
            assert trace.result.operation == "BULK-INSERT"
            assert trace.result.count == 0
            assert mlds.kds.record_count() == 0
        finally:
            mlds.kds.shutdown()


class TestPersistenceRoundTrip:
    """Snapshots after bulk and incremental loads are interchangeable."""

    def _system(self, bulk):
        mlds = MLDS(backend_count=3)
        mlds.kds.controller.add_index("a")
        rows = mixed_records(60)
        if bulk:
            mlds.kds.bulk_insert(rows)
        else:
            for row in rows:
                mlds.kds.execute(InsertRequest(row))
        return mlds

    def test_snapshots_bit_identical(self, tmp_path):
        """save_mlds output is byte-for-byte equal across load paths."""
        bulk = self._system(bulk=True)
        incremental = self._system(bulk=False)
        save_mlds(bulk, tmp_path / "bulk.json")
        save_mlds(incremental, tmp_path / "incr.json")
        bulk.kds.shutdown()
        incremental.kds.shutdown()
        assert (tmp_path / "bulk.json").read_text() == (
            tmp_path / "incr.json"
        ).read_text()

    def test_load_mlds_round_trips_bulk_loaded_state(self, tmp_path):
        original = self._system(bulk=True)
        save_mlds(original, tmp_path / "snap.json")
        restored = load_mlds(tmp_path / "snap.json")
        try:
            assert [b.store.snapshot() for b in restored.kds.controller.backends] == [
                b.store.snapshot() for b in original.kds.controller.backends
            ]
            assert (
                restored.kds.controller.distribution()
                == original.kds.controller.distribution()
            )
            # Placement counters restored: the next insert routes the same.
            probe = Record.from_pairs([("FILE", "file0"), ("a", 12345)])
            original.kds.execute(InsertRequest(probe.copy()))
            restored.kds.execute(InsertRequest(probe.copy()))
            assert (
                restored.kds.controller.distribution()
                == original.kds.controller.distribution()
            )
        finally:
            original.kds.shutdown()
            restored.kds.shutdown()

    def test_save_load_save_is_stable(self, tmp_path):
        """load_mlds (itself bulk-loading now) re-saves identically."""
        original = self._system(bulk=True)
        save_mlds(original, tmp_path / "one.json")
        original.kds.shutdown()
        restored = load_mlds(tmp_path / "one.json")
        save_mlds(restored, tmp_path / "two.json")
        restored.kds.shutdown()
        one = json.loads((tmp_path / "one.json").read_text())
        two = json.loads((tmp_path / "two.json").read_text())
        assert one == two

    def test_checkpoint_after_bulk_load_recovers_identically(self, tmp_path):
        from repro.wal.log import WalManager
        from repro.wal.recovery import checkpoint_mlds, recover_mlds

        wal = WalManager(tmp_path / "wal", 3, group_window_ms=0.0)
        mlds = MLDS(backend_count=3, wal=wal)
        mlds.kds.bulk_insert(mixed_records(60))
        checkpoint_mlds(mlds)
        mlds.kds.bulk_insert(mixed_records(30))  # post-checkpoint tail
        live = [b.store.snapshot() for b in mlds.kds.controller.backends]
        mlds.kds.shutdown()

        recovered = recover_mlds(tmp_path / "wal", attach_wal=False)
        assert [
            b.store.snapshot() for b in recovered.kds.controller.backends
        ] == live
        recovered.kds.shutdown()
