"""Shared fixtures: loaded University databases and open sessions."""

from __future__ import annotations

import pytest

from repro import MLDS
from repro.university import generate_university, load_university


@pytest.fixture(scope="session")
def university_data():
    """One deterministic 30-person population shared by read-only tests."""
    return generate_university(persons=30, courses=10, departments=3, seed=42)


@pytest.fixture()
def mlds(university_data):
    """A fresh MLDS with the University database loaded (mutable tests)."""
    system = MLDS(backend_count=4)
    load_university(system, university_data)
    return system


@pytest.fixture()
def session(mlds):
    """A CODASYL-DML session over the functional University database."""
    return mlds.open_codasyl_session("university")


@pytest.fixture(scope="module")
def shared_mlds(university_data):
    """A module-scoped loaded MLDS for read-only test modules."""
    system = MLDS(backend_count=4)
    load_university(system, university_data)
    return system


@pytest.fixture()
def shared_session(shared_mlds):
    """A fresh session (fresh currency/UWA) over the shared database."""
    return shared_mlds.open_codasyl_session("university")
