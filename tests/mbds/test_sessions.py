"""Kernel sessions: concurrent transactions, undo, and commit ordering.

These tests drive :class:`~repro.mbds.kds.KernelDatabaseSystem`'s
session protocol directly (no server, no language front-ends): locks
scoped to requests or transactions, lazy file-granular undo on abort —
including wildcard captures for unpinned mutations and dropping files a
transaction created — and placement-counter rollback so an aborted
history places future records exactly like one where the transaction
never ran.
"""

from __future__ import annotations

import threading

import pytest

from repro.abdl import parse_request
from repro.abdl.ast import Modifier
from repro.errors import LockTimeout, WalError
from repro.mbds import KernelDatabaseSystem

from tests.wal.conftest import delete, insert, update


def image(kds):
    """Canonical per-backend store contents."""
    return [
        sorted((tuple(r.pairs()), r.text) for r in backend.store.all_records())
        for backend in kds.controller.backends
    ]


@pytest.fixture()
def kds():
    kds = KernelDatabaseSystem(backend_count=3)
    for i in range(6):
        kds.execute(insert("f", a=i))
    return kds


class TestAutoCommit:
    def test_mutations_get_commit_seqs(self, kds):
        session = kds.create_session()
        first = kds.execute(insert("f", a=100), session=session)
        second = kds.execute(insert("f", a=101), session=session)
        assert first.commit_seq is not None
        assert second.commit_seq == first.commit_seq + 1

    def test_retrieves_are_not_commits(self, kds):
        session = kds.create_session()
        trace = kds.execute(parse_request("RETRIEVE (FILE = f) (*)"), session=session)
        assert trace.commit_seq is None
        assert trace.result.count == 6

    def test_locks_release_after_each_request(self, kds):
        session = kds.create_session()
        kds.execute(insert("f", a=100), session=session)
        assert kds.locks.held_by(session.owner) == {}

    def test_session_results_match_legacy(self):
        legacy = KernelDatabaseSystem(backend_count=3)
        tagged = KernelDatabaseSystem(backend_count=3)
        session = tagged.create_session()
        for target, extra in ((legacy, {}), (tagged, {"session": session})):
            for i in range(5):
                target.execute(insert("f", a=i), **extra)
            target.execute(
                update(Modifier("a", arithmetic="+", operand=10), ("a", ">=", 3)),
                **extra,
            )
            target.execute(delete(("a", "=", 0)), **extra)
        assert image(legacy) == image(tagged)


class TestTransactions:
    def test_commit_returns_global_seq(self, kds):
        session = kds.create_session()
        kds.session_begin(session)
        kds.execute(insert("f", a=100), session=session)
        seq = kds.session_commit(session)
        assert seq >= 1
        assert session.commits == 1
        assert kds.locks.held_by(session.owner) == {}

    def test_nested_begin_rejected(self, kds):
        session = kds.create_session()
        kds.session_begin(session)
        with pytest.raises(WalError):
            kds.session_begin(session)

    def test_commit_without_begin_rejected(self, kds):
        session = kds.create_session()
        with pytest.raises(WalError):
            kds.session_commit(session)

    def test_locks_accumulate_until_commit(self, kds):
        session = kds.create_session()
        kds.session_begin(session)
        kds.execute(insert("f", a=100), session=session)
        assert "f" in kds.locks.held_by(session.owner)
        kds.session_commit(session)
        assert kds.locks.held_by(session.owner) == {}

    def test_writer_blocks_second_writer(self, kds):
        first = kds.create_session()
        second = kds.create_session()
        second.lock_timeout = 0.05
        kds.session_begin(first)
        kds.execute(insert("f", a=100), session=first)
        with pytest.raises(LockTimeout):
            kds.execute(insert("f", a=200), session=second)
        kds.session_commit(first)
        kds.execute(insert("f", a=200), session=second)  # free again

    def test_concurrent_readers_do_not_block(self, kds):
        sessions = [kds.create_session() for _ in range(2)]
        for session in sessions:
            kds.session_begin(session)
        read = parse_request("RETRIEVE (FILE = f) (*)")
        counts = [
            kds.execute(read, session=session).result.count for session in sessions
        ]
        assert counts == [6, 6]
        for session in sessions:
            kds.session_commit(session)


class TestAbortUndo:
    def test_abort_restores_preimage(self, kds):
        before = image(kds)
        session = kds.create_session()
        kds.session_begin(session)
        kds.execute(insert("f", a=100), session=session)
        kds.execute(
            update(Modifier("a", arithmetic="+", operand=1000), ("FILE", "=", "f")),
            session=session,
        )
        kds.execute(delete(("FILE", "=", "f"), ("a", "=", 1002)), session=session)
        kds.session_abort(session)
        assert image(kds) == before
        assert session.aborts == 1
        assert kds.locks.held_by(session.owner) == {}

    def test_abort_drops_created_file(self, kds):
        before = image(kds)
        session = kds.create_session()
        kds.session_begin(session)
        kds.execute(insert("fresh", a=1), session=session)
        kds.execute(insert("fresh", a=2), session=session)
        kds.session_abort(session)
        assert image(kds) == before
        assert all(
            not backend.store.has_file("fresh")
            for backend in kds.controller.backends
        )

    def test_abort_undoes_unpinned_mutation(self, kds):
        # No FILE pin: the wildcard path captures every file on every
        # backend, and abort restores all of them.
        kds.execute(insert("g", b=7))
        before = image(kds)
        session = kds.create_session()
        kds.session_begin(session)
        kds.execute(
            update(Modifier("a", arithmetic="+", operand=1000), ("a", ">=", 0)),
            session=session,
        )
        kds.execute(insert("h", c=1), session=session)  # born inside the txn
        kds.session_abort(session)
        assert image(kds) == before

    def test_abort_rewinds_placement(self, kds):
        # After an aborted two-insert transaction, the next insert must
        # land exactly where it would have without the transaction.
        twin = KernelDatabaseSystem(backend_count=3)
        for i in range(6):
            twin.execute(insert("f", a=i))
        session = kds.create_session()
        kds.session_begin(session)
        kds.execute(insert("f", a=100), session=session)
        kds.execute(insert("f", a=101), session=session)
        kds.session_abort(session)
        kds.execute(insert("f", a=7))
        twin.execute(insert("f", a=7))
        assert image(kds) == image(twin)

    def test_context_manager_aborts_on_error(self, kds):
        before = image(kds)
        session = kds.create_session()
        with pytest.raises(RuntimeError):
            with kds.session_transaction(session):
                kds.execute(insert("f", a=100), session=session)
                raise RuntimeError("boom")
        assert image(kds) == before

    def test_context_manager_commits(self, kds):
        session = kds.create_session()
        with kds.session_transaction(session):
            kds.execute(insert("f", a=100), session=session)
        assert kds.record_count() == 7


class TestConcurrentSessions:
    def test_parallel_writers_to_disjoint_files(self, kds):
        """Writers on different files proceed concurrently under IX."""
        barrier = threading.Barrier(2)
        failures = []

        def writer(name, file_name):
            session = kds.create_session(name)
            try:
                barrier.wait(timeout=5)
                with kds.session_transaction(session):
                    for i in range(5):
                        kds.execute(insert(file_name, a=i), session=session)
            except Exception as exc:  # pragma: no cover - failure detail
                failures.append(exc)

        threads = [
            threading.Thread(target=writer, args=(f"w{i}", f"file{i}"))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not failures
        assert kds.record_count() == 6 + 10
