"""MVCC snapshot reads at the kernel: lock freedom, fallbacks, anomalies.

The contract under test: a session RETRIEVE (outside a write
transaction) pins the newest *stable* commit seq and reconstructs that
committed state without acquiring a single S lock — so it neither
blocks on a writer's X lock nor blocks a writer — while every write
keeps strict 2PL.  The anomaly tests at the bottom pin down what
per-statement snapshots deliberately do NOT give: serializable
multi-statement reads (write skew and phantoms are admitted, exactly as
in every snapshot-isolation system).
"""

from __future__ import annotations

import time

import pytest

from repro.abdl import parse_request
from repro.mbds import KernelDatabaseSystem
from repro.obs import Observability

from tests.wal.conftest import insert


def retrieve(text: str):
    return parse_request(text)


@pytest.fixture()
def kds():
    kds = KernelDatabaseSystem(backend_count=3, obs=Observability())
    for i in range(6):
        kds.execute(insert("f", a=i))
    return kds


class TestSnapshotPath:
    def test_session_retrieve_takes_no_locks(self, kds):
        session = kds.create_session()
        trace = kds.execute(retrieve("RETRIEVE (FILE = f) (*)"), session=session)
        assert trace.result.count == 6
        assert trace.snapshot_seq == kds.stable_seq
        assert kds.locks.stats()["acquired"] == 0
        assert kds.obs.metrics.counter_value("kds.snapshot_reads") == 1

    def test_snapshot_read_does_not_block_on_a_writers_x_lock(self, kds):
        writer = kds.create_session("writer")
        reader = kds.create_session("reader")
        kds.session_begin(writer)
        kds.execute(insert("f", a=100), session=writer)  # X on f, held
        start = time.perf_counter()
        trace = kds.execute(retrieve("RETRIEVE (FILE = f) (*)"), session=reader)
        elapsed = time.perf_counter() - start
        assert trace.result.count == 6  # the uncommitted insert is invisible
        assert elapsed < 1.0  # never parked on the X lock
        assert kds.locks.wait_histograms() == {}
        kds.session_commit(writer)
        after = kds.execute(retrieve("RETRIEVE (FILE = f) (*)"), session=reader)
        assert after.result.count == 7

    def test_snapshot_read_does_not_block_a_writer(self, kds):
        # The inverse direction: a slow reader holds no S lock, so a
        # writer that arrives mid-read acquires X immediately.
        reader = kds.create_session("reader")
        kds.execute(retrieve("RETRIEVE (FILE = f) (*)"), session=reader)
        writer = kds.create_session("writer")
        kds.session_begin(writer)
        kds.execute(insert("f", a=100), session=writer)  # no LockTimeout
        kds.session_commit(writer)
        assert kds.locks.stats()["waited"] == 0

    def test_own_writes_force_the_locking_path(self, kds):
        # A transaction that has written must see its own uncommitted
        # rows, which no snapshot contains: reads fall back to locking.
        session = kds.create_session()
        kds.session_begin(session)
        kds.execute(insert("f", a=100), session=session)
        trace = kds.execute(retrieve("RETRIEVE (FILE = f) (*)"), session=session)
        assert trace.result.count == 7  # read-your-own-writes
        assert trace.snapshot_seq is None
        assert kds.obs.metrics.counter_value("kds.snapshot_reads") == 0
        kds.session_abort(session)

    def test_snapshot_reads_off_restores_locking_reads(self):
        kds = KernelDatabaseSystem(backend_count=2, snapshot_reads=False)
        kds.execute(insert("f", a=1))
        session = kds.create_session()
        trace = kds.execute(retrieve("RETRIEVE (FILE = f) (*)"), session=session)
        assert trace.snapshot_seq is None
        assert kds.locks.stats()["acquired"] > 0

    def test_aggregates_and_common_take_the_snapshot_path(self, kds):
        session = kds.create_session()
        agg = kds.execute(
            retrieve("RETRIEVE (FILE = f) (COUNT(*))"), session=session
        )
        assert agg.snapshot_seq is not None
        common = kds.execute(
            retrieve("RETRIEVE-COMMON (FILE = f) COMMON (a) (FILE = f) (*)"),
            session=session,
        )
        assert common.snapshot_seq is not None
        assert kds.locks.stats()["acquired"] == 0

    def test_stable_seq_advances_only_over_contiguous_commits(self, kds):
        base = kds.stable_seq
        first = kds.create_session("first")
        second = kds.create_session("second")
        kds.session_begin(first)
        kds.session_begin(second)
        kds.execute(insert("f", a=100), session=first)
        kds.execute(insert("g", a=200), session=second)
        kds.session_commit(second)
        kds.session_commit(first)
        assert kds.stable_seq == base + 2


class TestSnapshotAnomalies:
    """What per-statement snapshot isolation admits — by design.

    Each RETRIEVE is internally consistent (one commit seq), but two
    reads in one transaction may use different seqs, and reads do not
    lock what they saw.  These tests *assert the anomalies happen*, so
    a future change that silently strengthens (or weakens) the isolation
    level shows up here.
    """

    def test_write_skew_is_admitted(self):
        # Classic write skew, at the kernel's file lock granularity:
        # invariant "alice_oncall and bob_oncall are never both empty".
        # Both transactions read both rosters at a snapshot where each
        # is covered, then each empties its *own* file — disjoint write
        # sets, so 2PL on the writes never conflicts, and both commit.
        # A serializable system would abort one.
        kds = KernelDatabaseSystem(backend_count=2)
        kds.execute(insert("alice_oncall", doctor="alice"))
        kds.execute(insert("bob_oncall", doctor="bob"))
        alice = kds.create_session("alice")
        bob = kds.create_session("bob")
        kds.session_begin(alice)
        kds.session_begin(bob)
        for session in (alice, bob):
            trace = kds.execute(
                retrieve("RETRIEVE ((FILE = alice_oncall) OR (FILE = bob_oncall)) (*)"),
                session=session,
            )
            assert trace.result.count == 2  # "the other doctor is on call"
        kds.execute(
            parse_request("DELETE ((FILE = alice_oncall) AND (doctor = alice))"),
            session=alice,
        )
        kds.execute(
            parse_request("DELETE ((FILE = bob_oncall) AND (doctor = bob))"),
            session=bob,
        )
        kds.session_commit(alice)
        kds.session_commit(bob)  # no deadlock, no abort: skew admitted
        remaining = kds.execute(
            retrieve("RETRIEVE ((FILE = alice_oncall) OR (FILE = bob_oncall)) (*)")
        )
        assert remaining.result.count == 0  # the invariant is broken

    def test_phantoms_between_statements_are_admitted(self):
        # Two identical reads in one transaction straddle a concurrent
        # committed insert: each read is consistent at its own seq, so
        # the second sees the phantom row the first did not.
        kds = KernelDatabaseSystem(backend_count=2)
        kds.execute(insert("f", a=1))
        reader = kds.create_session("reader")
        kds.session_begin(reader)
        first = kds.execute(retrieve("RETRIEVE (FILE = f) (*)"), session=reader)
        writer = kds.create_session("writer")
        kds.execute(insert("f", a=2), session=writer)  # auto-commits
        second = kds.execute(retrieve("RETRIEVE (FILE = f) (*)"), session=reader)
        assert first.result.count == 1
        assert second.result.count == 2  # phantom: newer snapshot seq
        assert second.snapshot_seq > first.snapshot_seq
        kds.session_commit(reader)
