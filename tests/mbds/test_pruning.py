"""Broadcast pruning: summaries skip impossible backends, never change results."""

from hypothesis import given, settings, strategies as st

from repro.abdl import parse_request
from repro.abdm import ClusteredStore, Directory
from repro.mbds import BackendController, BackendSummary, KernelDatabaseSystem


def insert_text(file_name, key, **extra):
    pairs = [f"<FILE, {file_name}>", f"<{file_name}, {key}>"]
    pairs.extend(f"<{k}, {v}>" for k, v in extra.items())
    return "INSERT (" + ", ".join(pairs) + ")"


class TestFilePruning:
    def test_backends_without_the_file_are_skipped(self):
        controller = BackendController(4, pruning=True)
        # Two records in file 'a': round-robin lands them on backends 0, 1.
        controller.execute(parse_request(insert_text("a", "a$0")))
        controller.execute(parse_request(insert_text("a", "a$1")))
        trace = controller.execute(parse_request("RETRIEVE (FILE = a) (*)"))
        assert trace.result.count == 2
        assert trace.per_backend_ms[0] > 0.0
        assert trace.per_backend_ms[1] > 0.0
        assert trace.per_backend_ms[2:] == [0.0, 0.0]

    def test_pruned_backends_charge_zero_simulated_time(self):
        pruned = BackendController(4, pruning=True)
        unpruned = BackendController(4, pruning=False)
        for controller in (pruned, unpruned):
            controller.execute(parse_request(insert_text("a", "a$0")))
        pruned_trace = pruned.execute(parse_request("RETRIEVE (FILE = ghost) (*)"))
        unpruned_trace = unpruned.execute(parse_request("RETRIEVE (FILE = ghost) (*)"))
        assert pruned_trace.result.count == unpruned_trace.result.count == 0
        assert pruned_trace.response.backend_ms == 0.0
        # Without pruning every backend still pays its disk access.
        assert unpruned_trace.response.backend_ms > 0.0

    def test_all_pruned_broadcast_yields_empty_result(self):
        controller = BackendController(3, pruning=True)
        controller.execute(parse_request(insert_text("a", "a$0")))
        trace = controller.execute(parse_request("DELETE (FILE = ghost)"))
        assert trace.result.operation == "DELETE"
        assert trace.result.count == 0
        assert trace.per_backend_ms == [0.0, 0.0, 0.0]

    def test_mutations_invalidate_summaries(self):
        controller = BackendController(2, pruning=True)
        controller.execute(parse_request(insert_text("a", "a$0", x=1)))
        # Prime the summary caches with a broadcast.
        assert controller.execute(parse_request("RETRIEVE (FILE = a) (*)")).result.count == 1
        # New file lands on a backend whose summary was already cached.
        controller.execute(parse_request(insert_text("b", "b$0")))
        trace = controller.execute(parse_request("RETRIEVE (FILE = b) (*)"))
        assert trace.result.count == 1

    def test_delete_empties_file_then_prunes(self):
        controller = BackendController(2, pruning=True)
        controller.execute(parse_request(insert_text("a", "a$0")))
        controller.execute(parse_request("DELETE (FILE = a)"))
        trace = controller.execute(parse_request("RETRIEVE (FILE = a) (*)"))
        assert trace.result.count == 0
        assert trace.response.backend_ms == 0.0


class TestDescriptorPruning:
    class SplitByX:
        """Places records with x < 50 on backend 0, the rest on backend 1."""

        def place(self, record, backend_count):
            return 0 if (record.get("x") or 0) < 50 else 1 % backend_count

    @staticmethod
    def make_directory():
        directory = Directory()
        directory.add_ranges("x", 0, 100, 4)
        return directory

    def build(self, pruning):
        directory = self.make_directory()
        controller = BackendController(
            2,
            placement=self.SplitByX(),
            store_factory=lambda: ClusteredStore(directory),
            pruning=pruning,
        )
        for i in range(40):
            controller.execute(
                parse_request(insert_text("data", f"d${i}", x=(i * 7) % 100))
            )
        return controller

    def test_incompatible_descriptors_prune_the_backend(self):
        controller = self.build(pruning=True)
        trace = controller.execute(
            parse_request("RETRIEVE ((FILE = data) AND (x = 3)) (*)")
        )
        # x = 3 classifies into the [0, 25] descriptor: only backend 0 has it.
        assert trace.per_backend_ms[1] == 0.0
        assert trace.per_backend_ms[0] > 0.0

    def test_descriptor_pruning_preserves_results(self):
        pruned = self.build(pruning=True)
        unpruned = self.build(pruning=False)
        for text in (
            "RETRIEVE ((FILE = data) AND (x = 3)) (*)",
            "RETRIEVE ((FILE = data) AND (x < 30)) (*)",
            "RETRIEVE ((FILE = data) AND (x >= 80)) (*)",
            "DELETE ((FILE = data) AND (x = 21))",
            "RETRIEVE (FILE = data) (*)",
        ):
            left = pruned.execute(parse_request(text))
            right = unpruned.execute(parse_request(text))
            assert [r.pairs() for r in left.result.records] == [
                r.pairs() for r in right.result.records
            ]
            assert left.result.count == right.result.count


class TestDropDatabaseInvalidation:
    def test_drop_database_invalidates_summaries(self):
        kds = KernelDatabaseSystem(backend_count=2, pruning=True)
        kds.define_database("uni", "functional", ["course"])
        kds.execute(parse_request(insert_text("course", "c$0")))
        kds.execute(parse_request(insert_text("course", "c$1")))
        # Prime summaries, then drop the database behind the backends' backs.
        assert kds.execute(parse_request("RETRIEVE (FILE = course) (*)")).result.count == 2
        kds.drop_database("uni")
        trace = kds.execute(parse_request("RETRIEVE (FILE = course) (*)"))
        assert trace.result.count == 0
        # Stale summaries would still broadcast; fresh ones prune everything.
        assert trace.response.backend_ms == 0.0

    def test_database_recreated_after_drop_is_visible(self):
        kds = KernelDatabaseSystem(backend_count=2, pruning=True)
        kds.define_database("uni", "functional", ["course"])
        kds.execute(parse_request(insert_text("course", "c$0")))
        kds.drop_database("uni")
        kds.define_database("uni", "functional", ["course"])
        kds.execute(parse_request(insert_text("course", "c$9")))
        assert kds.execute(parse_request("RETRIEVE (FILE = course) (*)")).result.count == 1


class TestSummary:
    def test_summary_of_empty_backend_matches_nothing(self):
        from repro.abdm import ABStore, Query

        summary = BackendSummary.of_store(ABStore())
        assert not summary.may_match(Query.single("FILE", "=", "a"))

    def test_summary_without_directory_prunes_on_value_ranges(self):
        from repro.abdm import ABStore, Query, Record

        store = ABStore()
        store.insert(Record.from_pairs([("FILE", "a"), ("x", 1)]))
        summary = BackendSummary.of_store(store)
        # PR 5: value-range summaries prune without a directory — the
        # resident x extent is [1, 1], so neither 999 nor x > 5 can match.
        assert not summary.may_match(Query.single("x", "=", 999))
        assert not summary.may_match(Query.single("x", ">", 5))
        assert summary.may_match(Query.single("x", "=", 1))
        assert summary.may_match(Query.single("x", "<=", 3))
        # != stays conservative: any resident value may differ.
        assert summary.may_match(Query.single("x", "!=", 1))
        # An attribute no resident record carries satisfies nothing.
        assert not summary.may_match(Query.single("ghost", "!=", 1))
        assert not summary.may_match(Query.single("FILE", "=", "b"))


# -- property: pruning never changes results ---------------------------------

FILES = ("alpha", "beta")

records_strategy = st.lists(
    st.tuples(
        st.sampled_from(FILES),
        st.integers(min_value=0, max_value=99),
        st.sampled_from(["red", "green", "blue"]),
    ),
    min_size=0,
    max_size=30,
)

predicates_strategy = st.sampled_from(
    [
        "(FILE = alpha)",
        "(FILE = beta)",
        "((FILE = alpha) AND (x = 7))",
        "((FILE = alpha) AND (x < 40))",
        "((FILE = beta) AND (x >= 60))",
        "((FILE = alpha) AND (color = 'red'))",
        "(((FILE = alpha) AND (x = 7)) OR ((FILE = beta) AND (x = 7)))",
        "(FILE = gamma)",
        "(x > 50)",
    ]
)


@settings(max_examples=40, deadline=None)
@given(rows=records_strategy, query=predicates_strategy)
def test_pruning_never_changes_results(rows, query):
    def build(pruning):
        directory = Directory()
        directory.add_ranges("x", 0, 100, 5)
        controller = BackendController(
            3, store_factory=lambda: ClusteredStore(directory), pruning=pruning
        )
        for index, (file_name, x, color) in enumerate(rows):
            controller.execute(
                parse_request(insert_text(file_name, f"r${index}", x=x, color=f"'{color}'"))
            )
        return controller

    pruned = build(True).execute(parse_request(f"RETRIEVE {query} (*)"))
    unpruned = build(False).execute(parse_request(f"RETRIEVE {query} (*)"))
    assert [r.pairs() for r in pruned.result.records] == [
        r.pairs() for r in unpruned.result.records
    ]
    assert pruned.result.count == unpruned.result.count
