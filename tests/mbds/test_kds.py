"""The Kernel Database System facade: catalog and aggregate handling."""

import pytest

from repro.abdl import parse_request
from repro.errors import ExecutionError
from repro.mbds import KernelDatabaseSystem


@pytest.fixture()
def kds():
    kds = KernelDatabaseSystem(backend_count=4)
    for i in range(12):
        kds.execute(
            parse_request(
                f"INSERT (<FILE, course>, <course, course${i}>, <credits, {i % 4}>)"
            )
        )
    return kds


class TestCatalog:
    def test_define_and_lookup(self, kds):
        kds.define_database("uni", "functional", ["person", "course"])
        assert kds.database("uni").model == "functional"
        assert len(kds.databases()) == 1

    def test_duplicate_definition_rejected(self, kds):
        kds.define_database("uni", "functional", [])
        with pytest.raises(ExecutionError):
            kds.define_database("uni", "network", [])

    def test_unknown_database(self, kds):
        with pytest.raises(ExecutionError):
            kds.database("ghost")

    def test_drop_database_removes_files(self, kds):
        kds.define_database("uni", "functional", ["course"])
        kds.drop_database("uni")
        assert kds.record_count() == 0
        with pytest.raises(ExecutionError):
            kds.database("uni")


class TestAggregateMerging:
    def test_avg_is_global_not_avg_of_avgs(self, kds):
        # credits are 0,1,2,3 repeating: the true mean is 1.5.  Averaging
        # per-backend averages would only coincide by luck; the KDS must
        # pull raw records to the controller.
        trace = kds.execute(parse_request("RETRIEVE (FILE = course) (AVG(credits))"))
        assert trace.result.records[0].get("AVG(credits)") == pytest.approx(1.5)

    def test_count_star(self, kds):
        trace = kds.execute(parse_request("RETRIEVE (FILE = course) (COUNT(*))"))
        assert trace.result.records[0].get("COUNT(*)") == 12

    def test_grouped_aggregate(self, kds):
        trace = kds.execute(
            parse_request("RETRIEVE (FILE = course) (COUNT(*)) BY credits")
        )
        rows = {r.get("credits"): r.get("COUNT(*)") for r in trace.result.records}
        assert rows == {0: 3, 1: 3, 2: 3, 3: 3}

    def test_aggregate_charges_extra_controller_time(self, kds):
        # AVG cannot be answered from index digests, so it still gathers the
        # raw records and pays merge time for every one of them.
        plain = kds.execute(parse_request("RETRIEVE (FILE = course) (*)"))
        agg = kds.execute(parse_request("RETRIEVE (FILE = course) (AVG(credits))"))
        assert agg.response.controller_ms > plain.response.controller_ms

    def test_count_star_digest_path_is_cheaper_than_raw_retrieve(self, kds):
        plain = kds.execute(parse_request("RETRIEVE (FILE = course) (*)"))
        agg = kds.execute(parse_request("RETRIEVE (FILE = course) (COUNT(*))"))
        # PR 5: COUNT(*) is answered from store counts — one merged row,
        # one disk access per resident backend, zero records examined.
        assert agg.phases[0].label == "aggregate-index"
        assert agg.response.total_ms < plain.response.total_ms


class TestClock:
    def test_clock_accumulates(self, kds):
        assert kds.clock.total_ms > 0
        assert kds.requests_executed == 12

    def test_reset(self, kds):
        kds.reset_clock()
        assert kds.clock.total_ms == 0
        assert kds.requests_executed == 0

    def test_retrieve_records_convenience(self, kds):
        from repro.abdl.ast import RetrieveRequest
        from repro.abdm import Query

        records = kds.retrieve_records(RetrieveRequest(Query.single("FILE", "=", "course")))
        assert len(records) == 12


class TestRetrieveCommonMerging:
    def test_join_partners_on_different_backends(self):
        """RETRIEVE-COMMON must join at the controller: round-robin
        placement puts matching records on different backends."""
        from repro.abdl import parse_request

        kds = KernelDatabaseSystem(backend_count=4)
        for i in range(8):
            kds.execute(parse_request(f"INSERT (<FILE, a>, <a, a${i}>, <k, {i}>)"))
        for i in range(8):
            kds.execute(parse_request(f"INSERT (<FILE, b>, <b, b${i}>, <k, {7 - i}>)"))
        trace = kds.execute(
            parse_request("RETRIEVE-COMMON (FILE = a) COMMON (k) (FILE = b) (*)")
        )
        # Every a-record has exactly one b-partner regardless of placement.
        assert trace.result.count == 8

    def test_join_charges_both_retrievals(self):
        from repro.abdl import parse_request

        kds = KernelDatabaseSystem(backend_count=2)
        for i in range(10):
            kds.execute(parse_request(f"INSERT (<FILE, a>, <a, a${i}>, <k, {i}>)"))
            kds.execute(parse_request(f"INSERT (<FILE, b>, <b, b${i}>, <k, {i}>)"))
        kds.reset_clock()
        trace = kds.execute(
            parse_request("RETRIEVE-COMMON (FILE = a) COMMON (k) (FILE = b) (*)")
        )
        # Two broadcasts plus controller join time.
        assert trace.response.controller_ms > 2 * kds.controller.timing.broadcast_ms
