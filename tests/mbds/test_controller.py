"""The backend controller: broadcast, routing, merging, parallel timing."""

import pytest

from repro.abdl import parse_request
from repro.mbds import BackendController, LeastLoadedPlacement, RoundRobinPlacement


def insert_text(file_name, key, **extra):
    pairs = [f"<FILE, {file_name}>", f"<{file_name}, {key}>"]
    pairs.extend(f"<{k}, {v}>" for k, v in extra.items())
    return "INSERT (" + ", ".join(pairs) + ")"


@pytest.fixture()
def controller():
    controller = BackendController(4)
    for i in range(20):
        controller.execute(parse_request(insert_text("f", f"f${i}", x=i)))
    return controller


class TestConstruction:
    def test_needs_a_backend(self):
        with pytest.raises(ValueError):
            BackendController(0)

    def test_backend_count(self):
        assert BackendController(7).backend_count == 7


class TestInsertRouting:
    def test_round_robin_balance(self, controller):
        assert controller.distribution() == [5, 5, 5, 5]

    def test_insert_goes_to_one_backend(self, controller):
        trace = controller.execute(parse_request(insert_text("f", "f$99")))
        assert len(trace.per_backend_ms) == 1

    def test_per_file_round_robin(self):
        controller = BackendController(2)
        controller.execute(parse_request(insert_text("a", "a$0")))
        controller.execute(parse_request(insert_text("b", "b$0")))
        # Each file starts its own rotation at backend 0.
        assert controller.distribution() == [2, 0]

    def test_least_loaded_placement(self):
        controller = BackendController(2, placement=LeastLoadedPlacement())
        controller.execute(parse_request(insert_text("a", "a$0")))
        controller.execute(parse_request(insert_text("b", "b$0")))
        assert controller.distribution() == [1, 1]


class TestBroadcast:
    def test_retrieve_merges_all_backends(self, controller):
        trace = controller.execute(parse_request("RETRIEVE (FILE = f) (*)"))
        assert trace.result.count == 20
        assert len(trace.per_backend_ms) == 4

    def test_merge_preserves_backend_order(self, controller):
        trace = controller.execute(parse_request("RETRIEVE (FILE = f) (x)"))
        xs = [r.get("x") for r in trace.result.records]
        # Round-robin places 0,4,8,... on backend 0; concatenation groups them.
        assert xs[:5] == [0, 4, 8, 12, 16]

    def test_delete_counts_sum(self, controller):
        trace = controller.execute(parse_request("DELETE ((FILE = f) AND (x < 10))"))
        assert trace.result.count == 10
        assert controller.record_count() == 10

    def test_update_applies_everywhere(self, controller):
        controller.execute(parse_request("UPDATE (FILE = f) (x = x + 100)"))
        trace = controller.execute(parse_request("RETRIEVE ((FILE = f) AND (x >= 100)) (*)"))
        assert trace.result.count == 20


class TestParallelTiming:
    def test_backend_time_is_max_not_sum(self, controller):
        trace = controller.execute(parse_request("RETRIEVE (FILE = f) (*)"))
        assert trace.response.backend_ms == pytest.approx(max(trace.per_backend_ms))
        assert trace.response.backend_ms < sum(trace.per_backend_ms)

    def test_controller_time_includes_merge(self, controller):
        trace = controller.execute(parse_request("RETRIEVE (FILE = f) (*)"))
        timing = controller.timing
        assert trace.response.controller_ms == pytest.approx(
            timing.controller_ms(20)
        )

    def test_busy_time_accumulates(self, controller):
        before = [b.busy_ms for b in controller.backends]
        controller.execute(parse_request("RETRIEVE (FILE = f) (*)"))
        after = [b.busy_ms for b in controller.backends]
        assert all(a > b for a, b in zip(after, before))


class TestInspection:
    def test_all_records(self, controller):
        assert len(controller.all_records()) == 20
