"""Execution engines: thread-pool parity with serial execution.

The contract under test: engine choice changes only wall-clock behavior.
Merged results, record distribution, simulated response times, and
per-backend accounting must be byte-identical between SerialEngine and
ThreadPoolEngine across every request type.
"""

import pytest

from repro.abdl import parse_request
from repro.mbds import (
    KernelDatabaseSystem,
    SerialEngine,
    ThreadPoolEngine,
    make_engine,
)

WORKLOAD = (
    [f"INSERT (<FILE, a>, <a, a${i}>, <x, {i % 5}>, <k, {i}>)" for i in range(20)]
    + [f"INSERT (<FILE, b>, <b, b${i}>, <k, {19 - i}>)" for i in range(20)]
    + [
        "RETRIEVE (FILE = a) (*)",
        "RETRIEVE ((FILE = a) AND (x = 3)) (x, k)",
        "UPDATE ((FILE = a) AND (x < 2)) (x = x + 10)",
        "RETRIEVE ((FILE = a) AND (x >= 10)) (*)",
        "DELETE ((FILE = b) AND (k < 5))",
        "RETRIEVE (FILE = b) (*)",
        "RETRIEVE (FILE = a) (AVG(x))",
        "RETRIEVE (FILE = a) (COUNT(*)) BY x",
        "RETRIEVE-COMMON (FILE = a) COMMON (k) (FILE = b) (*)",
    ]
)


def run_workload(engine, workers=None, backends=4):
    kds = KernelDatabaseSystem(backend_count=backends, engine=engine, workers=workers)
    traces = [kds.execute(parse_request(text)) for text in WORKLOAD]
    try:
        return kds, traces
    finally:
        kds.shutdown()


def trace_fingerprint(trace):
    return (
        trace.result.operation,
        trace.result.count,
        [record.pairs() for record in trace.result.records],
        [record.pairs() for record in trace.result.raw_records],
        trace.response.total_ms,
        trace.response.backend_ms,
        trace.response.controller_ms,
        trace.per_backend_ms,
    )


class TestEngineParity:
    def test_threads_match_serial_across_all_operations(self):
        serial_kds, serial_traces = run_workload("serial")
        threads_kds, threads_traces = run_workload("threads")
        assert serial_kds.controller.distribution() == threads_kds.controller.distribution()
        for serial_trace, threads_trace in zip(serial_traces, threads_traces):
            assert trace_fingerprint(serial_trace) == trace_fingerprint(threads_trace)
        assert serial_kds.clock.total_ms == threads_kds.clock.total_ms
        assert [b.store.snapshot() for b in serial_kds.controller.backends] == [
            b.store.snapshot() for b in threads_kds.controller.backends
        ]

    def test_threads_deterministic_across_runs(self):
        _, first = run_workload("threads")
        _, second = run_workload("threads")
        for a, b in zip(first, second):
            assert trace_fingerprint(a) == trace_fingerprint(b)

    def test_fewer_workers_than_backends(self):
        _, serial_traces = run_workload("serial", backends=6)
        _, threads_traces = run_workload("threads", workers=2, backends=6)
        for a, b in zip(serial_traces, threads_traces):
            assert trace_fingerprint(a) == trace_fingerprint(b)


class TestWallClockInstrumentation:
    def test_broadcast_reports_wall_time(self):
        kds, traces = run_workload("serial")
        retrieve = traces[40]  # first RETRIEVE
        assert retrieve.wall_ms > 0.0
        assert len(retrieve.per_backend_wall_ms) == 4
        assert all(wall >= 0.0 for wall in retrieve.per_backend_wall_ms)
        assert [phase.label for phase in retrieve.phases] == ["broadcast"]

    def test_insert_reports_single_backend_wall_time(self):
        kds = KernelDatabaseSystem(backend_count=4)
        trace = kds.execute(parse_request("INSERT (<FILE, f>, <f, f$0>)"))
        assert trace.wall_ms > 0.0
        assert len(trace.per_backend_wall_ms) == 1
        assert [phase.label for phase in trace.phases] == ["insert"]

    def test_busy_wall_accumulates(self):
        kds, _ = run_workload("serial")
        assert all(b.busy_wall_ms > 0.0 for b in kds.controller.backends)


class TestCommonPhases:
    """The RETRIEVE-COMMON satellite: no flat left+right concatenation."""

    def test_per_backend_lists_stay_indexed_by_backend(self):
        kds, traces = run_workload("serial")
        common = traces[-1]
        assert common.result.operation == "RETRIEVE-COMMON"
        # One slot per backend, not per backend per broadcast.
        assert len(common.per_backend_ms) == 4
        assert len(common.per_backend_wall_ms) == 4

    def test_phases_label_left_and_right(self):
        kds, traces = run_workload("serial")
        common = traces[-1]
        assert [phase.label for phase in common.phases] == ["left", "right"]
        for phase in common.phases:
            assert len(phase.per_backend_ms) == 4
        # The flat list is the element-wise total of the two phases.
        for index in range(4):
            assert common.per_backend_ms[index] == pytest.approx(
                common.phases[0].per_backend_ms[index]
                + common.phases[1].per_backend_ms[index]
            )


class TestEngineFactory:
    def test_default_is_serial(self):
        assert isinstance(make_engine(None), SerialEngine)
        assert isinstance(make_engine("serial"), SerialEngine)

    def test_threads_by_name(self):
        engine = make_engine("threads", workers=3)
        assert isinstance(engine, ThreadPoolEngine)
        assert engine.workers == 3

    def test_instance_passthrough(self):
        engine = ThreadPoolEngine(2)
        assert make_engine(engine) is engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            make_engine("fibers")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ThreadPoolEngine(0)

    def test_shutdown_allows_reuse(self):
        engine = ThreadPoolEngine()
        kds = KernelDatabaseSystem(backend_count=4, engine=engine)
        kds.execute(parse_request("INSERT (<FILE, f>, <f, f$0>)"))
        kds.execute(parse_request("RETRIEVE (FILE = f) (*)"))
        engine.shutdown()
        trace = kds.execute(parse_request("RETRIEVE (FILE = f) (*)"))
        assert trace.result.count == 1


class TestLatencyEmulation:
    def test_latency_scale_sleeps_in_wall_time_only(self):
        fast = KernelDatabaseSystem(backend_count=2)
        slow = KernelDatabaseSystem(backend_count=2, latency_scale=0.05)
        for kds in (fast, slow):
            for i in range(8):
                kds.execute(parse_request(f"INSERT (<FILE, f>, <f, f${i}>)"))
            kds.reset_clock()
        fast_trace = fast.execute(parse_request("RETRIEVE (FILE = f) (*)"))
        slow_trace = slow.execute(parse_request("RETRIEVE (FILE = f) (*)"))
        assert slow_trace.response.total_ms == fast_trace.response.total_ms
        assert slow_trace.wall_ms > fast_trace.wall_ms
