"""Access planning across the farm: engines, pruning, aggregates, durability.

The MBDS-level half of PR 5's fidelity story: the planner's choices are
invisible to every consumer — thread-pool execution, value-range
broadcast pruning, the MIN/MAX/COUNT digest fast path, and index rebuilds
after checkpoint/restore or WAL crash recovery all return exactly what
the scanning baseline returns.
"""

import pytest

from repro.abdl import parse_request
from repro.abdl.ast import InsertRequest
from repro.abdm import ABStore, Record
from repro.mbds import BackendController, KernelDatabaseSystem
from repro.obs import Observability
from repro.qc import runtime as qc_runtime

NAN = float("nan")

OPERATOR_QUERIES = [
    "RETRIEVE ((FILE = data) AND (x < 4)) (*)",
    "RETRIEVE ((FILE = data) AND (x <= 4)) (*)",
    "RETRIEVE ((FILE = data) AND (x > 4)) (*)",
    "RETRIEVE ((FILE = data) AND (x >= 4)) (*)",
    "RETRIEVE ((FILE = data) AND (x = 4)) (*)",
    "RETRIEVE ((FILE = data) AND (x != 4)) (*)",
    "RETRIEVE ((FILE = data) AND (x > 1) AND (x <= 7)) (*)",
]


def insert(file_name, key, **attrs):
    pairs = [("FILE", file_name), (file_name, key), *attrs.items()]
    return InsertRequest(Record.from_pairs(pairs))


def mixed_rows():
    """int / float / string / null / NaN rows, plus one missing-x row."""
    rows = [
        insert("data", "d$0", x=1),
        insert("data", "d$1", x=4),
        insert("data", "d$2", x=4.0),
        insert("data", "d$3", x=7.5),
        insert("data", "d$4", x="word"),
        insert("data", "d$5", x=None),
        insert("data", "d$6", x=NAN),
        insert("data", "d$7"),
        insert("data", "d$8", x=0),
        insert("data", "d$9", x=9),
    ]
    return rows


def build_kds(engine, indexed=True, backends=3):
    kds = KernelDatabaseSystem(backend_count=backends, engine=engine)
    if indexed:
        kds.controller.add_index("x")
    for request in mixed_rows():
        kds.execute(request)
    return kds


class TestEngineBitIdentity:
    @pytest.mark.parametrize("text", OPERATOR_QUERIES)
    def test_serial_and_threads_identical_over_every_operator(self, text):
        serial = build_kds("serial")
        threads = build_kds("threads")
        try:
            left = serial.execute(parse_request(text))
            right = threads.execute(parse_request(text))
            assert [r.pairs() for r in left.result.records] == [
                r.pairs() for r in right.result.records
            ]
            assert left.response.total_ms == right.response.total_ms
        finally:
            serial.shutdown()
            threads.shutdown()

    @pytest.mark.parametrize("engine", ["serial", "threads"])
    def test_planned_matches_scan_baseline(self, engine):
        indexed = build_kds(engine)
        plain = build_kds(engine, indexed=False)
        try:
            for text in OPERATOR_QUERIES:
                left = indexed.execute(parse_request(text))
                right = plain.execute(parse_request(text))
                assert [r.pairs() for r in left.result.records] == [
                    r.pairs() for r in right.result.records
                ], text
        finally:
            indexed.shutdown()
            plain.shutdown()


class BandPlacement:
    """x < 50 on backend 0, the rest on backend 1 (range partitioning)."""

    def place(self, record, backend_count):
        value = record.get("x")
        if isinstance(value, (int, float)):
            return 0 if value < 50 else 1 % backend_count
        return 0


class TestValueRangePruning:
    def build(self, pruning):
        controller = BackendController(
            2, placement=BandPlacement(), pruning=pruning
        )
        for i in range(30):
            controller.execute(insert("data", f"d${i}", x=(i * 7) % 100))
        return controller

    def test_range_conjunction_prunes_to_zero_simulated_time(self):
        controller = self.build(pruning=True)
        trace = controller.execute(parse_request("RETRIEVE ((FILE = data) AND (x >= 80)) (*)"))
        # No directory anywhere: the value-range summaries alone prove
        # backend 0 (x < 50) cannot satisfy x >= 80.
        assert trace.result.count > 0
        assert trace.per_backend_ms[0] == 0.0
        assert trace.per_backend_ms[1] > 0.0

    def test_pruned_results_identical_to_unpruned(self):
        pruned = self.build(pruning=True)
        unpruned = self.build(pruning=False)
        for text in (
            "RETRIEVE ((FILE = data) AND (x >= 80)) (*)",
            "RETRIEVE ((FILE = data) AND (x < 10)) (*)",
            "RETRIEVE ((FILE = data) AND (x > 30) AND (x <= 60)) (*)",
            "RETRIEVE ((FILE = data) AND (x = 999)) (*)",
        ):
            left = pruned.execute(parse_request(text))
            right = unpruned.execute(parse_request(text))
            assert [r.pairs() for r in left.result.records] == [
                r.pairs() for r in right.result.records
            ]

    def test_insert_after_priming_reopens_the_band(self):
        controller = self.build(pruning=True)
        assert (
            controller.execute(
                parse_request("RETRIEVE ((FILE = data) AND (x >= 200)) (*)")
            ).result.count
            == 0
        )
        controller.execute(insert("data", "d$new", x=250))
        trace = controller.execute(
            parse_request("RETRIEVE ((FILE = data) AND (x >= 200)) (*)")
        )
        assert trace.result.count == 1


class TestPerFileInvalidation:
    def prime(self, controller):
        controller.execute(parse_request("RETRIEVE (FILE = student) (*)"))
        controller.execute(parse_request("RETRIEVE (FILE = course) (*)"))

    def test_write_to_course_does_not_redigest_student(self):
        controller = BackendController(1, pruning=True)
        controller.execute(insert("student", "s$0", gpa=3.1))
        controller.execute(insert("course", "c$0", credits=3))
        self.prime(controller)
        backend = controller.backends[0]
        before = backend.summary_rebuild_counts()
        assert before["student"] == before["course"] == 1
        controller.execute(insert("course", "c$1", credits=4))
        self.prime(controller)
        after = backend.summary_rebuild_counts()
        assert after["student"] == 1  # untouched file: digest reused
        assert after["course"] == 2  # written file: re-digested once

    def test_pinned_delete_invalidates_only_its_file(self):
        controller = BackendController(1, pruning=True)
        controller.execute(insert("student", "s$0", gpa=3.1))
        controller.execute(insert("course", "c$0", credits=3))
        controller.execute(insert("course", "c$1", credits=4))
        self.prime(controller)
        controller.execute(parse_request("DELETE ((FILE = course) AND (credits = 3))"))
        self.prime(controller)
        counts = controller.backends[0].summary_rebuild_counts()
        assert counts["student"] == 1
        assert counts["course"] == 2

    def test_unpinned_mutation_invalidates_everything(self):
        controller = BackendController(1, pruning=True)
        controller.execute(insert("student", "s$0", shared=1))
        controller.execute(insert("student", "s$1", shared=2))
        controller.execute(insert("course", "c$0", shared=1))
        controller.execute(insert("course", "c$1", shared=2))
        self.prime(controller)
        controller.execute(parse_request("DELETE (shared = 1)"))
        self.prime(controller)
        counts = controller.backends[0].summary_rebuild_counts()
        assert counts["student"] == 2
        assert counts["course"] == 2


class TestAggregateDigestFastPath:
    def build(self, indexed=True, rows=None):
        kds = KernelDatabaseSystem(backend_count=2)
        if indexed:
            kds.controller.add_index("x")
        for request in rows if rows is not None else mixed_rows():
            kds.execute(request)
        return kds

    def run_both(self, kds, text):
        config = qc_runtime.config
        request = parse_request(text)
        config.plan_enabled = False
        scanned = kds.execute(request)
        config.plan_enabled = True
        fast = kds.execute(request)
        return scanned, fast

    def test_min_max_count_identical_to_scan(self):
        # No NaN here: a NaN population (rightly) bails MIN/MAX to the
        # scan path, tested separately below.
        rows = [insert("data", f"d${i}", x=v) for i, v in enumerate([3, 1.5, 9, None, 0])]
        rows.append(insert("data", "d$missing"))
        kds = self.build(rows=rows)
        scanned, fast = self.run_both(
            kds, "RETRIEVE (FILE = data) (MIN(x), MAX(x), COUNT(x), COUNT(*))"
        )
        assert fast.phases[0].label == "aggregate-index"
        assert scanned.phases[0].label == "broadcast"
        assert [r.pairs() for r in fast.result.records] == [
            r.pairs() for r in scanned.result.records
        ]
        assert fast.response.total_ms < scanned.response.total_ms

    def test_string_only_attribute_uses_string_bounds(self):
        rows = [insert("data", f"d${i}", x=word) for i, word in enumerate(["pear", "fig", "yam"])]
        kds = self.build(rows=rows)
        scanned, fast = self.run_both(kds, "RETRIEVE (FILE = data) (MIN(x), MAX(x))")
        assert fast.phases[0].label == "aggregate-index"
        assert [r.pairs() for r in fast.result.records] == [
            r.pairs() for r in scanned.result.records
        ]

    def test_nan_population_bails_to_the_scan_path(self):
        # min/max over NaN is input-order-dependent: only a real scan
        # reproduces the evaluator's fold, so the digest path must bail.
        kds = self.build()
        trace = kds.execute(parse_request("RETRIEVE (FILE = data) (MIN(x))"))
        assert trace.phases[0].label == "broadcast"

    def test_extra_predicate_bails_to_the_scan_path(self):
        kds = self.build(rows=[insert("data", "d$0", x=1), insert("data", "d$1", x=5)])
        trace = kds.execute(
            parse_request("RETRIEVE ((FILE = data) AND (x > 2)) (COUNT(*))")
        )
        assert trace.phases[0].label == "broadcast"
        assert trace.result.records[0].get("COUNT(*)") == 1

    def test_unindexed_attribute_bails_but_count_star_does_not(self):
        kds = self.build(indexed=False, rows=[insert("data", "d$0", x=1)])
        counted = kds.execute(parse_request("RETRIEVE (FILE = data) (COUNT(*))"))
        assert counted.phases[0].label == "aggregate-index"
        assert counted.result.records[0].get("COUNT(*)") == 1
        bailed = kds.execute(parse_request("RETRIEVE (FILE = data) (MIN(x))"))
        assert bailed.phases[0].label == "broadcast"

    def test_plan_disabled_bails_to_the_scan_path(self):
        kds = self.build(rows=[insert("data", "d$0", x=1)])
        qc_runtime.config.plan_enabled = False
        try:
            trace = kds.execute(parse_request("RETRIEVE (FILE = data) (COUNT(*))"))
        finally:
            qc_runtime.config.plan_enabled = True
        assert trace.phases[0].label == "broadcast"


class TestObservability:
    def test_span_records_access_path_and_metrics_count_hits(self):
        obs = Observability(tracing=True)
        kds = KernelDatabaseSystem(backend_count=2, obs=obs)
        kds.controller.add_index("x")
        for request in mixed_rows():
            kds.execute(request)
        kds.execute(parse_request("RETRIEVE ((FILE = data) AND (x > 4)) (*)"))
        root = obs.last_trace
        paths = [
            span.attrs["plan.access_path"]
            for span in root.walk()
            if "plan.access_path" in span.attrs
        ]
        assert any("range" in path for path in paths)
        assert obs.metrics.counter_value("index.range_hits") >= 1
        kds.execute(parse_request("RETRIEVE (FILE = data) (COUNT(*))"))
        assert obs.metrics.counter_value("index.aggregate_hits") == 1


class TestDurability:
    QUERIES = (
        "RETRIEVE ((FILE = data) AND (x >= 4)) (*)",
        "RETRIEVE ((FILE = data) AND (x < 4)) (*)",
        "RETRIEVE (FILE = data) (MIN(x), MAX(x), COUNT(*))",
    )

    def fingerprint(self, kds):
        return [
            [
                (tuple(r.pairs()), r.text)
                for r in kds.execute(parse_request(text)).result.records
            ]
            for text in self.QUERIES
        ]

    def numeric_rows(self):
        return [insert("data", f"d${i}", x=i % 9) for i in range(18)]

    def test_checkpoint_restore_rebuilds_indexes_bit_identically(self, tmp_path):
        from repro.core.mlds import MLDS
        from repro.persistence import load_mlds, save_mlds

        factory = lambda: ABStore(indexed_attributes=["x"])
        mlds = MLDS(backend_count=2, store_factory=factory)
        for request in self.numeric_rows():
            mlds.kds.execute(request)
        expected = self.fingerprint(mlds.kds)
        save_mlds(mlds, tmp_path / "snap.json")

        restored = load_mlds(tmp_path / "snap.json", store_factory=factory, pruning=True)
        assert self.fingerprint(restored.kds) == expected
        # The rebuilt indexes actually serve the range: candidates only.
        backend = restored.kds.controller.backends[0]
        before = backend.store.stats.records_examined
        restored.kds.execute(parse_request("RETRIEVE ((FILE = data) AND (x = 0)) (*)"))
        examined = backend.store.stats.records_examined - before
        assert 0 < examined < backend.store.count()

    def test_wal_recovery_rebuilds_indexes_and_summaries(self, tmp_path):
        from repro.core.mlds import MLDS
        from repro.wal.recovery import recover_mlds

        factory = lambda: ABStore(indexed_attributes=["x"])
        mlds = MLDS(backend_count=2, store_factory=factory, wal=tmp_path / "wal")
        for request in self.numeric_rows():
            mlds.kds.execute(request)
        expected = self.fingerprint(mlds.kds)
        mlds.kds.shutdown()

        recovered = recover_mlds(
            tmp_path / "wal", store_factory=factory, pruning=True, attach_wal=False
        )
        assert self.fingerprint(recovered.kds) == expected
        # Pruning works off rebuilt value-range summaries immediately.
        trace = recovered.kds.execute(
            parse_request("RETRIEVE ((FILE = data) AND (x > 900)) (*)")
        )
        assert trace.result.count == 0
        assert trace.response.backend_ms == 0.0
