"""ProcessPoolEngine: worker-process parity with in-process execution.

The contract is the same one `test_engine.py` pins for threads, made
harder by the process boundary: merged results, record distribution,
simulated response times, per-backend accounting, and final store
contents must be bit-identical whether backends live in the controller
process or in worker processes talking framed messages over pipes —
under every ``--ipc-codec`` the transport supports.
"""

import pytest

from repro.abdl import parse_request
from repro.abdm import ClusteredStore, Directory
from repro.errors import ExecutionError
from repro.mbds import (
    KernelDatabaseSystem,
    ProcessPoolEngine,
    make_engine,
)
from repro.obs import Observability

from tests.mbds.test_engine import WORKLOAD, trace_fingerprint


def run_workload(engine, workers=None, backends=4):
    """Like test_engine.run_workload, but gathers farm state *before*
    shutdown: a stopped process engine has no stores left to inspect."""
    kds = KernelDatabaseSystem(backend_count=backends, engine=engine, workers=workers)
    try:
        fingerprints = [
            trace_fingerprint(kds.execute(parse_request(text)))
            for text in WORKLOAD
        ]
        return {
            "fingerprints": fingerprints,
            "distribution": kds.controller.distribution(),
            "clock": kds.clock.total_ms,
            "stores": [b.store.snapshot() for b in kds.controller.backends],
        }
    finally:
        kds.shutdown()


class TestProcessEngineParity:
    def test_process_matches_serial_across_all_operations(self):
        assert run_workload("serial") == run_workload("process")

    def test_process_deterministic_across_runs(self):
        assert run_workload("process") == run_workload("process")

    def test_fewer_workers_than_backends(self):
        serial = run_workload("serial", backends=6)
        process = run_workload("process", workers=2, backends=6)
        assert serial == process

    @pytest.mark.parametrize("codec", ["binary", "tagged", "json"])
    def test_every_ipc_codec_matches_serial(self, codec):
        serial = run_workload("serial")
        framed = run_workload(ProcessPoolEngine(ipc_codec=codec))
        assert serial == framed

    def test_clustered_store_factory_crosses_the_boundary(self):
        directory = Directory()
        directory.add_ranges("x", 0, 100, 4)

        def run(engine):
            kds = KernelDatabaseSystem(
                backend_count=3,
                engine=engine,
                store_factory=lambda: ClusteredStore(directory),
                pruning=True,
            )
            for i in range(30):
                kds.execute(
                    parse_request(
                        f"INSERT (<FILE, data>, <data, d${i}>, <x, {(i * 7) % 100}>)"
                    )
                )
            traces = [
                kds.execute(
                    parse_request(f"RETRIEVE ((FILE = data) AND (x = {v})) (*)")
                )
                for v in (3, 21, 49, 98)
            ]
            try:
                return [trace_fingerprint(t) for t in traces]
            finally:
                kds.shutdown()

        assert run("serial") == run("process")


class TestProcessEngineObservability:
    def run_traced(self, engine):
        obs = Observability(tracing=True)
        kds = KernelDatabaseSystem(backend_count=3, engine=engine, obs=obs)
        for i in range(9):
            kds.execute(parse_request(f"INSERT (<FILE, f>, <f, f${i}>, <k, {i}>)"))
        kds.execute(parse_request("RETRIEVE ((FILE = f) AND (k >= 4)) (*)"))
        root = obs.last_trace
        try:
            return kds, root
        finally:
            kds.shutdown()

    def test_worker_spans_graft_under_backend_spans(self):
        _, serial_root = self.run_traced("serial")
        _, process_root = self.run_traced("process")

        def shape(span):
            return (span.name, [shape(child) for child in span.children])

        assert shape(process_root) == shape(serial_root)

    def test_backend_spans_carry_simulated_and_scan_attrs(self):
        _, root = self.run_traced("process")
        backend_spans = [
            span for span in root.walk() if span.name.startswith("backend[")
        ]
        assert len(backend_spans) == 3
        for span in backend_spans:
            assert span.simulated_ms > 0
            assert "records_examined" in span.attrs


class TestProcessEngineLifecycle:
    def test_factory_builds_process_engine(self):
        engine = make_engine("process", workers=3)
        assert isinstance(engine, ProcessPoolEngine)
        assert engine.workers == 3

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolEngine(0)

    def test_worker_errors_propagate_and_workers_survive(self):
        kds = KernelDatabaseSystem(backend_count=2, engine="process")
        kds.execute(parse_request("INSERT (<FILE, f>, <f, f$0>)"))
        backend = kds.controller.backends[0]
        with pytest.raises(ExecutionError):
            backend._call({"cmd": "definitely_not_a_command"})
        # The worker shipped the error and kept serving.
        trace = kds.execute(parse_request("RETRIEVE (FILE = f) (*)"))
        assert trace.result.count == 1
        kds.shutdown()

    def test_use_after_shutdown_raises(self):
        kds = KernelDatabaseSystem(backend_count=2, engine="process")
        kds.execute(parse_request("INSERT (<FILE, f>, <f, f$0>)"))
        kds.shutdown()
        with pytest.raises(ExecutionError):
            kds.execute(parse_request("RETRIEVE (FILE = f) (*)"))

    def test_shutdown_is_idempotent(self):
        kds = KernelDatabaseSystem(backend_count=2, engine="process")
        kds.execute(parse_request("INSERT (<FILE, f>, <f, f$0>)"))
        kds.shutdown()
        kds.shutdown()


class TestProcessEnginePersistence:
    def test_snapshot_round_trips_worker_resident_stores(self, tmp_path):
        from repro.core.mlds import MLDS
        from repro.persistence import load_mlds, save_mlds

        mlds = MLDS(backend_count=3, engine="process")
        mlds.kds.define_database("db", "network", ["f"])
        for i in range(12):
            mlds.kds.execute(
                parse_request(f"INSERT (<FILE, f>, <f, f${i}>, <k, {i}>)")
            )
        expected = [b.store.snapshot() for b in mlds.kds.controller.backends]
        path = tmp_path / "farm.mlds.json"
        save_mlds(mlds, path)
        mlds.kds.shutdown()

        for engine in ("serial", "process"):
            restored = load_mlds(path, engine=engine)
            assert [
                b.store.snapshot() for b in restored.kds.controller.backends
            ] == expected
            trace = restored.kds.execute(
                parse_request("RETRIEVE ((FILE = f) AND (k >= 6)) (*)")
            )
            assert trace.result.count == 6
            restored.kds.shutdown()

    def test_transaction_abort_rolls_back_worker_stores(self):
        from repro.core.mlds import MLDS

        mlds = MLDS(backend_count=2, engine="process")
        for i in range(4):
            mlds.kds.execute(parse_request(f"INSERT (<FILE, f>, <f, f${i}>)"))
        before = [b.store.snapshot() for b in mlds.kds.controller.backends]
        mlds.kds.begin_transaction()
        mlds.kds.execute(parse_request("DELETE (FILE = f)"))
        mlds.kds.abort_transaction()
        assert [
            b.store.snapshot() for b in mlds.kds.controller.backends
        ] == before
        mlds.kds.shutdown()


class TestProcessWorkloadSanity:
    def test_workload_covers_every_request_kind(self):
        operations = {parse_request(text).operation for text in WORKLOAD}
        assert operations == {
            "INSERT",
            "RETRIEVE",
            "UPDATE",
            "DELETE",
            "RETRIEVE-COMMON",
        }
