"""The kernel lock manager: modes, compatibility, 2PL bookkeeping."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import LockTimeout
from repro.mbds.locks import (
    GLOBAL_RESOURCE,
    LockManager,
    LockMode,
    compatible,
    lock_items,
    supremum,
)

from tests.wal.conftest import delete, insert, update
from repro.abdl.ast import Modifier


class TestCompatibility:
    def test_intention_modes_are_mutually_compatible(self):
        for a in (LockMode.IS, LockMode.IX):
            for b in (LockMode.IS, LockMode.IX):
                assert compatible(a, b)

    def test_shared_compatible_with_shared_and_is(self):
        assert compatible(LockMode.S, LockMode.S)
        assert compatible(LockMode.S, LockMode.IS)
        assert not compatible(LockMode.S, LockMode.IX)

    def test_exclusive_compatible_with_nothing(self):
        for mode in LockMode:
            assert not compatible(LockMode.X, mode)
            assert not compatible(mode, LockMode.X)

    def test_supremum_upgrades(self):
        assert supremum(LockMode.IS, LockMode.S) is LockMode.S
        assert supremum(LockMode.S, LockMode.IS) is LockMode.S
        assert supremum(LockMode.IX, LockMode.X) is LockMode.X
        # No SIX mode: the conservative escalation is X.
        assert supremum(LockMode.S, LockMode.IX) is LockMode.X
        assert supremum(LockMode.IX, LockMode.S) is LockMode.X


class TestLockItems:
    def test_pinned_insert(self):
        items = dict(lock_items(insert("f", a=1)))
        assert items[GLOBAL_RESOURCE] is LockMode.IX
        assert items["f"] is LockMode.X

    def test_pinned_delete_and_update(self):
        for request in (
            delete(("FILE", "=", "f"), ("a", "=", 1)),
            update(Modifier("a", value=2), ("FILE", "=", "f")),
        ):
            items = dict(lock_items(request))
            assert items[GLOBAL_RESOURCE] is LockMode.IX
            assert items["f"] is LockMode.X

    def test_unpinned_mutation_locks_globally(self):
        items = dict(lock_items(delete(("a", "=", 1))))
        assert items == {GLOBAL_RESOURCE: LockMode.X}

    def test_retrieve_takes_shared_locks(self):
        from repro.abdl import parse_request

        items = dict(lock_items(parse_request("RETRIEVE (FILE = f) (*)")))
        assert items[GLOBAL_RESOURCE] is LockMode.IS
        assert items["f"] is LockMode.S

    def test_global_resource_sorts_first(self):
        items = lock_items(insert("f", a=1))
        assert items[0][0] == GLOBAL_RESOURCE


class TestLockManager:
    def test_readers_share(self):
        locks = LockManager()
        locks.acquire("r1", [("f", LockMode.S)])
        locks.acquire("r2", [("f", LockMode.S)])  # must not block
        assert set(locks.holders("f")) == {"r1", "r2"}

    def test_writer_excludes_reader(self):
        locks = LockManager(timeout=0.05)
        locks.acquire("w", [("f", LockMode.X)])
        with pytest.raises(LockTimeout) as exc:
            locks.acquire("r", [("f", LockMode.S)])
        assert "w" in str(exc.value) and "f" in str(exc.value)

    def test_reacquire_is_idempotent(self):
        locks = LockManager()
        locks.acquire("a", [("f", LockMode.X)])
        locks.acquire("a", [("f", LockMode.X)])
        locks.acquire("a", [("f", LockMode.S)])  # subsumed by X
        assert locks.held_by("a")["f"] is LockMode.X

    def test_upgrade_shared_to_exclusive(self):
        locks = LockManager()
        locks.acquire("a", [("f", LockMode.S)])
        locks.acquire("a", [("f", LockMode.X)])
        assert locks.held_by("a")["f"] is LockMode.X

    def test_release_wakes_waiter(self):
        locks = LockManager(timeout=5.0)
        locks.acquire("w", [("f", LockMode.X)])
        acquired = threading.Event()

        def waiter():
            locks.acquire("r", [("f", LockMode.S)])
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        assert not acquired.wait(0.05)
        locks.release_all("w")
        assert acquired.wait(2.0)
        thread.join()

    def test_release_all_forgets_owner(self):
        locks = LockManager()
        locks.acquire("a", [("f", LockMode.X), ("g", LockMode.S)])
        locks.release_all("a")
        assert locks.held_by("a") == {}
        locks.acquire("b", [("f", LockMode.X)])  # free again

    def test_exclusive_release_bumps_epoch(self):
        locks = LockManager()
        before = locks.epoch("f")
        locks.acquire("a", [("f", LockMode.X)])
        locks.release_all("a")
        assert locks.epoch("f") == before + 1

    def test_shared_release_keeps_epoch(self):
        locks = LockManager()
        before = locks.epoch("f")
        locks.acquire("a", [("f", LockMode.S)])
        locks.release_all("a")
        assert locks.epoch("f") == before

    def test_stats_count_waits_and_timeouts(self):
        locks = LockManager(timeout=0.05)
        locks.acquire("w", [("f", LockMode.X)])
        with pytest.raises(LockTimeout):
            locks.acquire("r", [("f", LockMode.S)])
        stats = locks.stats()
        assert stats["timeouts"] == 1
        assert stats["acquired"] >= 1

    def test_symmetric_upgrade_deadlock_fails_fast(self):
        # Both sessions read f, then both want to write it: under 2PL
        # neither can release its S lock, so the second upgrader must
        # fail immediately rather than stalling for the full timeout.
        locks = LockManager(timeout=30.0)
        locks.acquire("a", [("f", LockMode.S)])
        locks.acquire("b", [("f", LockMode.S)])
        upgraded = threading.Event()

        def upgrader():
            locks.acquire("a", [("f", LockMode.X)])
            upgraded.set()

        thread = threading.Thread(target=upgrader)
        thread.start()
        deadline = time.monotonic() + 5.0
        while "f" not in locks._upgrade_waiters:  # a is parked upgrading
            assert time.monotonic() < deadline
            time.sleep(0.005)
        start = time.monotonic()
        with pytest.raises(LockTimeout, match="upgrad"):
            locks.acquire("b", [("f", LockMode.X)])
        assert time.monotonic() - start < 5.0  # not the 30s deadline
        assert locks.stats()["upgrade_deadlocks"] == 1
        # The loser aborts (releasing its locks); the survivor upgrades.
        locks.release_all("b")
        assert upgraded.wait(5.0)
        thread.join()
        assert locks.held_by("a")["f"] is LockMode.X
        locks.release_all("a")
