"""The kernel lock manager: modes, compatibility, 2PL bookkeeping."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import LockTimeout
from repro.mbds.locks import (
    GLOBAL_RESOURCE,
    LockManager,
    LockMode,
    compatible,
    lock_items,
    supremum,
)

from tests.wal.conftest import delete, insert, update
from repro.abdl.ast import Modifier


class TestCompatibility:
    def test_intention_modes_are_mutually_compatible(self):
        for a in (LockMode.IS, LockMode.IX):
            for b in (LockMode.IS, LockMode.IX):
                assert compatible(a, b)

    def test_shared_compatible_with_shared_and_is(self):
        assert compatible(LockMode.S, LockMode.S)
        assert compatible(LockMode.S, LockMode.IS)
        assert not compatible(LockMode.S, LockMode.IX)

    def test_exclusive_compatible_with_nothing(self):
        for mode in LockMode:
            assert not compatible(LockMode.X, mode)
            assert not compatible(mode, LockMode.X)

    def test_supremum_upgrades(self):
        assert supremum(LockMode.IS, LockMode.S) is LockMode.S
        assert supremum(LockMode.S, LockMode.IS) is LockMode.S
        assert supremum(LockMode.IX, LockMode.X) is LockMode.X
        # No SIX mode: the conservative escalation is X.
        assert supremum(LockMode.S, LockMode.IX) is LockMode.X
        assert supremum(LockMode.IX, LockMode.S) is LockMode.X


class TestLockItems:
    def test_pinned_insert(self):
        items = dict(lock_items(insert("f", a=1)))
        assert items[GLOBAL_RESOURCE] is LockMode.IX
        assert items["f"] is LockMode.X

    def test_pinned_delete_and_update(self):
        for request in (
            delete(("FILE", "=", "f"), ("a", "=", 1)),
            update(Modifier("a", value=2), ("FILE", "=", "f")),
        ):
            items = dict(lock_items(request))
            assert items[GLOBAL_RESOURCE] is LockMode.IX
            assert items["f"] is LockMode.X

    def test_unpinned_mutation_locks_globally(self):
        items = dict(lock_items(delete(("a", "=", 1))))
        assert items == {GLOBAL_RESOURCE: LockMode.X}

    def test_retrieve_takes_shared_locks(self):
        from repro.abdl import parse_request

        items = dict(lock_items(parse_request("RETRIEVE (FILE = f) (*)")))
        assert items[GLOBAL_RESOURCE] is LockMode.IS
        assert items["f"] is LockMode.S

    def test_global_resource_sorts_first(self):
        items = lock_items(insert("f", a=1))
        assert items[0][0] == GLOBAL_RESOURCE


class TestLockManager:
    def test_readers_share(self):
        locks = LockManager()
        locks.acquire("r1", [("f", LockMode.S)])
        locks.acquire("r2", [("f", LockMode.S)])  # must not block
        assert set(locks.holders("f")) == {"r1", "r2"}

    def test_writer_excludes_reader(self):
        locks = LockManager(timeout=0.05)
        locks.acquire("w", [("f", LockMode.X)])
        with pytest.raises(LockTimeout) as exc:
            locks.acquire("r", [("f", LockMode.S)])
        assert "w" in str(exc.value) and "f" in str(exc.value)

    def test_reacquire_is_idempotent(self):
        locks = LockManager()
        locks.acquire("a", [("f", LockMode.X)])
        locks.acquire("a", [("f", LockMode.X)])
        locks.acquire("a", [("f", LockMode.S)])  # subsumed by X
        assert locks.held_by("a")["f"] is LockMode.X

    def test_upgrade_shared_to_exclusive(self):
        locks = LockManager()
        locks.acquire("a", [("f", LockMode.S)])
        locks.acquire("a", [("f", LockMode.X)])
        assert locks.held_by("a")["f"] is LockMode.X

    def test_release_wakes_waiter(self):
        locks = LockManager(timeout=5.0)
        locks.acquire("w", [("f", LockMode.X)])
        acquired = threading.Event()

        def waiter():
            locks.acquire("r", [("f", LockMode.S)])
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        assert not acquired.wait(0.05)
        locks.release_all("w")
        assert acquired.wait(2.0)
        thread.join()

    def test_release_all_forgets_owner(self):
        locks = LockManager()
        locks.acquire("a", [("f", LockMode.X), ("g", LockMode.S)])
        locks.release_all("a")
        assert locks.held_by("a") == {}
        locks.acquire("b", [("f", LockMode.X)])  # free again

    def test_exclusive_release_bumps_epoch(self):
        locks = LockManager()
        before = locks.epoch("f")
        locks.acquire("a", [("f", LockMode.X)])
        locks.release_all("a")
        assert locks.epoch("f") == before + 1

    def test_shared_release_keeps_epoch(self):
        locks = LockManager()
        before = locks.epoch("f")
        locks.acquire("a", [("f", LockMode.S)])
        locks.release_all("a")
        assert locks.epoch("f") == before

    def test_stats_count_waits_and_timeouts(self):
        locks = LockManager(timeout=0.05)
        locks.acquire("w", [("f", LockMode.X)])
        with pytest.raises(LockTimeout):
            locks.acquire("r", [("f", LockMode.S)])
        stats = locks.stats()
        assert stats["timeouts"] == 1
        assert stats["acquired"] >= 1

    def test_symmetric_upgrade_deadlock_fails_fast(self):
        # Both sessions read f, then both want to write it: under 2PL
        # neither can release its S lock, so the second upgrader must
        # fail immediately rather than stalling for the full timeout.
        locks = LockManager(timeout=30.0)
        locks.acquire("a", [("f", LockMode.S)])
        locks.acquire("b", [("f", LockMode.S)])
        upgraded = threading.Event()

        def upgrader():
            locks.acquire("a", [("f", LockMode.X)])
            upgraded.set()

        thread = threading.Thread(target=upgrader)
        thread.start()
        deadline = time.monotonic() + 5.0
        while "f" not in locks._upgrade_waiters:  # a is parked upgrading
            assert time.monotonic() < deadline
            time.sleep(0.005)
        start = time.monotonic()
        with pytest.raises(LockTimeout, match="upgrad"):
            locks.acquire("b", [("f", LockMode.X)])
        assert time.monotonic() - start < 5.0  # not the 30s deadline
        assert locks.stats()["upgrade_deadlocks"] == 1
        # The loser aborts (releasing its locks); the survivor upgrades.
        locks.release_all("b")
        assert upgraded.wait(5.0)
        thread.join()
        assert locks.held_by("a")["f"] is LockMode.X
        locks.release_all("a")


class TestDeadlockDetection:
    def _park(self, locks, owner: str, resource: str) -> None:
        """Spin until *owner* is parked waiting (its wait info recorded)."""
        deadline = time.monotonic() + 5.0
        while True:
            with locks._cv:
                info = locks._waiting.get(owner)
            if info is not None and info[0] == resource:
                return
            assert time.monotonic() < deadline, f"{owner} never parked"
            time.sleep(0.005)

    def test_cross_cycle_aborts_youngest(self):
        # a holds f and waits for g; b holds g and wants f — a cycle no
        # release can break under 2PL.  b locked most recently, so b is
        # the victim and raises immediately; the timeout (30s) is never
        # the mechanism.
        from repro.errors import DeadlockDetected

        locks = LockManager(timeout=30.0)
        locks.acquire("a", [("f", LockMode.X)])
        locks.acquire("b", [("g", LockMode.X)])
        survivor_done = threading.Event()

        def survivor():
            locks.acquire("a", [("g", LockMode.X)])
            survivor_done.set()

        thread = threading.Thread(target=survivor)
        thread.start()
        self._park(locks, "a", "g")
        start = time.monotonic()
        with pytest.raises(DeadlockDetected, match="victim"):
            locks.acquire("b", [("f", LockMode.X)])
        assert time.monotonic() - start < 5.0  # detected, not timed out
        assert locks.stats()["deadlocks"] == 1
        # The victim aborts: its release unblocks the survivor.
        locks.release_all("b")
        assert survivor_done.wait(5.0)
        thread.join()
        assert locks.held_by("a")["g"] is LockMode.X
        locks.release_all("a")

    def test_parked_victim_is_woken_and_aborted(self):
        # When the *closing* request belongs to the elder, the detector
        # must reach across and abort the younger owner that is already
        # parked — it wakes and raises instead of the elder failing.
        from repro.errors import DeadlockDetected

        locks = LockManager(timeout=30.0)
        locks.acquire("elder", [("f", LockMode.X)])
        locks.acquire("younger", [("g", LockMode.X)])
        failures: list = []

        def younger():
            try:
                locks.acquire("younger", [("f", LockMode.X)])
            except DeadlockDetected as exc:
                failures.append(exc)
                locks.release_all("younger")  # what the kernel's abort does

        thread = threading.Thread(target=younger)
        thread.start()
        self._park(locks, "younger", "f")
        # Elder closes the cycle and must NOT be chosen: it acquires g
        # as soon as the younger victim aborts and releases.
        locks.acquire("elder", [("g", LockMode.X)])
        thread.join(5.0)
        assert not thread.is_alive()
        assert len(failures) == 1
        assert locks.stats()["deadlocks"] == 1
        locks.release_all("elder")

    def test_deadlock_is_a_lock_timeout_subclass(self):
        # Every existing abort-and-retry loop catches LockTimeout; the
        # detector's error must flow through those handlers unchanged.
        from repro.errors import DeadlockDetected

        assert issubclass(DeadlockDetected, LockTimeout)

    def test_deadlock_metric_exported_when_bound(self):
        from repro.errors import DeadlockDetected
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        locks = LockManager(timeout=30.0)
        locks.bind_metrics(registry)
        locks.acquire("a", [("f", LockMode.X)])
        locks.acquire("b", [("g", LockMode.X)])
        thread = threading.Thread(
            target=lambda: locks.acquire("a", [("g", LockMode.X)])
        )
        thread.start()
        self._park(locks, "a", "g")
        with pytest.raises(DeadlockDetected):
            locks.acquire("b", [("f", LockMode.X)])
        locks.release_all("b")
        thread.join(5.0)
        assert registry.counter_value("lock.deadlocks") == 1
        locks.release_all("a")


class TestFairQueueing:
    def test_readers_cannot_starve_a_parked_writer(self):
        # Reader preference is the classic pathology: S is compatible
        # with S, so with naive grants a steady read stream holds the
        # resource forever and a parked X writer waits unboundedly.
        # Fair queueing bars the late reader until the writer is done.
        locks = LockManager(timeout=30.0)
        locks.acquire("r1", [("f", LockMode.S)])
        order: list[str] = []

        def writer():
            locks.acquire("w", [("f", LockMode.X)])
            order.append("w")
            locks.release_all("w")

        def late_reader():
            locks.acquire("r2", [("f", LockMode.S)])
            order.append("r2")
            locks.release_all("r2")

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        deadline = time.monotonic() + 5.0
        while True:  # wait until w is queued on f
            with locks._cv:
                queued = any(o == "w" for _, o, _ in locks._queue.get("f", ()))
            if queued:
                break
            assert time.monotonic() < deadline
            time.sleep(0.005)
        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        time.sleep(0.05)
        assert order == []  # r2 yields to the queued writer
        locks.release_all("r1")
        writer_thread.join(5.0)
        reader_thread.join(5.0)
        assert order == ["w", "r2"]

    def test_upgrade_jumps_the_queue(self):
        # The S holder upgrading to X must not queue behind a stranger's
        # fresh X request — the stranger cannot be granted before the
        # holder releases anyway, so queueing the upgrade would deadlock.
        locks = LockManager(timeout=30.0)
        locks.acquire("a", [("f", LockMode.S)])
        granted = threading.Event()

        def stranger():
            locks.acquire("b", [("f", LockMode.X)])
            granted.set()
            locks.release_all("b")

        thread = threading.Thread(target=stranger)
        thread.start()
        deadline = time.monotonic() + 5.0
        while True:
            with locks._cv:
                queued = any(o == "b" for _, o, _ in locks._queue.get("f", ()))
            if queued:
                break
            assert time.monotonic() < deadline
            time.sleep(0.005)
        locks.acquire("a", [("f", LockMode.X)])  # upgrade, immediately
        assert locks.held_by("a")["f"] is LockMode.X
        locks.release_all("a")
        assert granted.wait(5.0)
        thread.join()

    def test_wait_histograms_record_mode_and_duration(self):
        locks = LockManager(timeout=5.0)
        locks.acquire("w", [("f", LockMode.X)])
        done = threading.Event()

        def reader():
            locks.acquire("r", [("f", LockMode.S)])
            done.set()

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        locks.release_all("w")
        assert done.wait(5.0)
        thread.join()
        hists = locks.wait_histograms()
        assert set(hists) == {"S"}
        assert hists["S"]["count"] == 1
        assert hists["S"]["sum"] >= 40.0  # held ~50ms before release
