"""HashShardPlacement routing and the LeastLoaded rebalance regression.

Routing's one invariant: a routed request returns exactly the records a
broadcast would have (as a multiset — backend concatenation order may
differ between placements, never within one).  Everything else — how few
backends it touches — is performance, asserted through per-backend
accounting and the route metrics.
"""

import pytest

from repro.abdl import parse_request
from repro.core.mlds import MLDS
from repro.mbds import (
    BackendController,
    HashShardPlacement,
    KernelDatabaseSystem,
    LeastLoadedPlacement,
)
from repro.obs import Observability


def insert(file_name, value, **attrs):
    keywords = "".join(f", <{k}, {v}>" for k, v in attrs.items())
    return parse_request(f"INSERT (<FILE, {file_name}>, <{file_name}, {value}>{keywords})")


def touched(trace):
    return [i for i, ms in enumerate(trace.per_backend_ms) if ms > 0.0]


class TestFileShardRouting:
    def build(self, placement=None, backends=4):
        controller = BackendController(backends, placement=placement)
        for i in range(12):
            controller.execute(insert("a", f"a${i}", k=i))
            controller.execute(insert("b", f"b${i}", k=i))
        return controller

    def test_single_file_requests_touch_one_backend(self):
        controller = self.build(HashShardPlacement())
        for text in (
            "RETRIEVE (FILE = a) (*)",
            "RETRIEVE ((FILE = a) AND (k >= 3)) (*)",
            "DELETE ((FILE = b) AND (k < 2))",
        ):
            trace = controller.execute(parse_request(text))
            assert len(touched(trace)) <= 1

    def test_routed_results_match_broadcast(self):
        routed = self.build(HashShardPlacement())
        broadcast = self.build()  # default round-robin: full broadcasts
        for text in (
            "RETRIEVE (FILE = a) (*)",
            "RETRIEVE ((FILE = a) AND (k >= 3)) (k)",
            "RETRIEVE ((FILE = a) OR (FILE = b)) (*)",
        ):
            a = routed.execute(parse_request(text)).result
            b = broadcast.execute(parse_request(text)).result
            assert a.count == b.count
            assert sorted(
                tuple(r.pairs()) for r in a.records
            ) == sorted(tuple(r.pairs()) for r in b.records)

    def test_unpinned_query_broadcasts(self):
        controller = self.build(HashShardPlacement())
        trace = controller.execute(parse_request("RETRIEVE (k = 3) (*)"))
        assert trace.result.count == 2  # one record per file
        assert len(touched(trace)) >= 1  # no routing claim; just correct

    def test_route_metrics_count_skips(self):
        obs = Observability()
        controller = BackendController(
            4, placement=HashShardPlacement(), obs=obs
        )
        for i in range(8):
            controller.execute(insert("a", f"a${i}"))
        controller.execute(parse_request("RETRIEVE (FILE = a) (*)"))
        assert obs.metrics.counter_value("route.requests") >= 1
        assert obs.metrics.counter_value("route.skipped_backends") >= 3


class TestValueShardRouting:
    def build(self, backends=4):
        placement = HashShardPlacement(key_attributes={"a": "k"})
        controller = BackendController(backends, placement=placement)
        for i in range(24):
            controller.execute(insert("a", f"a${i}", k=i % 6))
        return controller, placement

    def test_value_sharding_spreads_the_file(self):
        controller, _ = self.build()
        assert len([n for n in controller.distribution() if n > 0]) > 1

    def test_equality_on_key_touches_one_backend(self):
        controller, _ = self.build()
        trace = controller.execute(
            parse_request("RETRIEVE ((FILE = a) AND (k = 3)) (*)")
        )
        assert trace.result.count == 4
        assert len(touched(trace)) == 1

    def test_int_and_float_key_values_shard_alike(self):
        controller, _ = self.build()
        for literal in ("3", "3.0"):
            trace = controller.execute(
                parse_request(f"RETRIEVE ((FILE = a) AND (k = {literal})) (*)")
            )
            assert trace.result.count == 4

    def test_range_on_key_cannot_route(self):
        controller, _ = self.build()
        trace = controller.execute(
            parse_request("RETRIEVE ((FILE = a) AND (k > 3)) (*)")
        )
        assert trace.result.count == 8  # k in {4, 5}

    def test_update_to_key_attribute_taints_value_routing(self):
        controller, placement = self.build()
        controller.execute(
            parse_request("UPDATE ((FILE = a) AND (k = 1)) (k = k + 100)")
        )
        assert "a" in placement.tainted_files
        # Records with the rewritten key now live on a shard their value
        # does not hash to; equality routing must broadcast to find them.
        trace = controller.execute(
            parse_request("RETRIEVE ((FILE = a) AND (k = 101)) (*)")
        )
        assert trace.result.count == 4

    def test_update_to_other_attribute_keeps_routing(self):
        controller, placement = self.build()
        controller.execute(
            parse_request("UPDATE ((FILE = a) AND (k = 1)) (a = patched)")
        )
        assert "a" not in placement.tainted_files
        trace = controller.execute(
            parse_request("RETRIEVE ((FILE = a) AND (k = 2)) (*)")
        )
        assert len(touched(trace)) == 1


class TestHashShardDurability:
    def test_snapshot_round_trips_key_attributes_and_taints(self, tmp_path):
        from repro.persistence import load_mlds, save_mlds

        mlds = MLDS(
            backend_count=4,
            placement=HashShardPlacement(key_attributes={"a": "k"}),
        )
        for i in range(12):
            mlds.kds.execute(insert("a", f"a${i}", k=i % 3))
        mlds.kds.execute(
            parse_request("UPDATE ((FILE = a) AND (k = 0)) (k = k + 50)")
        )
        path = tmp_path / "farm.mlds.json"
        save_mlds(mlds, path)

        restored = load_mlds(path, placement=HashShardPlacement())
        placement = restored.kds.controller.placement
        assert placement.key_attributes == {"a": "k"}
        assert placement.tainted_files == frozenset({"a"})
        trace = restored.kds.execute(
            parse_request("RETRIEVE ((FILE = a) AND (k = 50)) (*)")
        )
        assert trace.result.count == 4

    def test_recovery_replay_reconstructs_taints(self, tmp_path):
        from repro.wal.recovery import recover_mlds

        mlds = MLDS(
            backend_count=4,
            placement=HashShardPlacement(key_attributes={"a": "k"}),
            wal=tmp_path / "wal",
        )
        for i in range(12):
            mlds.kds.execute(insert("a", f"a${i}", k=i % 3))
        mlds.kds.execute(
            parse_request("UPDATE ((FILE = a) AND (k = 1)) (k = k + 50)")
        )
        mlds.kds.shutdown()

        recovered = recover_mlds(
            tmp_path / "wal",
            placement=HashShardPlacement(key_attributes={"a": "k"}),
            attach_wal=False,
        )
        placement = recovered.kds.controller.placement
        assert placement.tainted_files == frozenset({"a"})
        trace = recovered.kds.execute(
            parse_request("RETRIEVE ((FILE = a) AND (k = 51)) (*)")
        )
        assert trace.result.count == 4


class TestLeastLoadedRebalance:
    def test_drop_database_resets_load_counts(self):
        """Regression: loads once only ever grew, so a bulk delete left
        the policy placing against a phantom farm."""
        kds = KernelDatabaseSystem(
            backend_count=3, placement=LeastLoadedPlacement()
        )
        kds.define_database("big", "network", ["big"])
        kds.define_database("small", "network", ["small"])
        # Load backend 0 heavily through the placement policy itself.
        for i in range(30):
            kds.execute(insert("big", f"b${i}"))
        for i in range(3):
            kds.execute(insert("small", f"s${i}"))
        kds.drop_database("big")
        assert sum(kds.controller.distribution()) == 3
        for i in range(9):
            kds.execute(insert("small", f"t${i}"))
        low, high = min(kds.controller.distribution()), max(
            kds.controller.distribution()
        )
        assert high - low <= 1  # rebalanced, not skewed by dropped records

    def test_restore_resets_load_counts(self, tmp_path):
        from repro.persistence import load_mlds, save_mlds

        mlds = MLDS(backend_count=3, placement=LeastLoadedPlacement())
        for i in range(10):
            mlds.kds.execute(insert("f", f"f${i}"))
        path = tmp_path / "farm.mlds.json"
        save_mlds(mlds, path)

        restored = load_mlds(path, placement=LeastLoadedPlacement())
        policy = restored.kds.controller.placement
        assert policy._loads == restored.kds.controller.distribution()
        for i in range(6):
            restored.kds.execute(insert("f", f"g${i}"))
        distribution = restored.kds.controller.distribution()
        assert max(distribution) - min(distribution) <= 1


class TestRoutingAcrossEngines:
    @pytest.mark.parametrize("engine", ["serial", "threads", "process"])
    def test_hash_shard_parity(self, engine):
        def run(engine_name):
            kds = KernelDatabaseSystem(
                backend_count=4,
                engine=engine_name,
                placement=HashShardPlacement(key_attributes={"a": "k"}),
            )
            try:
                for i in range(16):
                    kds.execute(insert("a", f"a${i}", k=i % 4))
                out = []
                for text in (
                    "RETRIEVE ((FILE = a) AND (k = 2)) (*)",
                    "UPDATE ((FILE = a) AND (k = 0)) (k = k + 9)",
                    "RETRIEVE ((FILE = a) AND (k = 9)) (*)",
                ):
                    trace = kds.execute(parse_request(text))
                    out.append(
                        (
                            trace.result.count,
                            [r.pairs() for r in trace.result.records],
                            trace.response.total_ms,
                            trace.per_backend_ms,
                        )
                    )
                out.append(kds.clock.total_ms)
                return out
            finally:
                kds.shutdown()

        assert run("serial") == run(engine)
