"""MBDS performance claims (thesis I.B.2), as correctness tests.

The benchmarks regenerate the full curves; these tests pin the *shape*:

1. response time decreases nearly reciprocally in the number of backends
   at fixed database size, and
2. response time is invariant when backends grow proportionally with the
   database.
"""


from repro.abdl import parse_request
from repro.mbds import KernelDatabaseSystem


def populate(kds, records):
    for i in range(records):
        kds.execute(
            parse_request(f"INSERT (<FILE, data>, <data, d${i}>, <x, {i}>)")
        )
    kds.reset_clock()


def query_time(kds):
    trace = kds.execute(parse_request("RETRIEVE ((FILE = data) AND (x < 0)) (*)"))
    return trace.response.total_ms


class TestReciprocalSpeedup:
    def test_more_backends_cut_response_time(self):
        times = {}
        for backends in (1, 2, 4, 8):
            kds = KernelDatabaseSystem(backend_count=backends)
            populate(kds, 800)
            times[backends] = query_time(kds)
        assert times[2] < times[1]
        assert times[4] < times[2]
        assert times[8] < times[4]

    def test_speedup_is_nearly_reciprocal(self):
        kds1 = KernelDatabaseSystem(backend_count=1)
        populate(kds1, 1600)
        kds8 = KernelDatabaseSystem(backend_count=8)
        populate(kds8, 1600)
        speedup = query_time(kds1) / query_time(kds8)
        # Fixed per-request costs (access, broadcast) keep it below 8; the
        # scan term dominates at this size so it lands well above half.
        assert 4.0 < speedup <= 8.0


class TestCapacityInvariance:
    def test_response_time_invariant_under_proportional_growth(self):
        times = []
        for backends in (1, 2, 4, 8):
            kds = KernelDatabaseSystem(backend_count=backends)
            populate(kds, 400 * backends)
            times.append(query_time(kds))
        spread = max(times) / min(times)
        # The per-backend slice is constant, so response times stay within
        # a few percent of each other (merge costs are zero for an empty
        # answer; only fixed terms vary).
        assert spread < 1.05

    def test_per_backend_slice_is_constant(self):
        for backends in (2, 4):
            kds = KernelDatabaseSystem(backend_count=backends)
            populate(kds, 400 * backends)
            assert kds.controller.distribution() == [400] * backends
