"""The MBDS analytic timing model."""

import pytest

from repro.mbds import ResponseTime, TimingModel


@pytest.fixture()
def timing():
    return TimingModel()


class TestPages:
    def test_zero_records(self, timing):
        assert timing.pages(0) == 0

    def test_partial_page_rounds_up(self, timing):
        assert timing.pages(1) == 1
        assert timing.pages(timing.records_per_page + 1) == 2

    def test_exact_pages(self, timing):
        assert timing.pages(timing.records_per_page * 3) == 3


class TestBackendCosts:
    def test_scan_includes_access(self, timing):
        assert timing.backend_scan_ms(0, 0) == timing.access_ms

    def test_scan_scales_with_pages(self, timing):
        one = timing.backend_scan_ms(timing.records_per_page, 0)
        three = timing.backend_scan_ms(timing.records_per_page * 3, 0)
        assert three - one == pytest.approx(2 * timing.page_scan_ms)

    def test_selection_cost(self, timing):
        base = timing.backend_scan_ms(100, 0)
        selected = timing.backend_scan_ms(100, 10)
        assert selected - base == pytest.approx(10 * timing.select_record_ms)

    def test_insert_cost(self, timing):
        assert timing.backend_insert_ms() == timing.access_ms + timing.insert_ms


class TestControllerCosts:
    def test_broadcast_only(self, timing):
        assert timing.controller_ms(0) == timing.broadcast_ms

    def test_merge_scales(self, timing):
        assert timing.controller_ms(100) == pytest.approx(
            timing.broadcast_ms + 100 * timing.merge_record_ms
        )


class TestResponseTime:
    def test_add_accumulates(self):
        response = ResponseTime()
        response.add(10.0, 2.0)
        response.add(5.0, 1.0)
        assert response.backend_ms == 15.0
        assert response.controller_ms == 3.0
        assert response.total_ms == 18.0

    def test_plus_operator(self):
        a = ResponseTime(10, 8, 2)
        b = ResponseTime(5, 4, 1)
        combined = a + b
        assert (combined.total_ms, combined.backend_ms, combined.controller_ms) == (15, 12, 3)
