"""The relational model and the SQL parsers."""

import pytest

from repro.errors import ParseError, SchemaError
from repro.relational import (
    Column,
    ColumnType,
    Relation,
    RelationalSchema,
    parse_relational_schema,
    parse_script,
    parse_statement,
    sql,
)

DDL = """
DATABASE registrar;
CREATE TABLE student (sid INT, sname CHAR(30), major CHAR(20), PRIMARY KEY (sid));
CREATE TABLE enrollment (sid INT, cid INT, grade CHAR(2), points FLOAT,
                         PRIMARY KEY (sid, cid));
"""


class TestModel:
    def test_column_types_accept(self):
        assert ColumnType.INT.accepts(3)
        assert not ColumnType.INT.accepts(3.5)
        assert ColumnType.FLOAT.accepts(3)
        assert ColumnType.CHAR.accepts("x")
        assert ColumnType.CHAR.accepts(None)  # NULLs pass typing

    def test_relation_lookup(self):
        relation = Relation("r", [Column("a", ColumnType.INT)])
        assert relation.column("a").type is ColumnType.INT
        with pytest.raises(SchemaError):
            relation.require_column("ghost")

    def test_schema_rejects_duplicates(self):
        schema = RelationalSchema("d")
        schema.add_relation(Relation("r", [Column("a", ColumnType.INT)]))
        with pytest.raises(SchemaError):
            schema.add_relation(Relation("r", [Column("a", ColumnType.INT)]))

    def test_duplicate_column_rejected(self):
        schema = RelationalSchema("d")
        with pytest.raises(SchemaError):
            schema.add_relation(
                Relation("r", [Column("a", ColumnType.INT), Column("a", ColumnType.INT)])
            )

    def test_primary_key_must_exist(self):
        schema = RelationalSchema("d")
        with pytest.raises(SchemaError):
            schema.add_relation(
                Relation("r", [Column("a", ColumnType.INT)], primary_key=["ghost"])
            )

    def test_render(self):
        schema = parse_relational_schema(DDL)
        text = schema.render()
        assert "CREATE TABLE student" in text
        assert "PRIMARY KEY (sid, cid)" in text


class TestDDLParser:
    def test_full_schema(self):
        schema = parse_relational_schema(DDL)
        assert set(schema.relations) == {"student", "enrollment"}
        assert schema.relation("student").primary_key == ["sid"]
        assert schema.relation("enrollment").primary_key == ["sid", "cid"]
        assert schema.relation("student").column("sname").length == 30
        assert schema.relation("enrollment").column("points").type is ColumnType.FLOAT

    def test_integer_alias(self):
        schema = parse_relational_schema(
            "DATABASE d;\nCREATE TABLE t (a INTEGER);"
        )
        assert schema.relation("t").column("a").type is ColumnType.INT

    def test_empty_table_rejected(self):
        with pytest.raises(ParseError):
            parse_relational_schema("DATABASE d;\nCREATE TABLE t (PRIMARY KEY (a));")

    def test_missing_database_header(self):
        with pytest.raises(ParseError):
            parse_relational_schema("CREATE TABLE t (a INT);")


class TestDMLParser:
    def test_select_star(self):
        statement = parse_statement("SELECT * FROM student")
        assert statement.items[0].star
        assert statement.tables == ("student",)

    def test_select_where_dnf(self):
        statement = parse_statement(
            "SELECT sname FROM student WHERE major = 'cs' AND sid > 3 OR sid = 1"
        )
        assert len(statement.where.clauses) == 2
        assert len(statement.where.clauses[0]) == 2

    def test_not_equal_spellings(self):
        for op in ("<>", "!="):
            statement = parse_statement(f"SELECT * FROM t WHERE a {op} 1")
            assert list(statement.where.comparisons())[0].operator == "!="

    def test_aggregates_and_group_by(self):
        statement = parse_statement(
            "SELECT cid, COUNT(*), AVG(points) FROM enrollment GROUP BY cid"
        )
        assert statement.items[1].aggregate == "COUNT" and statement.items[1].star
        assert statement.items[2].aggregate == "AVG"
        assert statement.group_by.column == "cid"

    def test_join_condition(self):
        statement = parse_statement(
            "SELECT sname FROM student, enrollment WHERE student.sid = enrollment.sid"
        )
        comparison = list(statement.where.comparisons())[0]
        assert comparison.is_join
        assert comparison.left.table == "student"
        assert comparison.right.table == "enrollment"

    def test_three_tables_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM a, b, c")

    def test_insert_positional(self):
        statement = parse_statement("INSERT INTO student VALUES (1, 'Ann', 'cs')")
        assert statement.columns == ()
        assert statement.values == (1, "Ann", "cs")

    def test_insert_named_columns(self):
        statement = parse_statement("INSERT INTO student (sid, sname) VALUES (1, 'A')")
        assert statement.columns == ("sid", "sname")

    def test_insert_null_and_negative(self):
        statement = parse_statement("INSERT INTO t VALUES (NULL, -3)")
        assert statement.values == (None, -3)

    def test_update(self):
        statement = parse_statement("UPDATE t SET a = 1, b = 'x' WHERE c = 2")
        assert statement.assignments == (("a", 1), ("b", "x"))
        assert statement.where is not None

    def test_delete(self):
        statement = parse_statement("DELETE FROM t WHERE a = 1")
        assert statement.table == "t"

    def test_delete_without_where(self):
        assert parse_statement("DELETE FROM t").where is None

    def test_script(self):
        statements = parse_script(
            "INSERT INTO t VALUES (1); SELECT * FROM t; DELETE FROM t;"
        )
        assert len(statements) == 3

    def test_malformed(self):
        for text in ("FROB t", "SELECT FROM t", "INSERT t VALUES (1)", "UPDATE t a = 1"):
            with pytest.raises(ParseError):
                parse_statement(text)
