"""The SQL language interface engine over AB(relational)."""

import pytest

from repro import MLDS
from repro.errors import ConstraintViolation, SchemaError, TranslationError

DDL = """
DATABASE registrar;
CREATE TABLE student (sid INT, sname CHAR(30), major CHAR(20), PRIMARY KEY (sid));
CREATE TABLE enrollment (sid INT, cid INT, grade CHAR(2), points FLOAT,
                         PRIMARY KEY (sid, cid));
"""


@pytest.fixture()
def session():
    mlds = MLDS(backend_count=2)
    mlds.define_relational_database(DDL)
    s = mlds.open_sql_session("registrar")
    s.run(
        "INSERT INTO student VALUES (1, 'Ann', 'cs');"
        "INSERT INTO student VALUES (2, 'Bob', 'math');"
        "INSERT INTO student VALUES (3, 'Cal', 'cs');"
        "INSERT INTO enrollment VALUES (1, 7, 'A', 4.0);"
        "INSERT INTO enrollment VALUES (2, 7, 'B', 3.0);"
        "INSERT INTO enrollment VALUES (3, 7, 'C', 2.0);"
        "INSERT INTO enrollment VALUES (1, 8, 'A', 4.0);"
    )
    return s


class TestSelect:
    def test_projection_and_where(self, session):
        result = session.execute("SELECT sname FROM student WHERE major = 'cs'")
        assert result.columns == ["sname"]
        assert {r["sname"] for r in result.rows} == {"Ann", "Cal"}

    def test_select_star(self, session):
        result = session.execute("SELECT * FROM student WHERE sid = 2")
        assert result.rows == [{"sid": 2, "sname": "Bob", "major": "math"}]

    def test_where_translated_to_dnf_retrieve(self, session):
        result = session.execute(
            "SELECT sname FROM student WHERE major = 'cs' OR sid = 2"
        )
        assert len(result.rows) == 3
        assert " OR " in result.requests[0]

    def test_comparison_operators(self, session):
        result = session.execute("SELECT sid FROM enrollment WHERE points >= 3.0")
        assert len(result.rows) == 3

    def test_aggregates_grouped(self, session):
        result = session.execute(
            "SELECT cid, COUNT(*), AVG(points) FROM enrollment GROUP BY cid"
        )
        rows = {r["cid"]: r for r in result.rows}
        assert rows[7]["COUNT(*)"] == 3
        assert rows[7]["AVG(points)"] == pytest.approx(3.0)
        assert rows[8]["COUNT(*)"] == 1

    def test_global_aggregate(self, session):
        result = session.execute("SELECT COUNT(*) FROM student")
        assert result.rows == [{"COUNT(*)": 3}]

    def test_unknown_column_rejected(self, session):
        with pytest.raises(SchemaError):
            session.execute("SELECT ghost FROM student")

    def test_unknown_table_rejected(self, session):
        with pytest.raises(SchemaError):
            session.execute("SELECT * FROM ghost")


class TestJoin:
    def test_equi_join_via_retrieve_common(self, session):
        result = session.execute(
            "SELECT sname, grade FROM student, enrollment "
            "WHERE student.sid = enrollment.sid AND cid = 7"
        )
        assert result.requests[0].startswith("RETRIEVE-COMMON")
        assert {(r["sname"], r["grade"]) for r in result.rows} == {
            ("Ann", "A"),
            ("Bob", "B"),
            ("Cal", "C"),
        }

    def test_join_with_residual_predicates_on_both_sides(self, session):
        result = session.execute(
            "SELECT sname FROM student, enrollment "
            "WHERE student.sid = enrollment.sid AND major = 'cs' AND grade = 'A'"
        )
        names = {r["sname"] for r in result.rows}
        assert names == {"Ann"}

    def test_join_needs_equality(self, session):
        with pytest.raises(TranslationError):
            session.execute(
                "SELECT sname FROM student, enrollment "
                "WHERE student.sid <> enrollment.sid"
            )

    def test_join_needs_cross_table_condition(self, session):
        with pytest.raises(TranslationError):
            session.execute("SELECT sname FROM student, enrollment WHERE cid = 7")

    def test_ambiguous_column_rejected(self, session):
        with pytest.raises(SchemaError):
            session.execute(
                "SELECT sid FROM student, enrollment WHERE student.sid = enrollment.sid"
            )

    def test_join_star_projects_qualified_columns(self, session):
        result = session.execute(
            "SELECT * FROM student, enrollment WHERE student.sid = enrollment.sid"
        )
        assert "student.sname" in result.columns
        assert "enrollment.grade" in result.columns
        assert len(result.rows) == 4


class TestInsert:
    def test_positional_insert(self, session):
        session.execute("INSERT INTO student VALUES (4, 'Dee', 'physics')")
        result = session.execute("SELECT sname FROM student WHERE sid = 4")
        assert result.rows == [{"sname": "Dee"}]

    def test_named_columns_default_null(self, session):
        session.execute("INSERT INTO student (sid, sname) VALUES (5, 'Eve')")
        result = session.execute("SELECT major FROM student WHERE sid = 5")
        assert result.rows == [{"major": None}]

    def test_arity_mismatch(self, session):
        with pytest.raises(SchemaError):
            session.execute("INSERT INTO student VALUES (9)")

    def test_primary_key_violation(self, session):
        with pytest.raises(ConstraintViolation):
            session.execute("INSERT INTO student VALUES (1, 'Dup', 'x')")

    def test_composite_key_allows_partial_match(self, session):
        # (1, 9) is new even though sid 1 exists.
        session.execute("INSERT INTO enrollment VALUES (1, 9, 'B', 3.0)")
        with pytest.raises(ConstraintViolation):
            session.execute("INSERT INTO enrollment VALUES (1, 9, 'A', 4.0)")

    def test_type_checking(self, session):
        with pytest.raises(SchemaError):
            session.execute("INSERT INTO student VALUES ('one', 'Ann', 'cs')")

    def test_char_length_enforced(self, session):
        with pytest.raises(SchemaError):
            session.execute(
                "INSERT INTO enrollment VALUES (6, 6, 'TOO LONG', 1.0)"
            )


class TestUpdateDelete:
    def test_update_with_where(self, session):
        result = session.execute("UPDATE enrollment SET grade = 'F' WHERE points < 2.5")
        assert result.touched == 1
        check = session.execute("SELECT COUNT(*) FROM enrollment WHERE grade = 'F'")
        assert check.rows[0]["COUNT(*)"] == 1

    def test_multi_assignment_update(self, session):
        session.execute("UPDATE enrollment SET grade = 'B', points = 3.0 WHERE cid = 8")
        result = session.execute("SELECT grade, points FROM enrollment WHERE cid = 8")
        assert result.rows == [{"grade": "B", "points": 3.0}]

    def test_update_type_checked(self, session):
        with pytest.raises(SchemaError):
            session.execute("UPDATE student SET sid = 'x'")

    def test_delete(self, session):
        result = session.execute("DELETE FROM enrollment WHERE cid = 8")
        assert result.touched == 1
        assert session.execute("SELECT COUNT(*) FROM enrollment").rows[0]["COUNT(*)"] == 3

    def test_delete_all(self, session):
        session.execute("DELETE FROM enrollment")
        assert session.execute("SELECT COUNT(*) FROM enrollment").rows[0]["COUNT(*)"] == 0


class TestSharedKernel:
    def test_relational_database_coexists(self, session):
        mlds = MLDS(backend_count=2)
        mlds.define_relational_database(DDL)
        from repro.university import UNIVERSITY_DAPLEX

        mlds.define_functional_database(UNIVERSITY_DAPLEX)
        assert mlds.database_names() == ["registrar", "university"]
        sql_session = mlds.open_sql_session("registrar")
        sql_session.execute("INSERT INTO student VALUES (1, 'A', 'cs')")
        mlds.functional_loader("university").create("person", name="P", age=1)
        assert mlds.kds.record_count() == 2
