"""The CODASYL schema DDL parser and its round-trip with the renderer."""

import pytest

from repro.errors import ParseError, SchemaError
from repro.network import (
    AttributeType,
    InsertionMode,
    RetentionMode,
    SelectionMode,
    parse_network_schema,
)

SCHEMA_TEXT = """
SCHEMA NAME IS demo;

RECORD NAME IS course;
DUPLICATES ARE NOT ALLOWED FOR title, semester;
    title TYPE IS CHARACTER 40;
    semester TYPE IS CHARACTER 6;
    credits TYPE IS INTEGER;
    fee TYPE IS FLOAT;

RECORD NAME IS department;
    dname TYPE IS CHARACTER 20;

SET NAME IS offers;
    OWNER IS department;
    MEMBER IS course;
    INSERTION IS MANUAL;
    RETENTION IS OPTIONAL;
    SET SELECTION IS BY APPLICATION;

SET NAME IS system_department;
    OWNER IS SYSTEM;
    MEMBER IS department;
    INSERTION IS AUTOMATIC;
    RETENTION IS FIXED;
    SET SELECTION IS BY APPLICATION;
"""


@pytest.fixture(scope="module")
def schema():
    return parse_network_schema(SCHEMA_TEXT)


class TestRecords:
    def test_record_names(self, schema):
        assert set(schema.records) == {"course", "department"}

    def test_attribute_types(self, schema):
        course = schema.record("course")
        assert course.attribute("title").type is AttributeType.CHARACTER
        assert course.attribute("title").length == 40
        assert course.attribute("credits").type is AttributeType.INTEGER
        assert course.attribute("fee").type is AttributeType.FLOAT

    def test_duplicates_clause_applied(self, schema):
        course = schema.record("course")
        assert not course.attribute("title").duplicates_allowed
        assert not course.attribute("semester").duplicates_allowed
        assert course.attribute("credits").duplicates_allowed


class TestSets:
    def test_set_clauses(self, schema):
        offers = schema.set_type("offers")
        assert offers.owner_name == "department"
        assert offers.member_name == "course"
        assert offers.insertion is InsertionMode.MANUAL
        assert offers.retention is RetentionMode.OPTIONAL
        assert offers.select.mode is SelectionMode.BY_APPLICATION

    def test_system_set(self, schema):
        assert schema.set_type("system_department").system_owned


class TestRoundTrip:
    def test_render_parse_fixpoint(self, schema):
        rendered = schema.render()
        assert parse_network_schema(rendered).render() == rendered


class TestErrors:
    def test_missing_schema_header(self):
        with pytest.raises(ParseError):
            parse_network_schema("RECORD NAME IS x;")

    def test_set_missing_owner(self):
        text = "SCHEMA NAME IS d;\nRECORD NAME IS m;\n  x TYPE IS INTEGER;\nSET NAME IS s;\n  MEMBER IS m;"
        with pytest.raises(ParseError):
            parse_network_schema(text)

    def test_duplicates_for_unknown_item(self):
        text = (
            "SCHEMA NAME IS d;\nRECORD NAME IS m;\n"
            "DUPLICATES ARE NOT ALLOWED FOR ghost;\n  x TYPE IS INTEGER;"
        )
        with pytest.raises(SchemaError):
            parse_network_schema(text)

    def test_dangling_set_reference(self):
        text = (
            "SCHEMA NAME IS d;\nRECORD NAME IS m;\n  x TYPE IS INTEGER;\n"
            "SET NAME IS s;\n  OWNER IS ghost;\n  MEMBER IS m;"
        )
        with pytest.raises(SchemaError):
            parse_network_schema(text)
