"""The network data model classes (net_dbid_node and friends)."""

import pytest

from repro.errors import SchemaError
from repro.network import (
    AttributeType,
    InsertionMode,
    NetAttribute,
    NetRecordType,
    NetSetType,
    NetworkSchema,
    RetentionMode,
    SelectionMode,
    SetSelect,
    SYSTEM_OWNER,
)


@pytest.fixture()
def schema():
    schema = NetworkSchema("demo")
    schema.add_record(
        NetRecordType(
            "course",
            [
                NetAttribute("title", AttributeType.CHARACTER, length=40),
                NetAttribute("credits", AttributeType.INTEGER),
            ],
        )
    )
    schema.add_record(NetRecordType("department", [NetAttribute("dname", AttributeType.CHARACTER, 20)]))
    schema.add_set(
        NetSetType(
            "offers",
            "department",
            "course",
            insertion=InsertionMode.MANUAL,
            retention=RetentionMode.OPTIONAL,
        )
    )
    schema.add_set(NetSetType("system_department", SYSTEM_OWNER, "department"))
    return schema.validate()


class TestRecords:
    def test_attribute_lookup(self, schema):
        record = schema.record("course")
        assert record.attribute("title").length == 40
        assert record.attribute("ghost") is None

    def test_require_attribute(self, schema):
        with pytest.raises(SchemaError):
            schema.record("course").require_attribute("ghost")

    def test_attribute_names(self, schema):
        assert schema.record("course").attribute_names == ["title", "credits"]

    def test_duplicate_record_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.add_record(NetRecordType("course"))

    def test_unknown_record(self, schema):
        with pytest.raises(SchemaError):
            schema.record("ghost")


class TestSets:
    def test_set_lookup(self, schema):
        assert schema.set_type("offers").owner_name == "department"

    def test_system_owned(self, schema):
        assert schema.set_type("system_department").system_owned
        assert not schema.set_type("offers").system_owned

    def test_sets_with_member(self, schema):
        assert [s.name for s in schema.sets_with_member("course")] == ["offers"]

    def test_sets_with_owner(self, schema):
        assert [s.name for s in schema.sets_with_owner("department")] == ["offers"]

    def test_duplicate_set_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.add_set(NetSetType("offers", "department", "course"))

    def test_counts(self, schema):
        assert schema.num_records == 2
        assert schema.num_sets == 2


class TestValidation:
    def test_unknown_owner(self):
        schema = NetworkSchema("bad")
        schema.add_record(NetRecordType("m"))
        schema.add_set(NetSetType("s", "ghost", "m"))
        with pytest.raises(SchemaError):
            schema.validate()

    def test_unknown_member(self):
        schema = NetworkSchema("bad")
        schema.add_record(NetRecordType("o"))
        schema.add_set(NetSetType("s", "o", "ghost"))
        with pytest.raises(SchemaError):
            schema.validate()

    def test_system_owner_always_valid(self):
        schema = NetworkSchema("ok")
        schema.add_record(NetRecordType("m"))
        schema.add_set(NetSetType("s", SYSTEM_OWNER, "m"))
        schema.validate()


class TestModes:
    def test_selection_render(self):
        assert SetSelect(SelectionMode.BY_APPLICATION).mode.render() == "BY APPLICATION"
        assert SelectionMode.NOT_SPECIFIED.render() == "NOT SPECIFIED"

    def test_insertion_retention_render(self):
        assert InsertionMode.AUTOMATIC.render() == "AUTOMATIC"
        assert RetentionMode.OPTIONAL.render() == "OPTIONAL"


class TestRendering:
    def test_record_render_includes_duplicates_clause(self, schema):
        record = schema.record("course")
        record.attribute("title").duplicates_allowed = False
        text = record.render()
        assert "DUPLICATES ARE NOT ALLOWED FOR title;" in text

    def test_set_render(self, schema):
        text = schema.set_type("offers").render()
        assert "SET NAME IS offers;" in text
        assert "OWNER IS department;" in text
        assert "INSERTION IS MANUAL;" in text
        assert "SET SELECTION IS BY APPLICATION;" in text

    def test_schema_render(self, schema):
        text = schema.render()
        assert text.startswith("SCHEMA NAME IS demo;")
        assert "RECORD NAME IS course;" in text
