"""The User Work Area and the request-buffer pool."""

import pytest

from repro.abdm import Record
from repro.errors import ExecutionError
from repro.network import BufferPool, RequestBuffer, UserWorkArea


class TestUWA:
    def test_move_and_get(self):
        uwa = UserWorkArea()
        uwa.move("DB", "title", "course")
        assert uwa.get("course", "title") == "DB"

    def test_get_missing_is_none(self):
        assert UserWorkArea().get("course", "title") is None

    def test_require_missing_raises(self):
        with pytest.raises(ExecutionError):
            UserWorkArea().require("course", "title")

    def test_fill_updates_template(self):
        uwa = UserWorkArea()
        uwa.move("old", "title", "course")
        uwa.fill("course", {"title": "new", "credits": 3})
        assert uwa.get("course", "title") == "new"
        assert uwa.get("course", "credits") == 3

    def test_clear_one_and_all(self):
        uwa = UserWorkArea()
        uwa.move(1, "a", "r1")
        uwa.move(2, "b", "r2")
        uwa.clear("r1")
        assert uwa.get("r1", "a") is None
        assert uwa.get("r2", "b") == 2
        uwa.clear()
        assert uwa.snapshot() == {}


def records(n, attribute="student"):
    return [
        Record.from_pairs([("FILE", attribute), (attribute, f"k${i}"), ("x", i)])
        for i in range(n)
    ]


class TestRequestBuffer:
    def test_cursor_starts_before_first(self):
        buffer = RequestBuffer("s")
        buffer.load(records(3))
        assert buffer.current is None
        assert buffer.advance().get("x") == 0

    def test_first_last(self):
        buffer = RequestBuffer("s")
        buffer.load(records(3))
        assert buffer.first().get("x") == 0
        assert buffer.last().get("x") == 2

    def test_advance_to_end(self):
        buffer = RequestBuffer("s")
        buffer.load(records(2))
        buffer.first()
        assert buffer.advance().get("x") == 1
        assert buffer.advance() is None
        # Cursor stays on the last record after hitting the end.
        assert buffer.current.get("x") == 1

    def test_retreat_to_start(self):
        buffer = RequestBuffer("s")
        buffer.load(records(2))
        buffer.last()
        assert buffer.retreat().get("x") == 0
        assert buffer.retreat() is None

    def test_empty_buffer(self):
        buffer = RequestBuffer("s")
        buffer.load([])
        assert buffer.first() is None
        assert buffer.last() is None

    def test_seek(self):
        buffer = RequestBuffer("s")
        buffer.load(records(3))
        assert buffer.seek("student", "k$1").get("x") == 1
        assert buffer.cursor == 1
        assert buffer.seek("student", "ghost") is None
        assert buffer.cursor == 1  # untouched on miss

    def test_owner_tracking(self):
        buffer = RequestBuffer("s")
        buffer.load(records(1), owner_dbkey="person$9")
        assert buffer.owner_dbkey == "person$9"

    def test_remove_matching(self):
        buffer = RequestBuffer("s")
        buffer.load(records(3))
        buffer.last()
        removed = buffer.remove_matching("student", "k$2")
        assert removed == 1
        assert buffer.cursor == 1  # clamped back onto the new last record

    def test_load_resets_cursor(self):
        buffer = RequestBuffer("s")
        buffer.load(records(3))
        buffer.last()
        buffer.load(records(2))
        assert buffer.cursor == -1


class TestBufferPool:
    def test_buffer_created_on_demand(self):
        pool = BufferPool()
        assert pool.buffer("advisor") is pool.buffer("advisor")
        assert pool.count == 1

    def test_require_empty_raises(self):
        pool = BufferPool()
        with pytest.raises(ExecutionError):
            pool.require("advisor")
        pool.buffer("advisor")  # exists but empty
        with pytest.raises(ExecutionError):
            pool.require("advisor")

    def test_require_loaded(self):
        pool = BufferPool()
        pool.buffer("advisor").load(records(1))
        assert pool.require("advisor")

    def test_has_records(self):
        pool = BufferPool()
        assert not pool.has_records("advisor")
        pool.buffer("advisor").load(records(1))
        assert pool.has_records("advisor")

    def test_invalidate_and_clear(self):
        pool = BufferPool()
        pool.buffer("a").load(records(1))
        pool.buffer("b").load(records(1))
        pool.invalidate("a")
        assert not pool.has_records("a")
        pool.clear()
        assert pool.count == 0
