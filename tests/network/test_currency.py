"""The Currency Indicator Table."""

import pytest

from repro.errors import CurrencyError
from repro.network import CurrencyIndicatorTable


@pytest.fixture()
def cit():
    return CurrencyIndicatorTable()


class TestRunUnit:
    def test_initially_null(self, cit):
        assert cit.run_unit is None
        with pytest.raises(CurrencyError):
            cit.require_run_unit()

    def test_set_and_read(self, cit):
        cit.set_run_unit("student", "person$3")
        pointer = cit.require_run_unit()
        assert (pointer.record_type, pointer.dbkey) == ("student", "person$3")


class TestRecordCurrency:
    def test_per_type_tracking(self, cit):
        cit.set_record("student", "person$1")
        cit.set_record("course", "course$9")
        assert cit.record("student").dbkey == "person$1"
        assert cit.record("course").dbkey == "course$9"

    def test_require_missing(self, cit):
        with pytest.raises(CurrencyError):
            cit.require_record("ghost")


class TestSetCurrency:
    def test_null_until_touched(self, cit):
        assert cit.set_currency("advisor").is_null
        with pytest.raises(CurrencyError):
            cit.require_set("advisor")

    def test_occurrence_and_current(self, cit):
        cit.set_set_currency("advisor", "person$1", "student", "person$5")
        currency = cit.require_set("advisor")
        assert currency.owner_dbkey == "person$1"
        assert currency.current.dbkey == "person$5"
        assert cit.require_set_owner("advisor") == "person$1"

    def test_occurrence_without_current(self, cit):
        cit.set_set_currency("advisor", "person$1")
        assert cit.require_set("advisor").current is None

    def test_current_without_occurrence(self, cit):
        cit.set_set_currency("advisor", None, "student", "person$5")
        with pytest.raises(CurrencyError):
            cit.require_set_owner("advisor")


class TestForgetRecord:
    def test_forget_clears_every_pointer(self, cit):
        cit.set_run_unit("student", "person$5")
        cit.set_record("student", "person$5")
        cit.set_set_currency("advisor", "person$1", "student", "person$5")
        cit.forget_record("person$5")
        assert cit.run_unit is None
        assert cit.record("student") is None
        assert cit.set_currency("advisor").current is None
        # The occurrence owner is a different record and survives.
        assert cit.set_currency("advisor").owner_dbkey == "person$1"

    def test_forget_owner_clears_occurrence(self, cit):
        cit.set_set_currency("advisor", "person$1", "student", "person$5")
        cit.forget_record("person$1")
        assert cit.set_currency("advisor").owner_dbkey is None

    def test_forget_unrelated_is_noop(self, cit):
        cit.set_run_unit("student", "person$5")
        cit.forget_record("person$99")
        assert cit.run_unit is not None


class TestSnapshotAndClear:
    def test_snapshot_shape(self, cit):
        cit.set_run_unit("student", "person$5")
        cit.set_set_currency("advisor", "person$1", "student", "person$5")
        snap = cit.snapshot()
        assert "person$5" in snap["run_unit"]
        assert snap["sets"]["advisor"]["owner"] == "person$1"

    def test_clear(self, cit):
        cit.set_run_unit("student", "person$5")
        cit.clear()
        assert cit.run_unit is None
