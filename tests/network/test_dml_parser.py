"""TBL-2: the CODASYL-DML statement subset parses (and renders back)."""

import pytest

from repro.errors import ParseError
from repro.network import dml


class TestMove:
    def test_string_value(self):
        statement = dml.parse_statement("MOVE 'Advanced Database' TO title IN course")
        assert statement == dml.MoveStatement("Advanced Database", "title", "course")

    def test_numeric_values(self):
        assert dml.parse_statement("MOVE 42 TO credits IN course").value == 42
        assert dml.parse_statement("MOVE 3.5 TO gpa IN student").value == 3.5
        assert dml.parse_statement("MOVE -7 TO balance IN account").value == -7

    def test_null_value(self):
        assert dml.parse_statement("MOVE NULL TO advisor IN student").value is None


class TestFindVariants:
    def test_find_any(self):
        statement = dml.parse_statement("FIND ANY course USING title, semester IN course")
        assert isinstance(statement, dml.FindAny)
        assert statement.items == ("title", "semester")

    def test_find_any_record_mismatch(self):
        with pytest.raises(ParseError):
            dml.parse_statement("FIND ANY course USING title IN student")

    def test_find_current(self):
        statement = dml.parse_statement("FIND CURRENT student WITHIN person_student")
        assert isinstance(statement, dml.FindCurrent)

    def test_find_duplicate(self):
        statement = dml.parse_statement(
            "FIND DUPLICATE WITHIN dept USING rank IN faculty"
        )
        assert isinstance(statement, dml.FindDuplicate)
        assert statement.set_name == "dept"

    @pytest.mark.parametrize("position", ["FIRST", "LAST", "NEXT", "PRIOR"])
    def test_find_positional(self, position):
        statement = dml.parse_statement(f"FIND {position} student WITHIN advisor")
        assert isinstance(statement, dml.FindPositional)
        assert statement.position is dml.Position[position]

    def test_find_owner(self):
        statement = dml.parse_statement("FIND OWNER WITHIN advisor")
        assert isinstance(statement, dml.FindOwner)

    def test_find_within_current(self):
        statement = dml.parse_statement(
            "FIND student WITHIN advisor CURRENT USING major IN student"
        )
        assert isinstance(statement, dml.FindWithinCurrent)
        assert statement.items == ("major",)

    def test_find_within_current_record_mismatch(self):
        with pytest.raises(ParseError):
            dml.parse_statement("FIND student WITHIN advisor CURRENT USING major IN person")


class TestGetForms:
    def test_bare_get(self):
        statement = dml.parse_statement("GET")
        assert statement == dml.Get()

    def test_get_record(self):
        assert dml.parse_statement("GET student").record == "student"

    def test_get_items(self):
        statement = dml.parse_statement("GET name, major IN student")
        assert statement.items == ("name", "major")
        assert statement.record == "student"

    def test_bare_get_in_transaction(self):
        statements = dml.parse_transaction("GET\nFIND OWNER WITHIN advisor")
        assert isinstance(statements[0], dml.Get)
        assert statements[0].record is None
        assert isinstance(statements[1], dml.FindOwner)


class TestUpdateStatements:
    def test_store(self):
        assert dml.parse_statement("STORE course").record == "course"

    def test_connect_multiple_sets(self):
        statement = dml.parse_statement("CONNECT support_staff TO supervisor, other")
        assert statement.sets == ("supervisor", "other")

    def test_disconnect(self):
        statement = dml.parse_statement("DISCONNECT support_staff FROM supervisor")
        assert statement.sets == ("supervisor",)

    def test_modify_whole_record(self):
        statement = dml.parse_statement("MODIFY course")
        assert statement.items == ()

    def test_modify_items(self):
        statement = dml.parse_statement("MODIFY title, credits IN course")
        assert statement.items == ("title", "credits")

    def test_erase(self):
        assert not dml.parse_statement("ERASE course").all

    def test_erase_all(self):
        assert dml.parse_statement("ERASE ALL course").all


class TestTransactions:
    def test_thesis_sequence(self):
        statements = dml.parse_transaction(
            "MOVE 'Advanced Database' TO title IN course\n"
            "FIND ANY course USING title IN course\n"
            "GET course"
        )
        assert [type(s).__name__ for s in statements] == [
            "MoveStatement",
            "FindAny",
            "Get",
        ]

    def test_semicolon_separated(self):
        statements = dml.parse_transaction("GET; STORE course; ERASE course")
        assert len(statements) == 3


class TestRendering:
    @pytest.mark.parametrize(
        "text",
        [
            "MOVE 'X' TO title IN course",
            "FIND ANY course USING title IN course",
            "FIND CURRENT student WITHIN person_student",
            "FIND DUPLICATE WITHIN dept USING rank IN faculty",
            "FIND FIRST student WITHIN advisor",
            "FIND OWNER WITHIN advisor",
            "FIND student WITHIN advisor CURRENT USING major IN student",
            "GET",
            "GET student",
            "GET name, major IN student",
            "STORE course",
            "CONNECT support_staff TO supervisor",
            "DISCONNECT support_staff FROM supervisor",
            "MODIFY course",
            "MODIFY title, credits IN course",
            "ERASE course",
            "ERASE ALL course",
        ],
    )
    def test_render_roundtrip(self, text):
        statement = dml.parse_statement(text)
        assert dml.parse_statement(statement.render()) == statement


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "FROB course",
            "FIND course",
            "MOVE TO title IN course",
            "CONNECT student",
            "STORE",
        ],
    )
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            dml.parse_statement(text)
