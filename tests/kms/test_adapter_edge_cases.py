"""Edge cases of the functional target adapter: links, errors, probes."""

import pytest

from repro.abdm.predicate import Predicate
from repro.errors import (
    ConstraintViolation,
    CurrencyError,
    SchemaError,
    TranslationError,
)
from repro.kms.functional_adapter import LINK_KEY_SEPARATOR


@pytest.fixture()
def adapter(session):
    return session.engine.adapter


class TestLinkKeys:
    def test_split_link_key(self, adapter):
        left, right = adapter.split_link_key("link_1", f"a$1{LINK_KEY_SEPARATOR}b$2")
        assert (left, right) == ("a$1", "b$2")

    def test_split_staged_key_rejected(self, adapter):
        with pytest.raises(TranslationError):
            adapter.split_link_key("link_1", "link_1$3")

    def test_fetch_staged_link(self, session, adapter):
        staged = session.execute("STORE link_1")
        record = adapter.fetch_by_dbkey("link_1", staged.dbkey)
        assert record is not None
        assert record.get("link_1") == staged.dbkey

    def test_fetch_nonexistent_materialized_link(self, adapter):
        assert (
            adapter.fetch_by_dbkey("link_1", f"person$999{LINK_KEY_SEPARATOR}course$999")
            is None
        )

    def test_find_any_on_link_rejected(self, session):
        session.execute("MOVE 'x' TO link_1 IN link_1")
        with pytest.raises(TranslationError):
            session.execute("FIND ANY link_1 USING link_1 IN link_1")

    def test_erase_staged_link(self, session):
        session.execute("STORE link_1")
        result = session.execute("ERASE link_1")
        assert result.ok
        assert result.requests == []  # staged: nothing ever reached the kernel


class TestFetchAndProbe:
    def test_fetch_missing_record(self, adapter):
        assert adapter.fetch_by_dbkey("person", "person$9999") is None

    def test_member_records_unknown_set(self, adapter):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            adapter.member_records("ghost_set", "person$1")

    def test_member_records_requires_owner_for_non_system(self, adapter):
        with pytest.raises(CurrencyError):
            adapter.member_records("advisor", None)

    def test_member_records_with_extra_predicates(self, session, adapter):
        session.execute("MOVE 'computer_science' TO dname IN department")
        dept = session.execute("FIND ANY department USING dname IN department")
        everyone = adapter.member_records("dept", dept.dbkey)
        filtered = adapter.member_records(
            "dept", dept.dbkey, [Predicate("rank", "=", "professor")]
        )
        assert len(filtered) <= len(everyone)

    def test_one_to_many_empty_occurrence(self, session, adapter):
        session.execute("MOVE 'Empty Owner' TO name IN person")
        session.execute("MOVE 5 TO age IN person")
        session.execute("STORE person")
        session.execute("MOVE 'none' TO major IN student")
        student = session.execute("STORE student")
        assert adapter.member_records("enrollment", student.dbkey) == []

    def test_member_records_dedupes_multivalued_owners(self, session, adapter):
        # A faculty member teaching several courses is several AB records
        # in file faculty, but one member of its dept occurrence.
        session.execute("MOVE 'computer_science' TO dname IN department")
        dept = session.execute("FIND ANY department USING dname IN department")
        members = adapter.member_records("dept", dept.dbkey)
        keys = [r.get("faculty") for r in members]
        assert len(keys) == len(set(keys))


class TestUserItems:
    def test_user_items_exclude_dbkey(self, adapter):
        items = adapter.user_items("student")
        assert "student" not in items
        assert items == ["major", "gpa"]

    def test_check_item_unknown(self, adapter):
        with pytest.raises(SchemaError):
            adapter.check_item("student", "ghost")


class TestConnectErrors:
    def test_connect_unknown_set(self, session):
        session.execute("MOVE 'X Y' TO name IN person")
        session.execute("STORE person")
        with pytest.raises(SchemaError):
            session.execute("CONNECT person TO ghost_set")

    def test_owner_side_add_missing_owner(self, adapter):
        with pytest.raises(SchemaError):
            adapter._owner_side_add("enrollment", "person$9999", "course$1")

    def test_disconnect_requires_occurrence(self, session):
        session.execute("MOVE 'Q R' TO name IN person")
        session.execute("MOVE 1 TO age IN person")
        session.execute("STORE person")
        session.execute("MOVE 's' TO major IN student")
        session.execute("STORE student")
        with pytest.raises(CurrencyError):
            session.execute("DISCONNECT student FROM advisor")


class TestSubtypeStoreEdges:
    def test_store_needs_matching_isa_currency_type(self, session):
        # FIND a department, then try to STORE student: the ISA set
        # person_student has no occurrence.
        session.execute("MOVE 'computer_science' TO dname IN department")
        session.execute("FIND ANY department USING dname IN department")
        session.execute("MOVE 'm' TO major IN student")
        with pytest.raises(CurrencyError):
            session.execute("STORE student")

    def test_store_unknown_record_type(self, session):
        with pytest.raises(SchemaError):
            session.execute("STORE ghost")

    def test_faculty_store_requires_employee_extension(self, session):
        """STORE faculty needs the employee_faculty occurrence: the person
        must already be an employee."""
        session.execute("MOVE 'New Hire' TO name IN person")
        session.execute("MOVE 30 TO age IN person")
        session.execute("STORE person")
        session.execute("MOVE 'professor' TO rank IN faculty")
        with pytest.raises(CurrencyError):
            session.execute("STORE faculty")
        # After extending to employee, faculty works.
        session.execute("MOVE 50000.0 TO salary IN employee")
        session.execute("STORE employee")
        assert session.execute("STORE faculty").ok
