"""MODIFY (VI.F) and ERASE (VI.H) against AB(functional)."""

import pytest

from repro.errors import (
    ConstraintViolation,
    CurrencyError,
    ExecutionError,
    UnsupportedStatement,
)


def store_person(s, name, age=40):
    s.execute(f"MOVE '{name}' TO name IN person")
    s.execute(f"MOVE {age} TO age IN person")
    return s.execute("STORE person")


class TestModify:
    def test_one_update_per_item(self, session):
        """VI.F: the UPDATE request is repeated per modified field."""
        s = session
        person = store_person(s, "Modify Me")
        s.execute("MOVE 'Renamed' TO name IN person")
        s.execute("MOVE 41 TO age IN person")
        result = s.execute("MODIFY name, age IN person")
        assert result.requests == [
            f"UPDATE ((FILE = 'person') AND (person = '{person.dbkey}')) (name = 'Renamed')",
            f"UPDATE ((FILE = 'person') AND (person = '{person.dbkey}')) (age = 41)",
        ]

    def test_modification_visible(self, session):
        s = session
        store_person(s, "Modify Me")
        s.execute("MOVE 99 TO age IN person")
        s.execute("MODIFY age IN person")
        assert s.execute("GET age IN person").values["age"] == 99

    def test_whole_record_uses_uwa_items(self, session):
        s = session
        store_person(s, "Modify Me")
        s.execute("MOVE 'Renamed' TO name IN person")
        result = s.execute("MODIFY person")
        # Every UWA-supplied user item gets its UPDATE.
        assert len(result.requests) == 2  # name and age templates are set

    def test_modify_without_uwa_values_rejected(self, session):
        s = session
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        s.uwa.clear("course")
        with pytest.raises(ExecutionError):
            s.execute("MODIFY course")

    def test_modify_item_missing_from_uwa(self, session):
        s = session
        store_person(s, "Modify Me")
        s.uwa.clear("person")
        with pytest.raises(ExecutionError):
            s.execute("MODIFY age IN person")

    def test_run_unit_type_checked(self, session):
        s = session
        store_person(s, "Modify Me")
        s.execute("MOVE 'x' TO major IN student")
        with pytest.raises(CurrencyError):
            s.execute("MODIFY major IN student")


class TestErase:
    def test_erase_clean_record(self, session):
        s = session
        store_person(s, "Erase Me")
        result = s.execute("ERASE person")
        assert result.ok
        assert result.requests[-1].startswith("DELETE ((FILE = 'person')")
        s.execute("MOVE 'Erase Me' TO name IN person")
        assert not s.execute("FIND ANY person USING name IN person").ok

    def test_erase_checks_precede_delete(self, session):
        """VI.H: auxiliary RETRIEVEs run before the DELETE."""
        s = session
        store_person(s, "Erase Me")
        result = s.execute("ERASE person")
        retrieves = [r for r in result.requests if r.startswith("RETRIEVE")]
        deletes = [r for r in result.requests if r.startswith("DELETE")]
        assert retrieves and len(deletes) == 1
        assert result.requests[-1] == deletes[0]

    def test_erase_supertype_with_subtype_blocked(self, session):
        """CODASYL: the record owns a non-null ISA occurrence."""
        s = session
        store_person(s, "Has Subtype")
        s.execute("MOVE 'history' TO major IN student")
        s.execute("STORE student")
        s.execute("FIND CURRENT person WITHIN system_person")
        with pytest.raises(ConstraintViolation, match="person_student"):
            s.execute("ERASE person")

    def test_erase_referenced_entity_blocked(self, session):
        """DAPLEX DESTROY rule: a function value cannot be destroyed."""
        s = session
        # Every loaded faculty member advises someone or teaches something;
        # find one who advises a student.
        s.execute("MOVE 'computer science' TO major IN student")
        s.execute("FIND ANY student USING major IN student")
        s.execute("FIND OWNER WITHIN advisor")
        with pytest.raises(ConstraintViolation):
            s.execute("ERASE faculty")

    def test_erase_after_subtype_removed(self, session):
        s = session
        store_person(s, "Two Phase")
        s.execute("MOVE 'history' TO major IN student")
        s.execute("STORE student")
        s.execute("ERASE student")
        s.execute("FIND CURRENT person WITHIN system_person")
        assert s.execute("ERASE person").ok

    def test_erase_clears_currency(self, session):
        s = session
        store_person(s, "Erase Me")
        s.execute("ERASE person")
        assert s.cit.run_unit is None

    def test_erase_all_rejected(self, session):
        s = session
        store_person(s, "Erase All Target")
        with pytest.raises(UnsupportedStatement):
            s.execute("ERASE ALL person")

    def test_erase_needs_run_unit(self, session):
        with pytest.raises(CurrencyError):
            session.execute("ERASE person")

    def test_erase_run_unit_type_checked(self, session):
        s = session
        store_person(s, "Wrong Type")
        with pytest.raises(CurrencyError):
            s.execute("ERASE course")

    def test_erase_student_with_enrollment_blocked(self, session):
        """The student owns a non-null enrollment occurrence."""
        s = session
        store_person(s, "Enrolled")
        s.execute("MOVE 'history' TO major IN student")
        s.execute("STORE student")
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        s.execute("CONNECT course TO enrollment")
        s.execute("FIND CURRENT student WITHIN person_student")
        with pytest.raises(ConstraintViolation, match="enrollment"):
            s.execute("ERASE student")

    def test_erase_after_disconnect_succeeds(self, session):
        s = session
        store_person(s, "Enrolled")
        s.execute("MOVE 'history' TO major IN student")
        s.execute("STORE student")
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        s.execute("CONNECT course TO enrollment")
        s.execute("DISCONNECT course FROM enrollment")
        s.execute("FIND CURRENT student WITHIN person_student")
        assert s.execute("ERASE student").ok
