"""CONNECT (VI.D) and DISCONNECT (VI.E) against AB(functional)."""

import pytest

from repro.errors import ConstraintViolation, CurrencyError, TranslationError
from repro.kms import Status


def store_person(s, name, age=30):
    s.execute(f"MOVE '{name}' TO name IN person")
    s.execute(f"MOVE {age} TO age IN person")
    return s.execute("STORE person")


def store_student(s, major="testing"):
    s.execute(f"MOVE '{major}' TO major IN student")
    return s.execute("STORE student")


def find_a_faculty(s):
    s.execute("MOVE 'professor' TO rank IN faculty")
    result = s.execute("FIND ANY faculty USING rank IN faculty")
    if not result.ok:
        s.execute("MOVE 'associate' TO rank IN faculty")
        result = s.execute("FIND ANY faculty USING rank IN faculty")
    assert result.ok
    return result


class TestConnectMemberSide:
    """Single-valued function sets: the keyword lives in the member file."""

    def test_connect_updates_member_keyword(self, session):
        s = session
        store_person(s, "Connectee")
        student = store_student(s)
        faculty = find_a_faculty(s)
        # Restore the student as the run-unit (its advisor pair is NULL so
        # the advisor currency set by the faculty FIND survives).
        s.execute("MOVE 'Connectee' TO name IN person")
        s.execute("FIND ANY person USING name IN person")
        s.execute("FIND FIRST student WITHIN person_student")
        result = s.execute("CONNECT student TO advisor")
        assert result.ok
        # Probe RETRIEVE (already-connected check) followed by the UPDATE.
        assert result.requests[0].startswith("RETRIEVE ((FILE = 'student')")
        assert result.requests[1:] == [
            f"UPDATE ((FILE = 'student') AND (student = '{student.dbkey}')) "
            f"(advisor = '{faculty.dbkey}')"
        ]

    def test_connected_member_found_in_occurrence(self, session):
        s = session
        store_person(s, "Connectee")
        student = store_student(s)
        find_a_faculty(s)
        s.execute("FIND CURRENT student WITHIN person_student")
        s.execute("CONNECT student TO advisor")
        s.execute("FIND OWNER WITHIN advisor")
        members = s.execute("FIND FIRST student WITHIN advisor")
        found = {members.dbkey}
        while True:
            more = s.execute("FIND NEXT student WITHIN advisor")
            if not more.ok:
                break
            found.add(more.dbkey)
        assert student.dbkey in found

    def test_automatic_set_rejected(self, session):
        s = session
        store_person(s, "Connectee")
        store_student(s)
        with pytest.raises(ConstraintViolation):
            s.execute("CONNECT student TO person_student")

    def test_requires_set_occurrence(self, session):
        s = session
        store_person(s, "Connectee")
        store_student(s)
        with pytest.raises(CurrencyError):
            s.execute("CONNECT student TO advisor")

    def test_run_unit_type_checked(self, session):
        s = session
        find_a_faculty(s)
        with pytest.raises(CurrencyError):
            s.execute("CONNECT student TO advisor")

    def test_member_type_checked(self, session):
        s = session
        store_person(s, "Connectee")
        with pytest.raises(TranslationError):
            s.execute("CONNECT person TO advisor")


class TestConnectOwnerSide:
    """One-to-many sets: the four owner-record cases of VI.D.2.a."""

    def _fresh_student(self, s, name="Owner Side"):
        store_person(s, name)
        return store_student(s)

    def _course_key(self, s, semester="fall"):
        s.execute(f"MOVE '{semester}' TO semester IN course")
        return s.execute("FIND ANY course USING semester IN course")

    def test_case_1_null_set_update(self, session):
        """A fresh student's enrollment keyword is NULL: one UPDATE."""
        s = session
        student = self._fresh_student(s)
        course = self._course_key(s)
        # course is now the run-unit; the enrollment occurrence is the
        # student (owner).  Set the occurrence by finding the student.
        s.execute("FIND CURRENT student WITHIN person_student")
        # Run-unit must be the member (the course): re-find it.
        s.execute("FIND CURRENT course WITHIN system_course")
        result = s.execute("CONNECT course TO enrollment")
        assert result.ok
        update = [r for r in result.requests if r.startswith("UPDATE")]
        assert update == [
            f"UPDATE ((FILE = 'student') AND (student = '{student.dbkey}')) "
            f"(enrollment = '{course.dbkey}')"
        ]

    def test_case_3_second_member_inserts_copy(self, session):
        """With one member present, connecting another INSERTs a duplicate."""
        s = session
        self._fresh_student(s)
        self._course_key(s, "fall")
        s.execute("FIND CURRENT course WITHIN system_course")
        s.execute("CONNECT course TO enrollment")
        # Pick a different course.
        second = self._course_key(s, "spring")
        result = s.execute("CONNECT course TO enrollment")
        inserts = [r for r in result.requests if r.startswith("INSERT")]
        assert len(inserts) == 1
        assert f"<enrollment, '{second.dbkey}'>" in inserts[0]

    def test_members_enumerable_after_connect(self, session):
        s = session
        student = self._fresh_student(s)
        first = self._course_key(s, "fall")
        s.execute("FIND CURRENT course WITHIN system_course")
        s.execute("CONNECT course TO enrollment")
        second = self._course_key(s, "spring")
        s.execute("CONNECT course TO enrollment")
        # Enumerate the occurrence.
        s.execute("FIND CURRENT student WITHIN person_student")
        found = set()
        result = s.execute("FIND FIRST course WITHIN enrollment")
        while result.ok:
            found.add(result.dbkey)
            result = s.execute("FIND NEXT course WITHIN enrollment")
        assert {first.dbkey, second.dbkey} <= found

    def test_reconnect_same_member_is_noop(self, session):
        s = session
        self._fresh_student(s)
        self._course_key(s)
        s.execute("FIND CURRENT course WITHIN system_course")
        s.execute("CONNECT course TO enrollment")
        result = s.execute("CONNECT course TO enrollment")
        assert not [r for r in result.requests if r.startswith(("UPDATE", "INSERT"))]


class TestDisconnect:
    def test_member_side_nulls_keyword(self, session):
        s = session
        store_person(s, "Disc Member")
        student = store_student(s)
        faculty = find_a_faculty(s)
        s.execute("FIND CURRENT student WITHIN person_student")
        s.execute("CONNECT student TO advisor")
        result = s.execute("DISCONNECT student FROM advisor")
        assert result.requests == [
            f"UPDATE ((FILE = 'student') AND (student = '{student.dbkey}') "
            f"AND (advisor = '{faculty.dbkey}')) (advisor = NULL)"
        ]

    def test_owner_side_singleton_nulls(self, session):
        """VI.E: a singleton function set is nulled out, not deleted."""
        s = session
        store_person(s, "Disc Owner")
        student = store_student(s)
        s.execute("MOVE 'fall' TO semester IN course")
        course = s.execute("FIND ANY course USING semester IN course")
        s.execute("CONNECT course TO enrollment")
        result = s.execute("DISCONNECT course FROM enrollment")
        updates = [r for r in result.requests if r.startswith("UPDATE")]
        assert updates == [
            f"UPDATE ((FILE = 'student') AND (student = '{student.dbkey}') "
            f"AND (enrollment = '{course.dbkey}')) (enrollment = NULL)"
        ]

    def test_owner_side_multiple_deletes_duplicates(self, session):
        """VI.E: with several members, the duplicated records are DELETEd."""
        s = session
        store_person(s, "Disc Owner")
        store_student(s)
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        s.execute("CONNECT course TO enrollment")
        s.execute("MOVE 'spring' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        s.execute("CONNECT course TO enrollment")
        result = s.execute("DISCONNECT course FROM enrollment")
        assert any(r.startswith("DELETE") for r in result.requests)

    def test_fixed_retention_rejected(self, session):
        s = session
        store_person(s, "Fixed")
        store_student(s)
        with pytest.raises(ConstraintViolation):
            s.execute("DISCONNECT student FROM person_student")

    def test_disconnect_unconnected_rejected(self, session):
        s = session
        store_person(s, "Never Connected")
        store_student(s)
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        with pytest.raises(ConstraintViolation):
            s.execute("DISCONNECT course FROM enrollment")

    def test_disconnected_member_gone_from_occurrence(self, session):
        s = session
        store_person(s, "Gone Member")
        store_student(s)
        s.execute("MOVE 'fall' TO semester IN course")
        course = s.execute("FIND ANY course USING semester IN course")
        s.execute("CONNECT course TO enrollment")
        s.execute("DISCONNECT course FROM enrollment")
        s.execute("FIND CURRENT student WITHIN person_student")
        result = s.execute("FIND FIRST course WITHIN enrollment")
        assert result.status is Status.NOT_FOUND


class TestManyToManyLinks:
    def _faculty_and_course(self, s):
        store_person(s, "Link Prof")
        s.execute("MOVE 75000.0 TO salary IN employee")
        s.execute("STORE employee")
        s.execute("MOVE 'instructor' TO rank IN faculty")
        faculty = s.execute("STORE faculty")
        s.execute("MOVE 'Linked Course' TO title IN course")
        s.execute("MOVE 'winter' TO semester IN course")
        s.execute("MOVE 2 TO credits IN course")
        course = s.execute("STORE course")
        return faculty, course

    def test_store_connect_both_sides_materializes(self, session):
        s = session
        faculty, course = self._faculty_and_course(s)
        link = s.execute("STORE link_1")
        first = s.execute("CONNECT link_1 TO teaching")
        assert first.requests == []  # waiting for the second side
        second = s.execute("CONNECT link_1 TO taught_by")
        assert second.ok
        # The materialized key orders the sides by the link's set order.
        info = s.engine.adapter.transformation.links["link_1"]
        owners = {"teaching": faculty.dbkey, "taught_by": course.dbkey}
        assert second.dbkey == f"{owners[info.first_set]}~{owners[info.second_set]}"
        # Both owner files gained the partner's key.
        joined = " ".join(second.requests)
        assert "(FILE = 'faculty')" in joined
        assert "(FILE = 'course')" in joined

    def test_link_navigable_after_materialization(self, session):
        s = session
        faculty, course = self._faculty_and_course(s)
        s.execute("STORE link_1")
        s.execute("CONNECT link_1 TO teaching")
        s.execute("CONNECT link_1 TO taught_by")
        s.execute("FIND CURRENT faculty WITHIN employee_faculty")
        link = s.execute("FIND FIRST link_1 WITHIN teaching")
        assert link.ok
        owner = s.execute("FIND OWNER WITHIN taught_by")
        assert owner.dbkey == course.dbkey

    def test_disconnect_link_dissolves_pair(self, session):
        s = session
        faculty, course = self._faculty_and_course(s)
        s.execute("STORE link_1")
        s.execute("CONNECT link_1 TO teaching")
        s.execute("CONNECT link_1 TO taught_by")
        s.execute("DISCONNECT link_1 FROM teaching")
        s.execute("FIND CURRENT faculty WITHIN employee_faculty")
        result = s.execute("FIND FIRST link_1 WITHIN teaching")
        assert result.status is Status.NOT_FOUND

    def test_connect_existing_link_rejected(self, shared_session):
        s = shared_session
        s.execute("MOVE 'professor' TO rank IN faculty")
        found = s.execute("FIND ANY faculty USING rank IN faculty")
        if not found.ok:
            pytest.skip("population has no professor")
        link = s.execute("FIND FIRST link_1 WITHIN teaching")
        assert link.ok
        with pytest.raises(ConstraintViolation):
            s.execute("CONNECT link_1 TO teaching")


class TestReconnectRejected:
    """A member of one occurrence must be DISCONNECTed before CONNECT
    joins it to another (the thesis's disconnect-modify-reconnect recipe)."""

    def test_single_valued_reconnect_rejected(self, session):
        s = session
        store_person(s, "Reconnect Target")
        store_student(s)
        find_a_faculty(s)
        s.execute("FIND CURRENT student WITHIN person_student")
        s.execute("CONNECT student TO advisor")
        # Pick another faculty as the new occurrence and retry.
        s.execute("MOVE 'instructor' TO rank IN faculty")
        other = s.execute("FIND ANY faculty USING rank IN faculty")
        if not other.ok:
            s.execute("MOVE 'assistant' TO rank IN faculty")
            other = s.execute("FIND ANY faculty USING rank IN faculty")
        s.execute("FIND CURRENT student WITHIN person_student")
        with pytest.raises(ConstraintViolation):
            s.execute("CONNECT student TO advisor")

    def test_reconnect_after_disconnect_succeeds(self, session):
        s = session
        store_person(s, "Reconnect Target")
        store_student(s)
        faculty = find_a_faculty(s)
        s.execute("FIND CURRENT student WITHIN person_student")
        s.execute("CONNECT student TO advisor")
        s.execute("DISCONNECT student FROM advisor")
        result = s.execute("CONNECT student TO advisor")
        assert result.ok
        owner = s.execute("FIND OWNER WITHIN advisor")
        assert owner.dbkey == faculty.dbkey
