"""The AB(network) target: the original Emdi translation (baseline).

The same DML engine runs over a *native* network database; memberships
are member-carried keywords for every set, so the request shapes are the
uniform ones of the original network interface.
"""

import pytest

from repro import MLDS
from repro.errors import ConstraintViolation, CurrencyError
from repro.kms import Status

SCHEMA = """
SCHEMA NAME IS firm;

RECORD NAME IS department;
DUPLICATES ARE NOT ALLOWED FOR dname;
    dname TYPE IS CHARACTER 20;
    budget TYPE IS INTEGER;

RECORD NAME IS worker;
    wname TYPE IS CHARACTER 30;
    salary TYPE IS INTEGER;

SET NAME IS staff;
    OWNER IS department;
    MEMBER IS worker;
    INSERTION IS MANUAL;
    RETENTION IS OPTIONAL;
    SET SELECTION IS BY APPLICATION;

SET NAME IS assigned;
    OWNER IS department;
    MEMBER IS worker;
    INSERTION IS AUTOMATIC;
    RETENTION IS FIXED;
    SET SELECTION IS BY APPLICATION;

SET NAME IS system_department;
    OWNER IS SYSTEM;
    MEMBER IS department;
    INSERTION IS AUTOMATIC;
    RETENTION IS FIXED;
    SET SELECTION IS BY APPLICATION;
"""


@pytest.fixture()
def mlds_net():
    mlds = MLDS(backend_count=2)
    mlds.define_network_database(SCHEMA)
    loader = mlds.network_loader("firm")
    d1 = loader.create("department", dname="research", budget=100)
    d2 = loader.create("department", dname="sales", budget=50)
    for i, (name, dept) in enumerate(
        [("Ann", d1), ("Bob", d1), ("Cal", d2), ("Dee", d1)]
    ):
        loader.create(
            "worker",
            wname=name,
            salary=1000 * (i + 1),
            memberships={"staff": dept, "assigned": dept},
        )
    return mlds


@pytest.fixture()
def net_session(mlds_net):
    return mlds_net.open_codasyl_session("firm")


class TestSessionRouting:
    def test_lil_marks_source_network(self, net_session):
        assert net_session.source_model == "network"


class TestFind:
    def test_find_any(self, net_session):
        s = net_session
        s.execute("MOVE 'research' TO dname IN department")
        result = s.execute("FIND ANY department USING dname IN department")
        assert result.ok
        assert result.values["budget"] == 100

    def test_member_iteration(self, net_session):
        s = net_session
        s.execute("MOVE 'research' TO dname IN department")
        dept = s.execute("FIND ANY department USING dname IN department")
        result = s.execute("FIND FIRST worker WITHIN staff")
        assert (
            f"RETRIEVE ((FILE = 'worker') AND (staff = '{dept.dbkey}'))"
            in result.requests[0]
        )
        names = [result.values["wname"]]
        while True:
            result = s.execute("FIND NEXT worker WITHIN staff")
            if not result.ok:
                break
            names.append(result.values["wname"])
        assert names == ["Ann", "Bob", "Dee"]

    def test_find_owner(self, net_session):
        s = net_session
        s.execute("MOVE 'Cal' TO wname IN worker")
        s.execute("FIND ANY worker USING wname IN worker")
        result = s.execute("FIND OWNER WITHIN staff")
        assert result.values["dname"] == "sales"

    def test_memberships_read_off_record(self, net_session):
        s = net_session
        s.execute("MOVE 'Ann' TO wname IN worker")
        s.execute("FIND ANY worker USING wname IN worker")
        assert s.cit.set_currency("staff").owner_dbkey is not None
        assert s.cit.set_currency("assigned").owner_dbkey is not None


class TestStore:
    def test_store_with_automatic_set(self, net_session):
        s = net_session
        s.execute("MOVE 'sales' TO dname IN department")
        dept = s.execute("FIND ANY department USING dname IN department")
        s.execute("MOVE 'Eve' TO wname IN worker")
        s.execute("MOVE 9000 TO salary IN worker")
        result = s.execute("STORE worker")
        assert result.ok
        # AUTOMATIC membership connected at store time; MANUAL stayed null.
        insert = [r for r in result.requests if r.startswith("INSERT")][0]
        assert f"<assigned, '{dept.dbkey}'>" in insert
        assert "<staff, NULL>" in insert

    def test_store_requires_automatic_occurrence(self, net_session):
        s = net_session
        s.execute("MOVE 'Eve' TO wname IN worker")
        with pytest.raises(CurrencyError):
            s.execute("STORE worker")

    def test_duplicates_not_allowed(self, net_session):
        s = net_session
        s.execute("MOVE 'research' TO dname IN department")
        s.execute("MOVE 7 TO budget IN department")
        with pytest.raises(ConstraintViolation):
            s.execute("STORE department")


class TestConnectDisconnect:
    def test_connect_updates_member_keyword(self, net_session):
        s = net_session
        s.execute("MOVE 'sales' TO dname IN department")
        dept = s.execute("FIND ANY department USING dname IN department")
        s.execute("MOVE 'Eve' TO wname IN worker")
        s.execute("MOVE 1 TO salary IN worker")
        worker = s.execute("STORE worker")
        result = s.execute("CONNECT worker TO staff")
        # An auxiliary RETRIEVE probes the already-connected constraint,
        # then one UPDATE writes the membership keyword.
        assert result.requests[0].startswith("RETRIEVE ((FILE = 'worker')")
        assert result.requests[1:] == [
            f"UPDATE ((FILE = 'worker') AND (worker = '{worker.dbkey}')) "
            f"(staff = '{dept.dbkey}')"
        ]

    def test_connect_automatic_rejected(self, net_session):
        s = net_session
        s.execute("MOVE 'sales' TO dname IN department")
        s.execute("FIND ANY department USING dname IN department")
        s.execute("MOVE 'Eve' TO wname IN worker")
        s.execute("MOVE 1 TO salary IN worker")
        s.execute("STORE worker")
        with pytest.raises(ConstraintViolation):
            s.execute("CONNECT worker TO assigned")

    def test_disconnect_nulls_keyword(self, net_session):
        s = net_session
        s.execute("MOVE 'Ann' TO wname IN worker")
        worker = s.execute("FIND ANY worker USING wname IN worker")
        owner = s.cit.set_currency("staff").owner_dbkey
        result = s.execute("DISCONNECT worker FROM staff")
        assert result.requests == [
            f"UPDATE ((FILE = 'worker') AND (worker = '{worker.dbkey}') "
            f"AND (staff = '{owner}')) (staff = NULL)"
        ]

    def test_disconnect_fixed_rejected(self, net_session):
        s = net_session
        s.execute("MOVE 'Ann' TO wname IN worker")
        s.execute("FIND ANY worker USING wname IN worker")
        with pytest.raises(ConstraintViolation):
            s.execute("DISCONNECT worker FROM assigned")


class TestModifyErase:
    def test_modify(self, net_session):
        s = net_session
        s.execute("MOVE 'Bob' TO wname IN worker")
        s.execute("FIND ANY worker USING wname IN worker")
        s.execute("MOVE 5555 TO salary IN worker")
        s.execute("MODIFY salary IN worker")
        assert s.execute("GET salary IN worker").values["salary"] == 5555

    def test_erase_owner_with_members_blocked(self, net_session):
        s = net_session
        s.execute("MOVE 'research' TO dname IN department")
        s.execute("FIND ANY department USING dname IN department")
        with pytest.raises(ConstraintViolation):
            s.execute("ERASE department")

    def test_erase_member(self, net_session):
        s = net_session
        s.execute("MOVE 'Dee' TO wname IN worker")
        s.execute("FIND ANY worker USING wname IN worker")
        assert s.execute("ERASE worker").ok
        s.execute("MOVE 'Dee' TO wname IN worker")
        assert s.execute("FIND ANY worker USING wname IN worker").status is Status.NOT_FOUND


class TestNavigationVariants:
    def test_find_last_and_prior(self, net_session):
        s = net_session
        s.execute("MOVE 'research' TO dname IN department")
        s.execute("FIND ANY department USING dname IN department")
        last = s.execute("FIND LAST worker WITHIN staff")
        assert last.values["wname"] == "Dee"
        prior = s.execute("FIND PRIOR worker WITHIN staff")
        assert prior.values["wname"] == "Bob"

    def test_find_within_current_using(self, net_session):
        s = net_session
        s.execute("MOVE 'research' TO dname IN department")
        s.execute("FIND ANY department USING dname IN department")
        s.execute("FIND FIRST worker WITHIN staff")
        s.execute("MOVE 'Dee' TO wname IN worker")
        result = s.execute("FIND worker WITHIN staff CURRENT USING wname IN worker")
        assert result.ok and result.values["wname"] == "Dee"

    def test_find_duplicate_within(self, net_session):
        s = net_session
        # Two research workers share a salary after a MODIFY.
        s.execute("MOVE 'Ann' TO wname IN worker")
        s.execute("FIND ANY worker USING wname IN worker")
        s.execute("MOVE 7777 TO salary IN worker")
        s.execute("MODIFY salary IN worker")
        s.execute("MOVE 'Dee' TO wname IN worker")
        s.execute("FIND ANY worker USING wname IN worker")
        s.execute("MOVE 7777 TO salary IN worker")
        s.execute("MODIFY salary IN worker")
        s.execute("MOVE 'research' TO dname IN department")
        s.execute("FIND ANY department USING dname IN department")
        first = s.execute("FIND FIRST worker WITHIN staff")
        assert first.values["wname"] == "Ann"
        duplicate = s.execute("FIND DUPLICATE WITHIN staff USING salary IN worker")
        assert duplicate.ok and duplicate.values["wname"] == "Dee"

    def test_find_current_within_set(self, net_session):
        s = net_session
        s.execute("MOVE 'research' TO dname IN department")
        s.execute("FIND ANY department USING dname IN department")
        s.execute("FIND FIRST worker WITHIN staff")
        s.execute("FIND NEXT worker WITHIN staff")
        # GET does not move currency; FIND CURRENT restores Bob as the
        # run-unit from the set's current record.
        s.execute("GET")
        restored = s.execute("FIND CURRENT worker WITHIN staff")
        assert restored.ok
        # FIND CURRENT is currency-only (no values); GET reads the record.
        assert s.execute("GET").values["wname"] == "Bob"

    def test_find_current_type_mismatch(self, net_session):
        """Finding an owner makes it the current of its sets, so FIND
        CURRENT of the member type must then fail (CODASYL currency)."""
        from repro.errors import CurrencyError

        s = net_session
        s.execute("MOVE 'research' TO dname IN department")
        s.execute("FIND ANY department USING dname IN department")
        s.execute("FIND FIRST worker WITHIN staff")
        s.execute("MOVE 'sales' TO dname IN department")
        s.execute("FIND ANY department USING dname IN department")
        with pytest.raises(CurrencyError):
            s.execute("FIND CURRENT worker WITHIN staff")

    def test_get_forms(self, net_session):
        s = net_session
        s.execute("MOVE 'Cal' TO wname IN worker")
        s.execute("FIND ANY worker USING wname IN worker")
        assert set(s.execute("GET").values) == {"wname", "salary"}
        assert s.execute("GET worker").values["wname"] == "Cal"
        assert set(s.execute("GET salary IN worker").values) == {"salary"}
