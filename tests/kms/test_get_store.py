"""GET (VI.C) and STORE (VI.G) against the AB(functional) database."""

import pytest

from repro.errors import ConstraintViolation, CurrencyError, ExecutionError


class TestGet:
    def test_bare_get_returns_all_items(self, shared_session):
        s = shared_session
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        result = s.execute("GET")
        assert set(result.values) == {"course", "title", "dept", "semester", "credits"}

    def test_get_record_type_checked(self, shared_session):
        s = shared_session
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        with pytest.raises(ExecutionError):
            s.execute("GET student")

    def test_get_items_subset(self, shared_session):
        s = shared_session
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        result = s.execute("GET title, credits IN course")
        assert set(result.values) == {"title", "credits"}

    def test_get_fills_uwa(self, shared_session):
        s = shared_session
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        result = s.execute("GET course")
        assert s.uwa.get("course", "title") == result.values["title"]

    def test_get_without_find_rejected(self, shared_session):
        with pytest.raises(CurrencyError):
            shared_session.execute("GET")

    def test_get_uses_cached_record(self, shared_session):
        s = shared_session
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        result = s.execute("GET")
        assert result.requests == []  # served from the run-unit cache

    def test_get_after_find_current_refetches(self, shared_session):
        s = shared_session
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        s.execute("FIND CURRENT course WITHIN system_course")
        result = s.execute("GET")
        assert len(result.requests) == 1  # cache was dropped; one RETRIEVE

    def test_unknown_item_rejected(self, shared_session):
        from repro.errors import SchemaError

        s = shared_session
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        with pytest.raises(SchemaError):
            s.execute("GET ghost IN course")


class TestStoreBaseEntity:
    def test_store_mints_key_and_inserts(self, session):
        s = session
        s.execute("MOVE 'Fresh Person' TO name IN person")
        s.execute("MOVE 33 TO age IN person")
        result = s.execute("STORE person")
        assert result.ok
        assert result.dbkey.startswith("person$")
        assert any(r.startswith("INSERT (<FILE, 'person'>") for r in result.requests)

    def test_store_becomes_run_unit(self, session):
        s = session
        s.execute("MOVE 'Fresh Person' TO name IN person")
        s.execute("STORE person")
        assert s.cit.run_unit.record_type == "person"

    def test_stored_record_findable(self, session):
        s = session
        s.execute("MOVE 'Fresh Person' TO name IN person")
        s.execute("MOVE 33 TO age IN person")
        stored = s.execute("STORE person")
        s.execute("MOVE 'Fresh Person' TO name IN person")
        found = s.execute("FIND ANY person USING name IN person")
        assert found.dbkey == stored.dbkey

    def test_unique_name_duplicate_rejected(self, session):
        s = session
        s.execute("MOVE 'Dup Name' TO name IN person")
        s.execute("STORE person")
        with pytest.raises(ConstraintViolation):
            s.execute("STORE person")

    def test_duplicate_check_issues_retrieve(self, session):
        s = session
        s.execute("MOVE 'Some Person' TO name IN person")
        result = s.execute("STORE person")
        assert any(
            r.startswith("RETRIEVE ((FILE = 'person') AND (name = 'Some Person'))")
            for r in result.requests
        )

    def test_composite_uniqueness(self, session):
        s = session
        # Same title as an existing course but a fresh semester: allowed.
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        got = s.execute("GET course")
        s.execute(f"MOVE '{got.values['title']}' TO title IN course")
        s.execute("MOVE 'winter2' TO semester IN course")  # not a real semester: unique
        s.execute("MOVE 1 TO credits IN course")
        assert s.execute("STORE course").ok


class TestStoreSubtype:
    def _store_person(self, s, name="Subtype Base"):
        s.execute(f"MOVE '{name}' TO name IN person")
        s.execute("MOVE 20 TO age IN person")
        return s.execute("STORE person")

    def test_subtype_reuses_supertype_key(self, session):
        s = session
        person = self._store_person(s)
        s.execute("MOVE 'history' TO major IN student")
        student = s.execute("STORE student")
        assert student.dbkey == person.dbkey

    def test_subtype_requires_isa_occurrence(self, session):
        s = session
        with pytest.raises(CurrencyError):
            session.execute("STORE student")

    def test_double_store_rejected(self, session):
        s = session
        self._store_person(s)
        s.execute("MOVE 'history' TO major IN student")
        s.execute("STORE student")
        s.execute("FIND CURRENT student WITHIN person_student")
        with pytest.raises(ConstraintViolation):
            s.execute("STORE student")

    def test_overlap_allows_student_faculty(self, session):
        s = session
        person = self._store_person(s)
        s.execute("MOVE 60000.0 TO salary IN employee")
        employee = s.execute("STORE employee")
        assert employee.dbkey == person.dbkey
        s.execute("MOVE 'professor' TO rank IN faculty")
        faculty = s.execute("STORE faculty")
        assert faculty.ok
        # The overlap table allows student+faculty: store student too.
        s.execute("MOVE 'physics' TO major IN student")
        assert s.execute("STORE student").ok

    def test_overlap_blocks_faculty_support_staff(self, session):
        s = session
        self._store_person(s)
        s.execute("MOVE 60000.0 TO salary IN employee")
        s.execute("STORE employee")
        s.execute("MOVE 'professor' TO rank IN faculty")
        s.execute("STORE faculty")
        s.execute("MOVE 'admin' TO skill IN support_staff")
        # support_staff does not overlap with faculty.
        with pytest.raises(ConstraintViolation):
            s.execute("STORE support_staff")

    def test_overlap_check_queries_terminal_subtypes(self, session):
        s = session
        self._store_person(s)
        s.execute("MOVE 'history' TO major IN student")
        result = s.execute("STORE student")
        # The STORE's auxiliary retrieves probed the other terminal files.
        probed = " ".join(result.requests)
        assert "(FILE = 'faculty')" in probed
        assert "(FILE = 'support_staff')" in probed


class TestStoreLink:
    def test_store_link_stages_without_abdl(self, session):
        result = session.execute("STORE link_1")
        assert result.ok
        assert result.requests == []
        assert result.dbkey.startswith("link_1$")
