"""FIND translation against the AB(functional) database (VI.B)."""

import pytest

from repro.errors import CurrencyError, TranslationError
from repro.kms import Status


class TestFindAny:
    def test_thesis_retrieve_shape(self, shared_session):
        """VI.B.1: FIND ANY maps to one RETRIEVE with (FILE = ...) first."""
        s = shared_session
        s.execute("MOVE 'fall' TO semester IN course")
        result = s.execute("FIND ANY course USING semester IN course")
        assert result.ok
        assert len(result.requests) == 1
        assert result.requests[0].startswith("RETRIEVE ((FILE = 'course') AND (semester = 'fall'))")
        assert result.requests[0].endswith("BY course")

    def test_multiple_using_items(self, shared_session):
        s = shared_session
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("MOVE 3 TO credits IN course")
        result = s.execute("FIND ANY course USING semester, credits IN course")
        if result.ok:
            assert result.values["semester"] == "fall"
            assert result.values["credits"] == 3
        assert "(semester = 'fall') AND (credits = 3)" in result.requests[0]

    def test_updates_run_unit_and_record_currency(self, shared_session):
        s = shared_session
        s.execute("MOVE 'fall' TO semester IN course")
        result = s.execute("FIND ANY course USING semester IN course")
        assert s.cit.run_unit.dbkey == result.dbkey
        assert s.cit.record("course").dbkey == result.dbkey

    def test_not_found(self, shared_session):
        s = shared_session
        s.execute("MOVE 'No Such Title' TO title IN course")
        result = s.execute("FIND ANY course USING title IN course")
        assert result.status is Status.NOT_FOUND
        assert s.cit.run_unit is None

    def test_requires_uwa_value(self, shared_session):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            shared_session.execute("FIND ANY course USING dept IN course")

    def test_unknown_item_rejected(self, shared_session):
        from repro.errors import SchemaError

        shared_session.execute("MOVE 1 TO credits IN course")
        with pytest.raises(SchemaError):
            shared_session.execute("FIND ANY course USING ghost IN course")

    def test_fills_record_type_buffer(self, shared_session):
        s = shared_session
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        assert s.engine.buffers.has_records("course")

    def test_updates_member_set_currency_from_pairs(self, shared_session):
        s = shared_session
        s.execute("MOVE 'computer science' TO major IN student")
        result = s.execute("FIND ANY student USING major IN student")
        assert result.ok
        # Single-valued set currency comes straight off the advisor keyword.
        advisor = s.cit.set_currency("advisor")
        assert advisor.owner_dbkey is not None
        # ISA set currency: owner shares the student's database key.
        assert s.cit.set_currency("person_student").owner_dbkey == result.dbkey


class TestFindCurrent:
    def test_no_abdl_issued(self, shared_session):
        """VI.B.2: FIND CURRENT only updates the CIT."""
        s = shared_session
        s.execute("MOVE 'computer science' TO major IN student")
        s.execute("FIND ANY student USING major IN student")
        result = s.execute("FIND CURRENT student WITHIN person_student")
        assert result.ok
        assert result.requests == []

    def test_promotes_set_current_to_run_unit(self, shared_session):
        s = shared_session
        s.execute("MOVE 'computer science' TO major IN student")
        found = s.execute("FIND ANY student USING major IN student")
        # Disturb the run-unit with an unrelated FIND.
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        assert s.cit.run_unit.record_type == "course"
        result = s.execute("FIND CURRENT student WITHIN person_student")
        assert s.cit.run_unit.record_type == "student"
        assert s.cit.run_unit.dbkey == found.dbkey

    def test_type_mismatch_rejected(self, shared_session):
        s = shared_session
        s.execute("MOVE 'computer science' TO major IN student")
        s.execute("FIND ANY student USING major IN student")
        with pytest.raises(CurrencyError):
            s.execute("FIND CURRENT person WITHIN person_student")

    def test_null_set_rejected(self, shared_session):
        with pytest.raises(CurrencyError):
            shared_session.execute("FIND CURRENT student WITHIN advisor")


class TestFindFirstNext:
    def _enter_cs_department(self, s):
        s.execute("MOVE 'computer_science' TO dname IN department")
        return s.execute("FIND ANY department USING dname IN department")

    def test_single_valued_set_iteration(self, shared_session):
        """VI.B.4 member-side: (FILE = member) AND (set = owner-dbkey)."""
        s = shared_session
        dept = self._enter_cs_department(s)
        result = s.execute("FIND FIRST faculty WITHIN dept")
        assert result.ok
        assert (
            f"RETRIEVE ((FILE = 'faculty') AND (dept = '{dept.dbkey}'))"
            in result.requests[0]
        )
        count = 1
        while True:
            result = s.execute("FIND NEXT faculty WITHIN dept")
            if not result.ok:
                break
            count += 1
        assert result.status is Status.END_OF_SET
        assert count >= 1

    def test_next_issues_no_abdl(self, shared_session):
        """FIND NEXT walks the request buffer (VI.B.4)."""
        s = shared_session
        self._enter_cs_department(s)
        s.execute("FIND FIRST faculty WITHIN dept")
        result = s.execute("FIND NEXT faculty WITHIN dept")
        assert result.requests == []

    def test_first_last_symmetry(self, shared_session):
        s = shared_session
        self._enter_cs_department(s)
        first = s.execute("FIND FIRST faculty WITHIN dept")
        last = s.execute("FIND LAST faculty WITHIN dept")
        assert first.ok and last.ok
        # PRIOR from the first record hits the front edge.
        s.execute("FIND FIRST faculty WITHIN dept")
        assert s.execute("FIND PRIOR faculty WITHIN dept").status is Status.END_OF_SET

    def test_isa_set_iteration(self, shared_session):
        """ISA members share the owner's database key."""
        s = shared_session
        s.execute("MOVE 'computer science' TO major IN student")
        student = s.execute("FIND ANY student USING major IN student")
        s.execute("FIND OWNER WITHIN person_student")
        result = s.execute("FIND FIRST student WITHIN person_student")
        assert result.dbkey == student.dbkey
        assert (
            f"RETRIEVE ((FILE = 'student') AND (student = '{student.dbkey}'))"
            in result.requests[0]
        )

    def test_system_set_iterates_whole_file(self, shared_session):
        s = shared_session
        result = s.execute("FIND FIRST person WITHIN system_person")
        assert result.ok
        assert "RETRIEVE (FILE = 'person') (*)" in result.requests[0]
        count = 1
        while s.execute("FIND NEXT person WITHIN system_person").ok:
            count += 1
        assert count == 30

    def test_one_to_many_needs_two_requests(self, shared_session):
        """Owner-carried sets: collect member keys, then fetch members."""
        s = shared_session
        s.execute("MOVE 'computer science' TO major IN student")
        s.execute("FIND ANY student USING major IN student")
        result = s.execute("FIND FIRST course WITHIN enrollment")
        assert result.ok
        assert len(result.requests) == 2
        assert "(FILE = 'student')" in result.requests[0]
        assert "(FILE = 'course')" in result.requests[1]
        assert " OR " in result.requests[1] or result.requests[1].count("course$") == 1

    def test_member_not_of_set_rejected(self, shared_session):
        with pytest.raises(TranslationError):
            shared_session.execute("FIND FIRST course WITHIN dept")

    def test_next_without_first_rejected(self, shared_session):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            shared_session.execute("FIND NEXT faculty WITHIN dept")

    def test_first_without_occurrence_rejected(self, shared_session):
        with pytest.raises(CurrencyError):
            shared_session.execute("FIND FIRST faculty WITHIN dept")


class TestFindOwner:
    def test_owner_of_single_valued_set(self, shared_session):
        """VI.B.5: the CIT supplies the owner key; one RETRIEVE fetches it."""
        s = shared_session
        s.execute("MOVE 'computer science' TO major IN student")
        s.execute("FIND ANY student USING major IN student")
        result = s.execute("FIND OWNER WITHIN advisor")
        assert result.ok
        assert result.record_type == "faculty"
        assert len(result.requests) == 1
        assert "(FILE = 'faculty')" in result.requests[0]

    def test_owner_becomes_run_unit(self, shared_session):
        s = shared_session
        s.execute("MOVE 'computer science' TO major IN student")
        s.execute("FIND ANY student USING major IN student")
        result = s.execute("FIND OWNER WITHIN advisor")
        assert s.cit.run_unit.dbkey == result.dbkey
        assert s.cit.run_unit.record_type == "faculty"

    def test_isa_owner(self, shared_session):
        s = shared_session
        s.execute("MOVE 'computer science' TO major IN student")
        student = s.execute("FIND ANY student USING major IN student")
        result = s.execute("FIND OWNER WITHIN person_student")
        assert result.record_type == "person"
        assert result.dbkey == student.dbkey  # shared database key
        assert result.values.get("name")

    def test_system_set_has_no_owner(self, shared_session):
        s = shared_session
        s.execute("FIND FIRST person WITHIN system_person")
        with pytest.raises(TranslationError):
            s.execute("FIND OWNER WITHIN system_person")

    def test_null_currency_rejected(self, shared_session):
        with pytest.raises(CurrencyError):
            shared_session.execute("FIND OWNER WITHIN advisor")


class TestFindDuplicate:
    def test_duplicate_within_buffer(self, shared_session):
        """VI.B.3: scan the buffered set for a matching record."""
        s = shared_session
        s.execute("FIND FIRST person WITHIN system_person")
        first = s.execute("GET person")
        # Find another person with the same age, if the population has one.
        result = s.execute("FIND DUPLICATE WITHIN system_person USING age IN person")
        assert result.requests == []  # buffer scan only
        if result.ok:
            assert result.values["age"] == first.values["age"]
            assert result.dbkey != first.dbkey

    def test_no_duplicate_is_end_of_set(self, shared_session):
        s = shared_session
        s.execute("MOVE 'computer_science' TO dname IN department")
        s.execute("FIND ANY department USING dname IN department")
        s.execute("FIND FIRST faculty WITHIN dept")
        result = s.execute("FIND DUPLICATE WITHIN dept USING faculty IN faculty")
        # The database key is unique within the buffer, so never a duplicate.
        assert result.status is Status.END_OF_SET

    def test_requires_loaded_buffer(self, shared_session):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            shared_session.execute("FIND DUPLICATE WITHIN dept USING rank IN faculty")


class TestFindWithinCurrent:
    def test_filters_by_uwa_values(self, shared_session):
        """VI.B.6: member search with UWA item predicates."""
        s = shared_session
        s.execute("MOVE 'computer_science' TO dname IN department")
        dept = s.execute("FIND ANY department USING dname IN department")
        s.execute("FIND FIRST faculty WITHIN dept")
        got = s.execute("GET faculty")
        s.execute(f"MOVE '{got.values['rank']}' TO rank IN faculty")
        result = s.execute("FIND faculty WITHIN dept CURRENT USING rank IN faculty")
        assert result.ok
        assert result.values["rank"] == got.values["rank"]
        assert f"(dept = '{dept.dbkey}') AND (rank = '{got.values['rank']}')" in result.requests[0]

    def test_no_match_not_found(self, shared_session):
        s = shared_session
        s.execute("MOVE 'computer_science' TO dname IN department")
        s.execute("FIND ANY department USING dname IN department")
        s.execute("FIND FIRST faculty WITHIN dept")
        s.execute("MOVE 'no_such_rank' TO rank IN faculty")
        result = s.execute("FIND faculty WITHIN dept CURRENT USING rank IN faculty")
        assert result.status is Status.NOT_FOUND
