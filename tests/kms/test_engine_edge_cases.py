"""Engine-level edge cases: currency misuse, statement validation."""

import pytest

from repro.errors import (
    CurrencyError,
    ExecutionError,
    SchemaError,
    TranslationError,
)
from repro.kms import Status
from repro.network import dml


class TestParsedStatementInput:
    def test_engine_accepts_parsed_statements(self, shared_session):
        statement = dml.parse_statement("MOVE 'fall' TO semester IN course")
        assert shared_session.execute(statement).ok

    def test_move_validates_item(self, shared_session):
        with pytest.raises(SchemaError):
            shared_session.execute("MOVE 1 TO ghost IN course")

    def test_move_validates_record(self, shared_session):
        with pytest.raises(SchemaError):
            shared_session.execute("MOVE 1 TO x IN ghost")


class TestFindValidation:
    def test_find_any_unknown_record(self, shared_session):
        with pytest.raises(SchemaError):
            shared_session.execute("FIND ANY ghost USING x IN ghost")

    def test_find_first_unknown_set(self, shared_session):
        with pytest.raises(SchemaError):
            shared_session.execute("FIND FIRST course WITHIN ghost")

    def test_find_within_current_member_check(self, shared_session):
        shared_session.execute("MOVE 'x' TO title IN course")
        with pytest.raises(TranslationError):
            shared_session.execute(
                "FIND course WITHIN dept CURRENT USING title IN course"
            )

    def test_duplicate_items_validated(self, shared_session):
        s = shared_session
        s.execute("FIND FIRST person WITHIN system_person")
        with pytest.raises(SchemaError):
            s.execute("FIND DUPLICATE WITHIN system_person USING ghost IN person")


class TestRunUnitGuards:
    @pytest.mark.parametrize(
        "statement",
        [
            "GET",
            "CONNECT student TO advisor",
            "DISCONNECT student FROM advisor",
            "MODIFY major IN student",
            "ERASE student",
        ],
    )
    def test_statements_need_run_unit(self, shared_session, statement):
        with pytest.raises(CurrencyError):
            shared_session.execute(statement)

    def test_connect_member_type_check(self, shared_session):
        s = shared_session
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        with pytest.raises(TranslationError):
            s.execute("CONNECT course TO advisor")  # course not advisor's member


class TestRunSequences:
    def test_run_executes_whole_transaction(self, shared_session):
        results = shared_session.run(
            "MOVE 'fall' TO semester IN course\n"
            "FIND ANY course USING semester IN course\n"
            "GET"
        )
        assert [r.ok for r in results] == [True, True, True]

    def test_requests_attributed_per_statement(self, shared_session):
        results = shared_session.run(
            "MOVE 'fall' TO semester IN course\n"
            "FIND ANY course USING semester IN course"
        )
        assert results[0].requests == []
        assert len(results[1].requests) == 1


class TestBufferInvalidations:
    def test_connect_invalidates_set_buffer(self, session):
        s = session
        s.execute("MOVE 'Inval Person' TO name IN person")
        s.execute("MOVE 9 TO age IN person")
        s.execute("STORE person")
        s.execute("MOVE 'm' TO major IN student")
        s.execute("STORE student")
        s.execute("MOVE 'fall' TO semester IN course")
        s.execute("FIND ANY course USING semester IN course")
        s.execute("FIND CURRENT student WITHIN person_student")
        s.execute("FIND FIRST course WITHIN enrollment")  # empty, but loads RB
        s.execute("FIND CURRENT course WITHIN system_course")
        s.execute("CONNECT course TO enrollment")
        assert not s.engine.buffers.has_records("enrollment")

    def test_erase_clears_all_buffers(self, session):
        s = session
        s.execute("FIND FIRST person WITHIN system_person")
        s.execute("MOVE 'Eraser' TO name IN person")
        s.execute("MOVE 2 TO age IN person")
        s.execute("STORE person")
        s.execute("ERASE person")
        assert s.engine.buffers.count == 0


class TestStatusValues:
    def test_not_found_vs_end_of_set(self, shared_session):
        s = shared_session
        s.execute("MOVE 'Nobody Whatsoever' TO name IN person")
        assert (
            s.execute("FIND ANY person USING name IN person").status
            is Status.NOT_FOUND
        )
        s.execute("FIND FIRST person WITHIN system_person")
        result = s.execute("FIND PRIOR person WITHIN system_person")
        assert result.status is Status.END_OF_SET

    def test_result_repr(self, shared_session):
        s = shared_session
        result = s.execute("FIND FIRST person WITHIN system_person")
        assert "person[" in repr(result)
