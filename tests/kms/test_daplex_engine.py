"""The DAPLEX language interface engine over AB(functional)."""

import pytest

from repro import MLDS
from repro.errors import ConstraintViolation, ExecutionError, SchemaError, TranslationError
from repro.university import generate_university, load_university


@pytest.fixture()
def mlds_small():
    mlds = MLDS(backend_count=2)
    load_university(mlds, generate_university(persons=24, courses=8, seed=13))
    return mlds


@pytest.fixture()
def daplex(mlds_small):
    return mlds_small.open_daplex_session("university")


class TestForEachQueries:
    def test_direct_scalar_condition_compiles_to_query(self, daplex):
        result = daplex.execute(
            "FOR EACH s IN student SUCH THAT major(s) = 'computer science' "
            "PRINT gpa(s);"
        )
        assert any(
            "(FILE = 'student') AND (major = 'computer science')" in r
            for r in result.requests
        )

    def test_inherited_function_print(self, daplex):
        """Value inheritance: name is declared on person, read via student."""
        result = daplex.execute("FOR EACH s IN student PRINT name(s);")
        assert result.rows
        assert all(row["name(s)"] for row in result.rows)

    def test_inherited_function_condition_post_filters(self, daplex):
        everyone = daplex.execute("FOR EACH s IN student PRINT name(s);")
        target = everyone.rows[0]["name(s)"]
        result = daplex.execute(
            f"FOR EACH s IN student SUCH THAT name(s) = '{target}' PRINT gpa(s);"
        )
        assert len(result.rows) == 1

    def test_nested_path_navigation(self, daplex):
        result = daplex.execute(
            "FOR EACH s IN student PRINT dname(dept(advisor(s)));"
        )
        assert result.rows
        assert all(row["dname(dept(advisor(s)))"] for row in result.rows)

    def test_multivalued_function_prints_joined_values(self, daplex):
        result = daplex.execute("FOR EACH f IN faculty PRINT teaching(f);")
        assert any(
            row["teaching(f)"] and "course$" in row["teaching(f)"]
            for row in result.rows
        )

    def test_disjunctive_condition(self, daplex):
        result = daplex.execute(
            "FOR EACH s IN student SUCH THAT gpa(s) >= 3.9 OR gpa(s) < 2.1 "
            "PRINT gpa(s);"
        )
        for row in result.rows:
            assert row["gpa(s)"] >= 3.9 or row["gpa(s)"] < 2.1

    def test_range_condition(self, daplex):
        result = daplex.execute(
            "FOR EACH c IN course SUCH THAT credits(c) >= 4 PRINT credits(c);"
        )
        assert all(row["credits(c)"] >= 4 for row in result.rows)

    def test_unknown_type_rejected(self, daplex):
        with pytest.raises(SchemaError):
            daplex.execute("FOR EACH x IN ghost PRINT x;")

    def test_unknown_function_rejected(self, daplex):
        with pytest.raises(SchemaError):
            daplex.execute("FOR EACH s IN student PRINT ghost(s);")

    def test_scalar_cannot_be_dereferenced(self, daplex):
        with pytest.raises(TranslationError):
            daplex.execute("FOR EACH s IN student PRINT dname(major(s));")


class TestLet:
    def test_let_updates_value(self, daplex):
        daplex.execute(
            "FOR EACH s IN student SUCH THAT gpa(s) < 2.5 BEGIN "
            "LET major(s) = 'remedial'; END;"
        )
        result = daplex.execute(
            "FOR EACH s IN student SUCH THAT major(s) = 'remedial' PRINT gpa(s);"
        )
        assert all(row["gpa(s)"] < 2.5 for row in result.rows)

    def test_let_inherited_function_updates_ancestor_file(self, daplex):
        everyone = daplex.execute("FOR EACH s IN student PRINT name(s);")
        target = everyone.rows[0]["name(s)"]
        result = daplex.execute(
            f"FOR EACH s IN student SUCH THAT name(s) = '{target}' BEGIN "
            f"LET age(s) = 99; END;"
        )
        assert result.touched == 1
        assert any("(FILE = 'person')" in r and "UPDATE" in r for r in result.requests)

    def test_let_nested_path_rejected(self, daplex):
        with pytest.raises(TranslationError):
            daplex.execute(
                "FOR EACH s IN student BEGIN LET dname(dept(s)) = 'x'; END;"
            )


class TestForNew:
    def test_new_base_entity(self, daplex):
        result = daplex.execute(
            "FOR A NEW p IN person BEGIN LET name(p) = 'Ada'; LET age(p) = 28; END;"
        )
        assert result.touched == 1
        check = daplex.execute("FOR EACH p IN person SUCH THAT name(p) = 'Ada' PRINT age(p);")
        assert check.rows == [{"age(p)": 28}]

    def test_new_subtype_extends_supertype(self, daplex):
        daplex.execute("FOR A NEW p IN person BEGIN LET name(p) = 'Ada'; END;")
        result = daplex.execute(
            "FOR A NEW s IN student OF person SUCH THAT name(person) = 'Ada' "
            "BEGIN LET major(s) = 'math'; END;"
        )
        assert result.touched == 1
        check = daplex.execute(
            "FOR EACH s IN student SUCH THAT major(s) = 'math' PRINT name(s);"
        )
        assert {"name(s)": "Ada"} in check.rows

    def test_subtype_without_selector_rejected(self, daplex):
        with pytest.raises(TranslationError):
            daplex.execute("FOR A NEW s IN student BEGIN LET major(s) = 'x'; END;")

    def test_selector_on_base_entity_rejected(self, daplex):
        with pytest.raises(TranslationError):
            daplex.execute(
                "FOR A NEW p IN person OF person SUCH THAT name(person) = 'x' "
                "BEGIN LET name(p) = 'y'; END;"
            )

    def test_ambiguous_selector_rejected(self, daplex):
        daplex.execute("FOR A NEW p IN person BEGIN LET age(p) = 7; END;")
        daplex.execute("FOR A NEW p IN person BEGIN LET age(p) = 7; END;")
        with pytest.raises(ExecutionError):
            daplex.execute(
                "FOR A NEW s IN student OF person SUCH THAT age(person) = 7 "
                "BEGIN LET major(s) = 'm'; END;"
            )

    def test_double_extension_rejected(self, daplex):
        daplex.execute("FOR A NEW p IN person BEGIN LET name(p) = 'Solo'; END;")
        statement = (
            "FOR A NEW s IN student OF person SUCH THAT name(person) = 'Solo' "
            "BEGIN LET major(s) = 'm'; END;"
        )
        daplex.execute(statement)
        with pytest.raises(ConstraintViolation):
            daplex.execute(statement)

    def test_uniqueness_enforced(self, daplex):
        daplex.execute("FOR A NEW p IN person BEGIN LET name(p) = 'Unique U'; END;")
        with pytest.raises(ConstraintViolation):
            daplex.execute("FOR A NEW p IN person BEGIN LET name(p) = 'Unique U'; END;")

    def test_unknown_function_rejected(self, daplex):
        with pytest.raises(SchemaError):
            daplex.execute("FOR A NEW p IN person BEGIN LET ghost(p) = 1; END;")


class TestDestroy:
    def test_destroy_unreferenced_entity(self, daplex):
        daplex.execute("FOR A NEW p IN person BEGIN LET name(p) = 'Doomed'; END;")
        result = daplex.execute(
            "FOR EACH p IN person SUCH THAT name(p) = 'Doomed' DESTROY p;"
        )
        assert result.touched == 1
        check = daplex.execute(
            "FOR EACH p IN person SUCH THAT name(p) = 'Doomed' PRINT p;"
        )
        assert check.rows == []

    def test_destroy_cascades_to_subtypes(self, daplex):
        daplex.execute("FOR A NEW p IN person BEGIN LET name(p) = 'Parent'; END;")
        daplex.execute(
            "FOR A NEW s IN student OF person SUCH THAT name(person) = 'Parent' "
            "BEGIN LET major(s) = 'cascade'; END;"
        )
        daplex.execute("FOR EACH p IN person SUCH THAT name(p) = 'Parent' DESTROY p;")
        check = daplex.execute(
            "FOR EACH s IN student SUCH THAT major(s) = 'cascade' PRINT s;"
        )
        assert check.rows == []

    def test_destroy_referenced_entity_aborts(self, daplex):
        # Every loaded faculty member is referenced (advisor / dept values).
        with pytest.raises(ConstraintViolation):
            daplex.execute("FOR EACH f IN faculty DESTROY f;")


class TestCrossInterfaceConsistency:
    """The thesis's whole point: both languages see one database."""

    def test_daplex_update_visible_to_codasyl(self, mlds_small, daplex):
        daplex.execute("FOR A NEW p IN person BEGIN LET name(p) = 'Shared'; LET age(p) = 1; END;")
        codasyl = mlds_small.open_codasyl_session("university")
        codasyl.execute("MOVE 'Shared' TO name IN person")
        found = codasyl.execute("FIND ANY person USING name IN person")
        assert found.ok and found.values["age"] == 1

    def test_codasyl_update_visible_to_daplex(self, mlds_small, daplex):
        codasyl = mlds_small.open_codasyl_session("university")
        codasyl.execute("MOVE 'Other Way' TO name IN person")
        codasyl.execute("MOVE 77 TO age IN person")
        codasyl.execute("STORE person")
        result = daplex.execute(
            "FOR EACH p IN person SUCH THAT name(p) = 'Other Way' PRINT age(p);"
        )
        assert result.rows == [{"age(p)": 77}]

    def test_codasyl_connect_visible_as_function_value(self, mlds_small, daplex):
        codasyl = mlds_small.open_codasyl_session("university")
        codasyl.execute("MOVE 'Wired' TO name IN person")
        codasyl.execute("MOVE 20 TO age IN person")
        codasyl.execute("STORE person")
        codasyl.execute("MOVE 'wiring' TO major IN student")
        codasyl.execute("STORE student")
        codasyl.execute("MOVE 'professor' TO rank IN faculty")
        faculty = codasyl.execute("FIND ANY faculty USING rank IN faculty")
        codasyl.execute("FIND CURRENT student WITHIN person_student")
        codasyl.execute("CONNECT student TO advisor")
        result = daplex.execute(
            "FOR EACH s IN student SUCH THAT major(s) = 'wiring' PRINT advisor(s);"
        )
        assert result.rows == [{"advisor(s)": faculty.dbkey}]


class TestAggregates:
    def test_count_multivalued_entity_function(self, daplex):
        result = daplex.execute("FOR EACH f IN faculty PRINT COUNT(teaching(f));")
        assert result.rows
        assert all(isinstance(r["COUNT(teaching(f))"], int) for r in result.rows)
        assert any(r["COUNT(teaching(f))"] > 0 for r in result.rows)

    def test_total_and_average_scalar_multivalued(self, daplex):
        result = daplex.execute(
            "FOR EACH e IN employee PRINT COUNT(phones(e)), TOTAL(phones(e)), "
            "AVERAGE(phones(e));"
        )
        for row in result.rows:
            count = row["COUNT(phones(e))"]
            if count:
                assert row["TOTAL(phones(e))"] == pytest.approx(
                    row["AVERAGE(phones(e))"] * count
                )

    def test_maximum_minimum(self, daplex):
        result = daplex.execute(
            "FOR EACH e IN employee PRINT MAXIMUM(phones(e)), MINIMUM(phones(e));"
        )
        for row in result.rows:
            if row["MAXIMUM(phones(e))"] is not None:
                assert row["MAXIMUM(phones(e))"] >= row["MINIMUM(phones(e))"]

    def test_count_single_valued_is_zero_or_one(self, daplex):
        result = daplex.execute("FOR EACH s IN student PRINT COUNT(advisor(s));")
        assert all(r["COUNT(advisor(s))"] in (0, 1) for r in result.rows)

    def test_aggregate_over_navigation(self, daplex):
        """COUNT(teaching(advisor(s))): how many courses a student's advisor teaches."""
        result = daplex.execute(
            "FOR EACH s IN student PRINT COUNT(teaching(advisor(s)));"
        )
        assert result.rows
        assert all(
            isinstance(r["COUNT(teaching(advisor(s)))"], int) for r in result.rows
        )

    def test_total_of_entity_values_is_null(self, daplex):
        """TOTAL over non-numeric (entity keys) yields NULL, not a crash."""
        result = daplex.execute("FOR EACH f IN faculty PRINT TOTAL(teaching(f));")
        assert all(r["TOTAL(teaching(f))"] is None for r in result.rows)

    def test_inner_multivalued_rejected(self, daplex):
        with pytest.raises(TranslationError):
            daplex.execute("FOR EACH f IN faculty PRINT COUNT(title(teaching(f)));")
