"""The DAPLEX DML parser."""

import pytest

from repro.errors import ParseError
from repro.functional import daplex_dml as dml


class TestForEach:
    def test_print_statement(self):
        statement = dml.parse_statement(
            "FOR EACH s IN student SUCH THAT major(s) = 'cs' PRINT name(s), gpa(s);"
        )
        assert isinstance(statement, dml.ForEach)
        assert statement.variable == "s"
        assert statement.type_name == "student"
        action = statement.actions[0]
        assert isinstance(action, dml.PrintAction)
        assert [p.render() for p in action.expressions] == ["name(s)", "gpa(s)"]

    def test_no_condition(self):
        statement = dml.parse_statement("FOR EACH p IN person PRINT name(p);")
        assert statement.condition is None

    def test_condition_dnf(self):
        statement = dml.parse_statement(
            "FOR EACH s IN student SUCH THAT gpa(s) >= 3.5 AND major(s) = 'cs' "
            "OR gpa(s) = 4.0 PRINT name(s);"
        )
        assert len(statement.condition.clauses) == 2
        assert len(statement.condition.clauses[0]) == 2

    def test_nested_path(self):
        statement = dml.parse_statement(
            "FOR EACH s IN student PRINT dname(dept(advisor(s)));"
        )
        path = statement.actions[0].expressions[0]
        assert path.functions == ("dname", "dept", "advisor")
        assert path.render() == "dname(dept(advisor(s)))"

    def test_bare_variable_path(self):
        statement = dml.parse_statement("FOR EACH s IN student PRINT s;")
        assert statement.actions[0].expressions[0].functions == ()

    def test_begin_end_block(self):
        statement = dml.parse_statement(
            "FOR EACH s IN student SUCH THAT gpa(s) < 2.0 BEGIN "
            "LET major(s) = 'probation'; PRINT name(s); END;"
        )
        assert len(statement.actions) == 2
        assert isinstance(statement.actions[0], dml.LetAction)

    def test_destroy(self):
        statement = dml.parse_statement(
            "FOR EACH s IN student SUCH THAT name(s) = 'X' DESTROY s;"
        )
        assert isinstance(statement.actions[0], dml.DestroyAction)

    def test_destroy_wrong_variable(self):
        with pytest.raises(ParseError):
            dml.parse_statement("FOR EACH s IN student DESTROY t;")

    def test_path_must_bottom_out_at_variable(self):
        with pytest.raises(ParseError):
            dml.parse_statement("FOR EACH s IN student PRINT name(t);")


class TestForNew:
    def test_base_entity(self):
        statement = dml.parse_statement(
            "FOR A NEW p IN person BEGIN LET name(p) = 'Ada'; LET age(p) = 28; END;"
        )
        assert isinstance(statement, dml.ForNew)
        assert statement.selector is None
        assert [l.path.functions[0] for l in statement.lets] == ["name", "age"]

    def test_subtype_with_selector(self):
        statement = dml.parse_statement(
            "FOR A NEW s IN student OF person SUCH THAT name(person) = 'Ada' "
            "BEGIN LET major(s) = 'math'; END;"
        )
        assert statement.selector.type_name == "person"
        assert statement.selector.condition.clauses[0][0].value == "Ada"

    def test_only_lets_allowed(self):
        with pytest.raises(ParseError):
            dml.parse_statement("FOR A NEW p IN person BEGIN PRINT name(p); END;")

    def test_null_value(self):
        statement = dml.parse_statement(
            "FOR A NEW p IN person BEGIN LET name(p) = NULL; END;"
        )
        assert statement.lets[0].value is None

    def test_negative_literal(self):
        statement = dml.parse_statement(
            "FOR A NEW p IN person BEGIN LET age(p) = -1; END;"
        )
        assert statement.lets[0].value == -1


class TestPrograms:
    def test_multiple_statements(self):
        program = dml.parse_program(
            "FOR EACH p IN person PRINT name(p);\n"
            "FOR A NEW p IN person BEGIN LET name(p) = 'X'; END;"
        )
        assert len(program) == 2

    def test_comments(self):
        program = dml.parse_program(
            "-- list everyone\nFOR EACH p IN person PRINT name(p);"
        )
        assert len(program) == 1


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "FOR SOME s IN student PRINT s;",
            "FOR EACH s student PRINT s;",
            "FOR EACH s IN student FROB s;",
            "FOR EACH s IN student SUCH name(s) = 'x' PRINT s;",
            "FOR A NEW s IN student BEGIN LET major(s) = 'x';",  # missing END
        ],
    )
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            dml.parse_statement(text)
