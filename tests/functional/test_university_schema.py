"""FIG-2.1/2.2: the University DAPLEX schema parses to the paper's inventory."""

import pytest

from repro.functional import ScalarKind
from repro.university import university_schema


@pytest.fixture(scope="module")
def schema():
    return university_schema()


class TestInventory:
    def test_entity_types(self, schema):
        assert set(schema.entity_types) == {"person", "department", "course"}

    def test_subtypes_and_supertypes(self, schema):
        supertypes = {name: tuple(s.supertypes) for name, s in schema.subtypes.items()}
        assert supertypes == {
            "employee": ("person",),
            "student": ("person",),
            "faculty": ("employee",),
            "support_staff": ("employee",),
        }

    def test_nonentity_types(self, schema):
        assert {
            "name_string",
            "rank_type",
            "semester_type",
            "credit_value",
            "dept_string",
            "gpa_value",
            "max_course_load",
        } <= set(schema.nonentity_types)

    def test_terminal_types(self, schema):
        assert not schema.is_terminal("person")
        assert not schema.is_terminal("employee")
        for terminal in ("student", "faculty", "support_staff", "course", "department"):
            assert schema.is_terminal(terminal)


class TestFunctions:
    def test_course_scalar_functions(self, schema):
        for name in ("title", "dept", "semester", "credits"):
            assert schema.function("course", name).is_scalar

    def test_semester_is_enumeration(self, schema):
        fn = schema.function("course", "semester")
        assert fn.result_scalar.kind is ScalarKind.ENUMERATION
        assert set(fn.result_scalar.values) == {"fall", "winter", "spring", "summer"}

    def test_phones_scalar_multivalued(self, schema):
        assert schema.function("employee", "phones").is_scalar_multivalued

    def test_single_valued_entity_functions(self, schema):
        assert schema.function("student", "advisor").range_type_name == "faculty"
        assert schema.function("faculty", "dept").range_type_name == "department"
        assert schema.function("support_staff", "supervisor").range_type_name == "employee"

    def test_many_to_many_pair(self, schema):
        teaching = schema.function("faculty", "teaching")
        taught_by = schema.function("course", "taught_by")
        assert teaching.is_multivalued_entity and teaching.range_type_name == "course"
        assert taught_by.is_multivalued_entity and taught_by.range_type_name == "faculty"

    def test_one_to_many_without_inverse(self, schema):
        assert schema.function("student", "enrollment").is_multivalued_entity

    def test_value_inheritance(self, schema):
        # name is declared on person and visible from every subtype.
        for subtype in ("employee", "student", "faculty", "support_staff"):
            assert schema.function(subtype, "name") is not None


class TestConstraints:
    def test_course_uniqueness(self, schema):
        assert schema.unique_functions_of("course") == ["title", "semester"]

    def test_person_name_unique(self, schema):
        assert schema.function("person", "name").unique

    def test_overlap_student_with_employees(self, schema):
        assert schema.overlap_allowed("student", "faculty")
        assert schema.overlap_allowed("student", "support_staff")
        assert not schema.overlap_allowed("faculty", "support_staff")
