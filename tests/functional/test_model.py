"""The functional data model classes (fun_dbid_node and friends)."""

import pytest

from repro.errors import SchemaError
from repro.functional import (
    EntitySubtype,
    EntityType,
    Function,
    FunctionalSchema,
    NonEntityType,
    NonEntityVariant,
    OverlapConstraint,
    ScalarKind,
    ScalarType,
    UniquenessConstraint,
)


def build_schema():
    schema = FunctionalSchema("demo")
    schema.add_nonentity_type(
        NonEntityType("rank_type", ScalarType(ScalarKind.ENUMERATION, values=("a", "bb")))
    )
    schema.add_entity_type(
        EntityType(
            "person",
            [
                Function("name", ScalarType(ScalarKind.STRING, length=30)),
                Function("age", ScalarType(ScalarKind.INTEGER)),
            ],
        )
    )
    schema.add_entity_type(
        EntityType("department", [Function("dname", ScalarType(ScalarKind.STRING, length=20))])
    )
    schema.add_subtype(
        EntitySubtype(
            "employee",
            ["person"],
            [
                Function("salary", ScalarType(ScalarKind.FLOAT)),
                Function("dept", "department"),
                Function("rank", "rank_type"),
            ],
        )
    )
    schema.add_subtype(
        EntitySubtype("manager", ["employee"], [Function("bonus", ScalarType(ScalarKind.INTEGER))])
    )
    schema.add_uniqueness(UniquenessConstraint(["name"], "person"))
    schema.add_overlap(OverlapConstraint(["manager"], ["consultant"]))
    return schema


@pytest.fixture()
def schema():
    schema = build_schema()
    schema.overlaps.clear()  # drop the dangling overlap for the happy path
    return schema.validate()


class TestScalarType:
    def test_string_total_length(self):
        assert ScalarType(ScalarKind.STRING, length=12).total_length == 12

    def test_enumeration_total_length_is_longest_literal(self):
        scalar = ScalarType(ScalarKind.ENUMERATION, values=("a", "ccc", "bb"))
        assert scalar.total_length == 3

    def test_boolean_total_length(self):
        assert ScalarType(ScalarKind.BOOLEAN).total_length == 5

    def test_contains_range(self):
        scalar = ScalarType(ScalarKind.INTEGER, low=1, high=5)
        assert scalar.contains(3)
        assert not scalar.contains(9)
        assert not scalar.contains("x")

    def test_contains_string_length(self):
        scalar = ScalarType(ScalarKind.STRING, length=3)
        assert scalar.contains("abc")
        assert not scalar.contains("abcd")

    def test_contains_enumeration(self):
        scalar = ScalarType(ScalarKind.ENUMERATION, values=("x", "y"))
        assert scalar.contains("x")
        assert not scalar.contains("z")

    def test_render(self):
        assert ScalarType(ScalarKind.STRING, length=5).render() == "STRING(5)"
        assert "RANGE" in ScalarType(ScalarKind.INTEGER, low=0, high=9).render()


class TestFunctionClassification:
    def test_scalar_function(self, schema):
        fn = schema.function("person", "name")
        assert fn.is_scalar and not fn.is_entity_valued
        assert fn.type_code() == "s"

    def test_entity_function(self, schema):
        fn = schema.function("employee", "dept")
        assert fn.is_single_valued_entity
        assert fn.range_type_name == "department"
        assert fn.type_code() == "e"

    def test_nonentity_function_resolves_scalar(self, schema):
        fn = schema.function("employee", "rank")
        assert fn.result_category == "nonentity"
        assert fn.result_scalar.kind is ScalarKind.ENUMERATION
        assert fn.type_code() == "s"  # enumerations behave as strings

    def test_multivalued_classification(self):
        fn = Function("teaching", "course", set_valued=True)
        fn.result_category = "entity"
        assert fn.is_multivalued_entity

    def test_scalar_multivalued(self):
        fn = Function("phones", ScalarType(ScalarKind.INTEGER), set_valued=True)
        fn.result_category = "scalar"
        fn.result_scalar = fn.result
        assert fn.is_scalar_multivalued

    def test_render(self):
        fn = Function("phones", ScalarType(ScalarKind.INTEGER), set_valued=True)
        assert fn.render() == "phones : SET OF INTEGER"


class TestHierarchy:
    def test_supertype_chain(self, schema):
        assert schema.supertype_chain("manager") == ["employee", "person"]

    def test_root_entity(self, schema):
        assert schema.root_entity("manager").name == "person"
        assert schema.root_entity("person").name == "person"

    def test_terminal_flags(self, schema):
        assert not schema.is_terminal("person")
        assert not schema.is_terminal("employee")
        assert schema.is_terminal("manager")
        assert schema.is_terminal("department")

    def test_terminal_subtypes(self, schema):
        assert [s.name for s in schema.terminal_subtypes()] == ["manager"]

    def test_hierarchy_below(self, schema):
        assert schema.hierarchy_below("person") == ["person", "employee", "manager"]

    def test_inherited_function_lookup(self, schema):
        assert schema.function("manager", "name") is not None
        assert schema.function("manager", "ghost") is None


class TestKeys:
    def test_next_key_sequence(self, schema):
        person = schema.entity_types["person"]
        assert person.next_key() == "person$1"
        assert person.next_key() == "person$2"
        assert person.last_key == 2


class TestValidation:
    def test_unknown_supertype(self):
        schema = FunctionalSchema("bad")
        schema.add_subtype(EntitySubtype("x", ["ghost"]))
        with pytest.raises(SchemaError):
            schema.validate()

    def test_unknown_function_result(self):
        schema = FunctionalSchema("bad")
        schema.add_entity_type(EntityType("a", [Function("f", "ghost")]))
        with pytest.raises(SchemaError):
            schema.validate()

    def test_cyclic_isa_detected(self):
        schema = FunctionalSchema("bad")
        schema.add_entity_type(EntityType("root"))
        schema.add_subtype(EntitySubtype("a", ["b"]))
        schema.add_subtype(EntitySubtype("b", ["a"]))
        with pytest.raises(SchemaError):
            schema.validate()

    def test_duplicate_name_rejected(self):
        schema = FunctionalSchema("bad")
        schema.add_entity_type(EntityType("a"))
        with pytest.raises(SchemaError):
            schema.add_subtype(EntitySubtype("a", ["a"]))

    def test_unique_constraint_unknown_function(self):
        schema = FunctionalSchema("bad")
        schema.add_entity_type(EntityType("a"))
        schema.add_uniqueness(UniquenessConstraint(["ghost"], "a"))
        with pytest.raises(SchemaError):
            schema.validate()

    def test_unique_constraint_marks_function(self, schema):
        assert schema.function("person", "name").unique

    def test_overlap_unknown_type(self):
        schema = build_schema()
        with pytest.raises(SchemaError):
            schema.validate()

    def test_subtype_needs_supertype(self):
        with pytest.raises(SchemaError):
            EntitySubtype("x", [])


class TestOverlapQueries:
    def test_overlap_allowed_with_constraint(self):
        schema = build_schema()
        schema.add_subtype(EntitySubtype("consultant", ["person"]))
        schema.validate()
        assert schema.overlap_allowed("manager", "consultant")
        assert schema.overlap_allowed("consultant", "manager")

    def test_disjoint_by_default(self, schema):
        assert not schema.overlap_allowed("manager", "department")

    def test_same_type_always_allowed(self, schema):
        assert schema.overlap_allowed("manager", "manager")


class TestRendering:
    def test_render_contains_declarations(self, schema):
        text = schema.render()
        assert "DATABASE demo;" in text
        assert "TYPE person IS" in text
        assert "TYPE manager IS employee" in text
        assert "UNIQUE name WITHIN person;" in text

    def test_render_parses_back(self, schema):
        from repro.functional import parse_schema

        reparsed = parse_schema(schema.render())
        assert reparsed.type_names() == schema.type_names()
