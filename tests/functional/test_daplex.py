"""The DAPLEX DDL parser."""

import pytest

from repro.errors import ParseError, SchemaError
from repro.functional import NonEntityVariant, ScalarKind, parse_schema


class TestEntityDeclarations:
    def test_minimal_entity(self):
        schema = parse_schema(
            "DATABASE d;\nTYPE a IS\nENTITY\n  x : INTEGER;\nEND ENTITY;"
        )
        assert list(schema.entity_types) == ["a"]
        assert schema.function("a", "x").result_scalar.kind is ScalarKind.INTEGER

    def test_subtype_with_multiple_supertypes(self):
        schema = parse_schema(
            "DATABASE d;\n"
            "TYPE a IS ENTITY x : INTEGER; END ENTITY;\n"
            "TYPE b IS ENTITY y : INTEGER; END ENTITY;\n"
            "TYPE c IS a, b ENTITY z : INTEGER; END ENTITY;"
        )
        assert schema.subtypes["c"].supertypes == ["a", "b"]

    def test_entity_valued_functions(self):
        schema = parse_schema(
            "DATABASE d;\n"
            "TYPE a IS ENTITY x : INTEGER; END ENTITY;\n"
            "TYPE b IS ENTITY single : a; multi : SET OF a; END ENTITY;"
        )
        assert schema.function("b", "single").is_single_valued_entity
        assert schema.function("b", "multi").is_multivalued_entity

    def test_nonnull_marker(self):
        schema = parse_schema(
            "DATABASE d;\nTYPE a IS ENTITY x : INTEGER NONNULL; END ENTITY;"
        )
        assert schema.function("a", "x").nonnull

    def test_comments_ignored(self):
        schema = parse_schema(
            "DATABASE d; -- the database\n"
            "TYPE a IS -- an entity\nENTITY\n  x : INTEGER; -- a function\nEND ENTITY;"
        )
        assert "a" in schema.entity_types


class TestNonEntityDeclarations:
    def test_string_type(self):
        schema = parse_schema("DATABASE d;\nTYPE s IS STRING(12);")
        nonentity = schema.nonentity_types["s"]
        assert nonentity.scalar.kind is ScalarKind.STRING
        assert nonentity.scalar.length == 12

    def test_enumeration(self):
        schema = parse_schema("DATABASE d;\nTYPE e IS (red, green, blue);")
        assert schema.nonentity_types["e"].scalar.values == ("red", "green", "blue")

    def test_integer_range(self):
        schema = parse_schema("DATABASE d;\nTYPE r IS INTEGER RANGE 1..5;")
        scalar = schema.nonentity_types["r"].scalar
        assert (scalar.low, scalar.high) == (1, 5)

    def test_float_range_with_negatives(self):
        schema = parse_schema("DATABASE d;\nTYPE r IS FLOAT RANGE -1.5..2.5;")
        scalar = schema.nonentity_types["r"].scalar
        assert (scalar.low, scalar.high) == (-1.5, 2.5)

    def test_boolean(self):
        schema = parse_schema("DATABASE d;\nTYPE b IS BOOLEAN;")
        assert schema.nonentity_types["b"].scalar.kind is ScalarKind.BOOLEAN

    def test_nonentity_subtype_inherits_scalar(self):
        schema = parse_schema(
            "DATABASE d;\nTYPE s IS STRING(9);\nSUBTYPE t IS s;"
        )
        nonentity = schema.nonentity_types["t"]
        assert nonentity.variant is NonEntityVariant.SUBTYPE
        assert nonentity.parent == "s"
        assert nonentity.scalar.length == 9

    def test_derived_type(self):
        schema = parse_schema("DATABASE d;\nDERIVED p IS FLOAT RANGE 0.0..1.0;")
        assert schema.nonentity_types["p"].variant is NonEntityVariant.DERIVED

    def test_constant(self):
        schema = parse_schema("DATABASE d;\nCONSTANT max IS 42;")
        nonentity = schema.nonentity_types["max"]
        assert nonentity.constant and nonentity.constant_value == 42

    def test_negative_constant(self):
        schema = parse_schema("DATABASE d;\nCONSTANT low IS -3;")
        assert schema.nonentity_types["low"].constant_value == -3

    def test_string_constant(self):
        schema = parse_schema("DATABASE d;\nCONSTANT tag IS 'v1';")
        assert schema.nonentity_types["tag"].constant_value == "v1"

    def test_subtype_of_unknown_parent(self):
        with pytest.raises(ParseError):
            parse_schema("DATABASE d;\nSUBTYPE t IS ghost;")


class TestConstraints:
    def test_unique(self):
        schema = parse_schema(
            "DATABASE d;\n"
            "TYPE a IS ENTITY x : INTEGER; y : INTEGER; END ENTITY;\n"
            "UNIQUE x, y WITHIN a;"
        )
        assert schema.uniqueness[0].functions == ("x", "y")
        assert schema.function("a", "x").unique

    def test_overlap(self):
        schema = parse_schema(
            "DATABASE d;\n"
            "TYPE a IS ENTITY x : INTEGER; END ENTITY;\n"
            "TYPE b IS a ENTITY y : INTEGER; END ENTITY;\n"
            "TYPE c IS a ENTITY z : INTEGER; END ENTITY;\n"
            "OVERLAP b WITH c;"
        )
        assert schema.overlap_allowed("b", "c")


class TestErrors:
    def test_missing_database_header(self):
        with pytest.raises(ParseError):
            parse_schema("TYPE a IS ENTITY x : INTEGER; END ENTITY;")

    def test_unterminated_entity(self):
        with pytest.raises(ParseError):
            parse_schema("DATABASE d;\nTYPE a IS ENTITY x : INTEGER;")

    def test_bad_declaration(self):
        with pytest.raises(ParseError):
            parse_schema("DATABASE d;\nFROB x;")

    def test_unknown_result_type_fails_validation(self):
        with pytest.raises(SchemaError):
            parse_schema("DATABASE d;\nTYPE a IS ENTITY f : ghost; END ENTITY;")
