"""ABDM records: keyword order, FILE convention, textual portion (Fig 2.3)."""

import pytest

from repro.abdm import FILE_ATTRIBUTE, Keyword, Record


@pytest.fixture()
def course_record():
    return Record.from_pairs(
        [
            (FILE_ATTRIBUTE, "course"),
            ("course", "course$1"),
            ("title", "Advanced Databases"),
            ("credits", 4),
        ],
        text="offered jointly with the EE department",
    )


class TestConstruction:
    def test_pairs_preserve_order(self, course_record):
        assert [a for a, _ in course_record.pairs()] == [
            "FILE",
            "course",
            "title",
            "credits",
        ]

    def test_file_name(self, course_record):
        assert course_record.file_name == "course"

    def test_file_name_missing(self):
        assert Record.from_pairs([("a", 1)]).file_name is None

    def test_textual_portion(self, course_record):
        assert "EE department" in course_record.text

    def test_at_most_one_keyword_per_attribute(self):
        record = Record([Keyword("a", 1), Keyword("a", 2)])
        assert record.get("a") == 2
        assert len(record) == 1


class TestAccess:
    def test_get_with_default(self, course_record):
        assert course_record.get("credits") == 4
        assert course_record.get("missing", "d") == "d"

    def test_getitem_and_contains(self, course_record):
        assert course_record["title"] == "Advanced Databases"
        assert "title" in course_record
        assert "nope" not in course_record

    def test_set_overwrites_in_place(self, course_record):
        course_record.set("credits", 5)
        assert course_record["credits"] == 5
        assert [a for a, _ in course_record.pairs()][-1] == "credits"

    def test_set_appends_new(self, course_record):
        course_record.set("semester", "fall")
        assert course_record.attributes[-1] == "semester"

    def test_remove(self, course_record):
        course_record.remove("title")
        assert "title" not in course_record
        course_record.remove("title")  # idempotent


class TestCopyEquality:
    def test_copy_is_independent(self, course_record):
        clone = course_record.copy()
        clone.set("credits", 1)
        assert course_record["credits"] == 4

    def test_equality_includes_order_and_text(self, course_record):
        same = Record.from_pairs(course_record.pairs(), text=course_record.text)
        assert same == course_record
        reordered = Record.from_pairs(list(reversed(course_record.pairs())), text=course_record.text)
        assert reordered != course_record

    def test_hashable(self, course_record):
        assert hash(course_record) == hash(course_record.copy())

    def test_not_equal_other_type(self, course_record):
        assert course_record != 42


class TestRendering:
    def test_keyword_render(self):
        assert Keyword("title", "DB").render() == "<title, 'DB'>"

    def test_record_render(self):
        record = Record.from_pairs([("FILE", "f"), ("x", 1)])
        assert record.render() == "(<FILE, 'f'>, <x, 1>)"

    def test_repr_mentions_text(self, course_record):
        assert "EE department" in repr(course_record)
