"""MVCC version chains in the record store: capture, seal, GC, limits.

The store keeps a bounded per-file chain of superseded record lists so
a snapshot read can reconstruct the committed state at any commit seq
at or above the GC watermark.  These tests drive the chain API the way
the kernel does: capture mode on for the mutation, ``seal_versions`` at
commit, ``records_at``/``find_at`` from snapshot readers.
"""

import pytest

from repro.abdm import ABStore, Predicate, Query, Record
from repro.abdm.directory import ClusteredStore, Directory
from repro.errors import SnapshotTooOld


def make_record(file_name, key, **extra):
    pairs = [("FILE", file_name), (file_name, key)]
    pairs.extend(extra.items())
    return Record.from_pairs(pairs)


def seeded_store():
    store = ABStore()
    for i in range(3):
        store.insert(make_record("pay", f"pay${i}", x=i))
    return store


def captured_insert(store, record, seq, watermark=0):
    """One auto-commit mutation cycle as the backend runs it."""
    store._capture = True
    try:
        store.insert(record)
    finally:
        store._capture = False
    store.seal_versions([record.file_name], seq, watermark)


class TestCapture:
    def test_no_capture_outside_backend_requests(self):
        store = seeded_store()
        store.insert(make_record("pay", "pay$9", x=9))  # replay/restore path
        assert store.version_depths() == {}

    def test_pending_entry_holds_the_pre_image(self):
        store = seeded_store()
        store._capture = True
        store.insert(make_record("pay", "pay$9", x=9))
        assert store.version_depths() == {"pay": 1}
        chain = store._versions["pay"]
        assert chain[-1].superseded_at is None  # pending until sealed
        assert len(chain[-1].records) == 3  # the state before the insert

    def test_one_pending_entry_per_commit_cycle(self):
        store = seeded_store()
        store._capture = True
        store.insert(make_record("pay", "pay$9", x=9))
        store.insert(make_record("pay", "pay$10", x=10))
        assert store.version_depths() == {"pay": 1}

    def test_discard_pending_drops_uncommitted_pre_image(self):
        store = seeded_store()
        store._capture = True
        store.insert(make_record("pay", "pay$9", x=9))
        store.discard_pending(["pay"])
        assert store.version_depths() == {}


class TestSnapshotReads:
    def test_records_at_reconstructs_the_sealed_state(self):
        store = seeded_store()
        captured_insert(store, make_record("pay", "pay$9", x=9), seq=1)
        assert len(store.records_at("pay", 0)) == 3  # before commit 1
        assert len(store.records_at("pay", 1)) == 4  # at/after commit 1

    def test_update_copy_on_write_preserves_old_values(self):
        store = seeded_store()
        store._capture = True
        query = Query.conjunction(
            [Predicate("FILE", "=", "pay"), Predicate("x", "=", 0)]
        )
        store.update(query, lambda r: r.set("x", 99))
        store._capture = False
        store.seal_versions(["pay"], 1, 0)
        old = [r.get("x") for r in store.records_at("pay", 0)]
        new = [r.get("x") for r in store.records_at("pay", 1)]
        assert 99 not in old and 0 in old
        assert 99 in new and 0 not in new

    def test_find_at_matches_find_on_a_replayed_store(self):
        store = seeded_store()
        captured_insert(store, make_record("pay", "pay$9", x=1), seq=1)
        query = Query.conjunction(
            [Predicate("FILE", "=", "pay"), Predicate("x", "=", 1)]
        )
        replayed = seeded_store()
        assert [r.pairs() for r in store.find_at(query, 0)] == [
            r.pairs() for r in replayed.find(query)
        ]
        assert len(store.find_at(query, 1)) == 2

    def test_snapshot_live_gates_the_cached_path(self):
        store = seeded_store()
        assert store.snapshot_live(["pay"], 0)  # no chains at all
        captured_insert(store, make_record("pay", "pay$9", x=9), seq=1)
        assert not store.snapshot_live(["pay"], 0)  # must reconstruct
        assert store.snapshot_live(["pay"], 1)  # live state is seq 1

    def test_clustered_store_serves_snapshots_too(self):
        directory = Directory()
        store = ClusteredStore(directory)
        for i in range(3):
            store.insert(make_record("pay", f"pay${i}", x=i))
        store._capture = True
        store.insert(make_record("pay", "pay$9", x=0))
        store._capture = False
        store.seal_versions(["pay"], 1, 0)
        query = Query.conjunction(
            [Predicate("FILE", "=", "pay"), Predicate("x", "=", 0)]
        )
        assert len(store.find_at(query, 0)) == 1
        assert len(store.find_at(query, 1)) == 2


class TestGarbageCollection:
    def test_watermark_drops_unreachable_entries(self):
        store = seeded_store()
        captured_insert(store, make_record("pay", "pay$9", x=9), seq=1)
        # No active snapshot below 1 -> the entry sealed at 1 is dead.
        captured_insert(store, make_record("pay", "pay$10", x=10), seq=2, watermark=1)
        assert store.version_depths() == {"pay": 1}

    def test_retain_cap_trims_and_flags_snapshot_too_old(self):
        store = seeded_store()
        store.version_retain = 2
        for seq in range(1, 6):
            # Watermark pinned at 0: only the hard cap can trim.
            captured_insert(store, make_record("pay", f"pay$n{seq}", x=seq), seq=seq)
        assert store.version_depths()["pay"] == 2
        with pytest.raises(SnapshotTooOld):
            store.records_at("pay", 0)
        assert len(store.records_at("pay", 4)) == 7  # still reconstructable
        assert not store.snapshot_live(["pay"], 0)  # too old, not "live"

    def test_restore_file_keeps_the_trim_horizon(self):
        store = seeded_store()
        store.version_retain = 1
        for seq in (1, 2, 3):
            captured_insert(store, make_record("pay", f"pay$n{seq}", x=seq), seq=seq)
        before = [r.pairs() for r in store.records_at("pay", 3)]
        store._capture = True
        store.insert(make_record("pay", "pay$doomed", x=99))
        store.restore_file("pay", [Record.from_pairs(p) for p in before])
        store._capture = False
        with pytest.raises(SnapshotTooOld):
            store.records_at("pay", 0)  # horizon survived the abort
        assert [r.pairs() for r in store.find(Query.single("FILE", "=", "pay"))] == before
