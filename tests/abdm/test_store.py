"""The attribute-based record store: physical operations and accounting."""

import pytest

from repro.abdm import ABStore, Predicate, Query, Record
from repro.errors import ExecutionError


def make_record(file_name, key, **extra):
    pairs = [("FILE", file_name), (file_name, key)]
    pairs.extend(extra.items())
    return Record.from_pairs(pairs)


@pytest.fixture()
def store():
    store = ABStore()
    for i in range(5):
        store.insert(make_record("course", f"course${i}", credits=i % 3, title=f"T{i}"))
    for i in range(3):
        store.insert(make_record("person", f"person${i}", age=20 + i))
    return store


class TestInsert:
    def test_insert_routes_by_file(self, store):
        assert store.count("course") == 5
        assert store.count("person") == 3
        assert store.count() == 8

    def test_insert_without_file_rejected(self):
        with pytest.raises(ExecutionError):
            ABStore().insert(Record.from_pairs([("a", 1)]))

    def test_file_created_on_demand(self):
        store = ABStore()
        assert not store.has_file("x")
        store.file("x")
        assert store.has_file("x")


class TestFind:
    def test_find_by_file(self, store):
        found = store.find(Query.single("FILE", "=", "person"))
        assert len(found) == 3

    def test_find_with_predicate(self, store):
        query = Query.conjunction(
            [Predicate("FILE", "=", "course"), Predicate("credits", "=", 0)]
        )
        found = store.find(query)
        assert {r["course"] for r in found} == {"course$0", "course$3"}

    def test_find_open_file_scans_everything(self, store):
        found = store.find(Query.single("age", ">=", 21))
        assert len(found) == 2

    def test_find_preserves_insertion_order(self, store):
        found = store.find(Query.single("FILE", "=", "course"))
        assert [r["course"] for r in found] == [f"course${i}" for i in range(5)]

    def test_find_unknown_file_is_empty(self, store):
        assert store.find(Query.single("FILE", "=", "ghost")) == []


class TestDelete:
    def test_delete_count(self, store):
        query = Query.conjunction(
            [Predicate("FILE", "=", "course"), Predicate("credits", "=", 1)]
        )
        assert store.delete(query) == 2
        assert store.count("course") == 3

    def test_delete_leaves_others(self, store):
        store.delete(Query.single("FILE", "=", "person"))
        assert store.count("person") == 0
        assert store.count("course") == 5


class TestUpdate:
    def test_update_in_place(self, store):
        query = Query.conjunction(
            [Predicate("FILE", "=", "course"), Predicate("credits", "=", 0)]
        )
        updated = store.update(query, lambda r: r.set("credits", 9))
        assert updated == 2
        assert len(store.find(Query.conjunction(
            [Predicate("FILE", "=", "course"), Predicate("credits", "=", 9)]
        ))) == 2

    def test_update_none_matching(self, store):
        assert store.update(Query.single("FILE", "=", "ghost"), lambda r: None) == 0


class TestAccounting:
    def test_examined_counts_scanned_records(self):
        store = ABStore()
        for i in range(10):
            store.insert(make_record("f", f"f${i}"))
        store.stats.records_examined = 0
        store.find(Query.single("FILE", "=", "f"))
        assert store.stats.records_examined == 10

    def test_pinned_file_prunes_scan(self):
        store = ABStore()
        for i in range(10):
            store.insert(make_record("a", f"a${i}"))
        for i in range(10):
            store.insert(make_record("b", f"b${i}"))
        store.stats.records_examined = 0
        store.find(Query.single("FILE", "=", "a"))
        assert store.stats.records_examined == 10


class TestIntrospection:
    def test_snapshot_shape(self, store):
        snap = store.snapshot()
        assert set(snap) == {"course", "person"}
        assert len(snap["course"]) == 5

    def test_all_records_sorted_by_file(self, store):
        files = [r.file_name for r in store.all_records()]
        assert files == sorted(files)

    def test_clear(self, store):
        store.clear()
        assert store.count() == 0

    def test_drop_file(self, store):
        store.drop_file("course")
        assert store.count() == 3
