"""The ABDM directory: descriptors, clustering, descriptor search."""

import pytest

from repro.abdm import (
    ABStore,
    ClusteredStore,
    Directory,
    DirectoryAttribute,
    Predicate,
    Query,
    Record,
)
from repro.abdm.directory import Descriptor
from repro.abdm.predicate import Conjunction
from repro.errors import SchemaError


def record(key, **extra):
    return Record.from_pairs([("FILE", "f"), ("f", key), *extra.items()])


@pytest.fixture()
def directory():
    d = Directory()
    d.add_ranges("x", 0, 100, 10)
    d.add_values("color", ["red", "green", "blue"], buckets=2)
    return d


@pytest.fixture()
def store(directory):
    s = ClusteredStore(directory)
    for i in range(200):
        s.insert(
            record(
                f"f${i}",
                x=i % 100,
                color=["red", "green", "blue", "mauve"][i % 4],
            )
        )
    return s


class TestDescriptors:
    def test_type_a_covers_range(self):
        d = Descriptor(1, "x", "A", low=0, high=10)
        assert d.covers(0) and d.covers(10) and d.covers(5)
        assert not d.covers(11)
        assert not d.covers("five")

    def test_type_b_covers_value(self):
        d = Descriptor(1, "c", "B", value="red")
        assert d.covers("red")
        assert not d.covers("blue")

    def test_classification_is_total_with_catch_all(self, directory):
        entry = directory.entry("x")
        assert entry.classify(55) != entry.classify(999)  # out of range -> C
        assert entry.classify("not a number") == entry.classify(999)

    def test_classification_without_catch_all_raises(self):
        entry = DirectoryAttribute("x", [Descriptor(1, "x", "A", low=0, high=1)])
        with pytest.raises(SchemaError):
            entry.classify(99)

    def test_ranges_validation(self):
        d = Directory()
        with pytest.raises(SchemaError):
            d.add_ranges("x", 10, 0, 4)

    def test_duplicate_attribute_rejected(self, directory):
        with pytest.raises(SchemaError):
            directory.add_hashed("x", 4)


class TestDescriptorSearch:
    def test_equality_prunes_to_one_descriptor(self, directory):
        entry = directory.entry("x")
        candidates = entry.candidates(Predicate("x", "=", 13))
        assert len(candidates) == 1

    def test_inequality_cannot_prune(self, directory):
        assert directory.entry("x").candidates(Predicate("x", "!=", 13)) is None

    def test_range_predicate_keeps_overlapping(self, directory):
        entry = directory.entry("x")
        candidates = entry.candidates(Predicate("x", ">=", 85))
        # 2 overlapping ranges (80-90, 90-100) plus the catch-all.
        assert len(candidates) == 3

    def test_value_directory_equality(self, directory):
        entry = directory.entry("color")
        red = entry.candidates(Predicate("color", "=", "red"))
        green = entry.candidates(Predicate("color", "=", "green"))
        assert red != green and len(red) == 1

    def test_clause_constraints_intersect(self, directory):
        clause = Conjunction(
            [Predicate("x", "=", 13), Predicate("x", ">=", 10)]
        )
        constraints = directory.descriptor_search(clause)
        x_constraint = constraints[0]
        assert len(x_constraint) == 1


class TestClusteredStore:
    def test_clusters_formed(self, store):
        assert store.cluster_count("f") > 1

    def test_equality_scan_is_pruned(self, store):
        store.stats.records_examined = 0
        query = Query.conjunction([Predicate("FILE", "=", "f"), Predicate("x", "=", 13)])
        found = store.find(query)
        assert {r.get("x") for r in found} == {13}
        assert store.stats.records_examined < 40  # far fewer than 200

    def test_results_equal_plain_store(self, store):
        plain = ABStore()
        for r in store.file("f"):
            plain.insert(r.copy())
        for query in [
            Query.conjunction([Predicate("FILE", "=", "f"), Predicate("x", "<", 20)]),
            Query.conjunction(
                [Predicate("FILE", "=", "f"), Predicate("color", "=", "mauve")]
            ),
            Query.conjunction([Predicate("FILE", "=", "f"), Predicate("x", "!=", 5)]),
            Query(
                [
                    Conjunction([Predicate("FILE", "=", "f"), Predicate("x", "=", 1)]),
                    Conjunction([Predicate("FILE", "=", "f"), Predicate("x", "=", 2)]),
                ]
            ),
        ]:
            expected = sorted(tuple(r.pairs()) for r in plain.find(query))
            got = sorted(tuple(r.pairs()) for r in store.find(query))
            assert got == expected

    def test_unpinned_query_falls_back_to_full_scan(self, store):
        found = store.find(Query.single("x", "=", 13))
        assert {r.get("x") for r in found} == {13}

    def test_update_moves_records_between_clusters(self, store, directory):
        query = Query.conjunction([Predicate("FILE", "=", "f"), Predicate("x", "=", 13)])
        store.update(query, lambda r: r.set("x", 95))
        assert store.find(query) == []
        moved = store.find(
            Query.conjunction([Predicate("FILE", "=", "f"), Predicate("x", "=", 95)])
        )
        assert len(moved) >= 2  # originals at 95 plus the moved ones

    def test_delete_rebuilds_clusters(self, store):
        query = Query.conjunction([Predicate("FILE", "=", "f"), Predicate("x", "<", 50)])
        deleted = store.delete(query)
        assert deleted == 100
        assert store.find(query) == []
        assert store.count("f") == 100

    def test_drop_file_clears_clusters(self, store):
        store.drop_file("f")
        assert store.cluster_count("f") == 0

    def test_clear(self, store):
        store.clear()
        assert store.count() == 0 and store.cluster_count("f") == 0


class TestHashedDirectory:
    def test_hashed_buckets_partition(self):
        d = Directory()
        d.add_hashed("name", 8)
        s = ClusteredStore(d)
        for i in range(100):
            s.insert(record(f"f${i}", name=f"name{i}"))
        s.stats.records_examined = 0
        found = s.find(
            Query.conjunction(
                [Predicate("FILE", "=", "f"), Predicate("name", "=", "name42")]
            )
        )
        assert len(found) == 1
        assert s.stats.records_examined < 40
