"""Equality hash indexes: fewer records examined, identical results."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.abdm import ABStore, ClusteredStore, Directory, Predicate, Query, Record
from repro.abdm.predicate import Conjunction


def record(file_name, key, **extra):
    pairs = [("FILE", file_name), (file_name, key)]
    pairs.extend(extra.items())
    return Record.from_pairs(pairs)


def populate(store, n=60):
    for i in range(n):
        store.insert(record("data", f"d${i}", x=i % 10, label=f"row {i}"))
    return store


@pytest.fixture()
def plain():
    return populate(ABStore())


@pytest.fixture()
def indexed():
    return populate(ABStore(indexed_attributes=["x"]))


def eq_query(attribute, value, file_name="data"):
    return Query.conjunction(
        [Predicate("FILE", "=", file_name), Predicate(attribute, "=", value)]
    )


class TestIndexedFind:
    def test_results_identical_to_scan(self, plain, indexed):
        query = eq_query("x", 3)
        assert [r.pairs() for r in indexed.find(query)] == [
            r.pairs() for r in plain.find(query)
        ]

    def test_examines_only_the_bucket(self, plain, indexed):
        query = eq_query("x", 3)
        plain.find(query)
        indexed.find(query)
        assert plain.stats.records_examined == 60
        assert indexed.stats.records_examined == 6

    def test_missing_value_examines_nothing(self, indexed):
        indexed.find(eq_query("x", 999))
        assert indexed.stats.records_examined == 0

    def test_order_preserved_across_or_clauses(self, plain, indexed):
        query = Query(
            (
                Conjunction([Predicate("FILE", "=", "data"), Predicate("x", "=", 7)]),
                Conjunction([Predicate("FILE", "=", "data"), Predicate("x", "=", 2)]),
            )
        )
        assert [r.pairs() for r in indexed.find(query)] == [
            r.pairs() for r in plain.find(query)
        ]

    def test_range_predicate_served_by_sorted_index(self, indexed):
        query = Query.conjunction(
            [Predicate("FILE", "=", "data"), Predicate("x", "<", 3)]
        )
        found = indexed.find(query)
        assert len(found) == 18
        # PR 5: the sorted index serves the range slice — only the 18
        # candidates are examined, and the hit lands in range_hits.
        assert indexed.stats.records_examined == 18
        assert indexed.stats.range_hits == 1
        assert indexed.stats.fallback_scans == 0

    def test_clause_without_indexed_attribute_falls_back(self, indexed):
        query = Query(
            (
                Conjunction([Predicate("FILE", "=", "data"), Predicate("x", "=", 7)]),
                Conjunction(
                    [Predicate("FILE", "=", "data"), Predicate("label", "=", "row 1")]
                ),
            )
        )
        found = indexed.find(query)
        assert len(found) == 7
        assert indexed.stats.records_examined == 60

    def test_int_and_float_keys_agree(self, indexed):
        assert len(indexed.find(eq_query("x", 3.0))) == 6


class TestIndexedMutations:
    def test_delete_uses_index_and_stays_consistent(self, plain, indexed):
        query = eq_query("x", 4)
        assert indexed.delete(query) == plain.delete(query)
        assert indexed.stats.records_examined == 6
        assert indexed.snapshot() == plain.snapshot()
        # The survivors are still findable through the rebuilt index.
        assert indexed.find(eq_query("x", 4)) == []
        assert len(indexed.find(eq_query("x", 5))) == 6

    def test_update_reindexes_changed_values(self, plain, indexed):
        query = eq_query("x", 1)

        def bump(r):
            r.set("x", 100)

        assert indexed.update(query, bump) == plain.update(query, bump)
        assert indexed.snapshot() == plain.snapshot()
        assert indexed.find(eq_query("x", 1)) == []
        assert len(indexed.find(eq_query("x", 100))) == 6

    def test_drop_file_drops_the_index(self, indexed):
        indexed.drop_file("data")
        assert indexed.find(eq_query("x", 3)) == []
        indexed.insert(record("data", "d$0", x=3))
        assert len(indexed.find(eq_query("x", 3))) == 1

    def test_clear_resets_indexes(self, indexed):
        indexed.clear()
        assert indexed.find(eq_query("x", 3)) == []


class TestAddIndex:
    def test_add_index_builds_from_existing_records(self, plain):
        plain.add_index("x")
        assert plain.indexed_attributes == ("x",)
        found = plain.find(eq_query("x", 3))
        assert len(found) == 6
        assert plain.stats.records_examined == 6

    def test_add_index_is_idempotent(self, indexed):
        indexed.add_index("x")
        assert indexed.indexed_attributes == ("x",)

    def test_null_values_are_indexable(self):
        store = ABStore(indexed_attributes=["x"])
        store.insert(record("data", "d$0", x=None))
        store.insert(record("data", "d$1", x=1))
        found = store.find(eq_query("x", None))
        assert len(found) == 1
        assert found[0].get("data") == "d$0"


class TestClusteredStoreComposition:
    def test_clustered_store_accepts_indexes(self):
        directory = Directory()
        directory.add_ranges("x", 0, 10, 2)
        store = populate(ClusteredStore(directory, indexed_attributes=["label"]))
        # Unpinned query falls through to ABStore.find, which can use the
        # label index.
        query = Query.single("label", "=", "row 7")
        found = store.find(query)
        assert len(found) == 1
        assert store.stats.records_examined == 1
        # Deletes keep clusters and indexes in sync.
        assert store.delete(query) == 1
        assert store.find(Query.single("label", "=", "row 7")) == []
        assert store.count() == 59


# -- property: indexing never changes behaviour -------------------------------

ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.sampled_from(["a", "b"]),
            st.integers(0, 5),
            st.sampled_from(["p", "q", "r"]),
        ),
        st.tuples(st.just("find"), st.sampled_from(["a", "b"]), st.integers(0, 5)),
        st.tuples(st.just("delete"), st.sampled_from(["a", "b"]), st.integers(0, 5)),
        st.tuples(st.just("update"), st.sampled_from(["a", "b"]), st.integers(0, 5)),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ops=ops_strategy)
def test_indexed_store_matches_plain_store(ops):
    plain = ABStore()
    indexed = ABStore(indexed_attributes=["x", "tag"])
    counter = 0
    for op in ops:
        if op[0] == "insert":
            _, file_name, x, tag = op
            counter += 1
            for store in (plain, indexed):
                store.insert(record(file_name, f"k${counter}", x=x, tag=tag))
        else:
            kind, file_name, x = op
            query = eq_query("x", x, file_name)
            if kind == "find":
                assert [r.pairs() for r in indexed.find(query)] == [
                    r.pairs() for r in plain.find(query)
                ]
            elif kind == "delete":
                assert indexed.delete(query) == plain.delete(query)
            else:

                def bump(r):
                    r.set("x", (r.get("x") or 0) + 1)

                assert indexed.update(query, bump) == plain.update(query, bump)
    assert indexed.snapshot() == plain.snapshot()
