"""Sorted range indexes: bisected slices, byte-identical to full scans.

PR 5's core fidelity property: for *every* comparison operator and every
mix of int / float / string / null / NaN values, a store with sorted
attribute indexes returns exactly what a plain scanning store returns —
same records, same order — while examining only the index's candidates.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.abdm import (
    ABStore,
    AttributeIndex,
    Interval,
    Predicate,
    Query,
    Record,
    build_interval,
    plan_conjunction,
)

#: One shared NaN object.  NaN hashes by identity in the index buckets,
#: so both stores must see the very same object (as they would when one
#: parsed request is broadcast to every backend).
NAN = float("nan")

#: The sentinel for "this record does not carry the attribute at all".
MISSING = "__missing__"

OPERATORS = ("<", "<=", ">", ">=", "=", "!=")

values = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False),
    st.sampled_from(["alpha", "beta", "zz"]),
    st.none(),
    st.just(NAN),
    st.just(MISSING),
)


def record(file_name, key, value):
    pairs = [("FILE", file_name), (file_name, key)]
    if value is not MISSING:
        pairs.append(("x", value))
    return Record.from_pairs(pairs)


def twin_stores(rows):
    plain = ABStore()
    indexed = ABStore(indexed_attributes=["x"])
    for index, value in enumerate(rows):
        # Distinct Record objects, same *value* objects (NaN included).
        plain.insert(record("data", f"d${index}", value))
        indexed.insert(record("data", f"d${index}", value))
    return plain, indexed


@settings(max_examples=120, deadline=None)
@given(rows=st.lists(values, max_size=25), operator=st.sampled_from(OPERATORS), probe=values)
def test_indexed_retrieval_identical_to_scan(rows, operator, probe):
    if probe is MISSING:
        probe = None
    plain, indexed = twin_stores(rows)
    query = Query.conjunction(
        [Predicate("FILE", "=", "data"), Predicate("x", operator, probe)]
    )
    # Lists compare element-first by identity, so the shared NaN object
    # on both sides cannot trip the NaN != NaN comparison rule here.
    assert [r.pairs() for r in indexed.find(query)] == [
        r.pairs() for r in plain.find(query)
    ]
    assert indexed.stats.records_examined <= plain.stats.records_examined


@settings(max_examples=60, deadline=None)
@given(
    rows=st.lists(values, max_size=20),
    operator=st.sampled_from(("<", "<=", ">", ">=")),
    probe=values,
)
def test_mutations_through_ranges_stay_consistent(rows, operator, probe):
    if probe is MISSING:
        probe = None
    plain, indexed = twin_stores(rows)
    query = Query.conjunction(
        [Predicate("FILE", "=", "data"), Predicate("x", operator, probe)]
    )
    assert indexed.delete(query) == plain.delete(query)
    everything = Query.single("FILE", "=", "data")
    assert [r.pairs() for r in indexed.find(everything)] == [
        r.pairs() for r in plain.find(everything)
    ]


class TestIntervals:
    def test_bounds_merge_to_the_tightest_window(self):
        interval = build_interval(
            [
                Predicate("x", ">=", 2),
                Predicate("x", "<", 9),
                Predicate("x", ">", 4),
            ]
        )
        assert interval == Interval("num", 4, 9, lo_strict=True, hi_strict=True)
        assert not interval.empty

    def test_contradictory_bounds_are_empty(self):
        interval = build_interval([Predicate("x", ">", 5), Predicate("x", "<", 3)])
        assert interval.empty

    def test_null_or_nan_bound_defeats_the_interval(self):
        assert build_interval([Predicate("x", ">", None)]) is None
        assert build_interval([Predicate("x", ">", NAN)]) is None

    def test_mixed_domains_defeat_the_interval(self):
        assert (
            build_interval([Predicate("x", ">", 1), Predicate("x", "<", "zz")]) is None
        )

    def test_string_intervals_slice_lexicographically(self):
        index = AttributeIndex()
        for seq, word in enumerate(["ant", "bee", "cat", "dog"]):
            index.add(word, seq, None)
        interval = build_interval([Predicate("x", ">=", "bee"), Predicate("x", "<", "dog")])
        assert index.range_keys(interval) == ["bee", "cat"]


class TestPlanner:
    def build_indexes(self, n=40):
        index = AttributeIndex()
        tag = AttributeIndex()
        for seq in range(n):
            index.add(seq % 10, seq, None)
            tag.add("even" if seq % 2 == 0 else "odd", seq, None)
        return {"x": index, "tag": tag}

    def test_hash_beats_wider_range(self):
        indexes = self.build_indexes()
        plan = plan_conjunction(
            [Predicate("x", "=", 3), Predicate("x", ">=", 0)], indexes, 40
        )
        assert plan.primary is not None
        assert plan.primary.kind == "hash"
        assert plan.primary.estimated == 4

    def test_whole_file_range_falls_back_to_scan(self):
        indexes = self.build_indexes()
        plan = plan_conjunction([Predicate("x", ">=", 0)], indexes, 40)
        assert plan.primary is None

    def test_contradiction_plans_empty(self):
        indexes = self.build_indexes()
        plan = plan_conjunction(
            [Predicate("x", ">", 5), Predicate("x", "<", 3)], indexes, 40
        )
        assert plan.primary is not None
        assert plan.primary.kind == "empty"
        assert plan.primary.estimated == 0

    def test_selective_secondary_path_becomes_an_extra(self):
        indexes = self.build_indexes()
        plan = plan_conjunction(
            [Predicate("x", "=", 3), Predicate("tag", "=", "odd")], indexes, 400
        )
        assert plan.primary is not None and plan.primary.attribute == "x"
        assert [extra.attribute for extra in plan.extras] == ["tag"]


class TestNaNAndNullSemantics:
    def test_equality_on_nan_matches_nothing(self):
        _, indexed = twin_stores([NAN, 1, 2.5])
        assert indexed.find(
            Query.conjunction(
                [Predicate("FILE", "=", "data"), Predicate("x", "=", NAN)]
            )
        ) == []

    def test_ordering_never_reaches_null_or_nan(self):
        plain, indexed = twin_stores([None, NAN, -1, 0, 1])
        query = Query.conjunction(
            [Predicate("FILE", "=", "data"), Predicate("x", "<=", 100)]
        )
        found = indexed.find(query)
        assert [r.pairs() for r in found] == [r.pairs() for r in plain.find(query)]
        assert all(
            isinstance(r.get("x"), (int, float)) and not math.isnan(r.get("x"))
            for r in found
        )

    def test_digest_reports_nan_and_null_population(self):
        store = ABStore(indexed_attributes=["x"])
        for value in (NAN, None, 3, "word"):
            store.insert(record("data", f"d${value}", value))
        digest = store.index_digest("data", "x")
        assert digest.entries == 4
        assert digest.nans == 1
        assert digest.nulls == 1
        assert digest.num_min == digest.num_max == 3
        assert digest.str_min == digest.str_max == "word"
