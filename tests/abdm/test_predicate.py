"""Keyword predicates and DNF queries."""

import pytest

from repro.abdm import Conjunction, Predicate, Query, Record


@pytest.fixture()
def record():
    return Record.from_pairs(
        [("FILE", "course"), ("course", "course$1"), ("credits", 4), ("title", "DB")]
    )


class TestPredicate:
    def test_equality_match(self, record):
        assert Predicate("credits", "=", 4).matches(record)

    def test_inequality(self, record):
        assert Predicate("credits", "!=", 3).matches(record)
        assert not Predicate("credits", "!=", 4).matches(record)

    def test_ordering(self, record):
        assert Predicate("credits", ">=", 4).matches(record)
        assert not Predicate("credits", ">", 4).matches(record)

    def test_missing_attribute_never_matches(self, record):
        assert not Predicate("ghost", "=", 4).matches(record)
        assert not Predicate("ghost", "!=", 4).matches(record)

    def test_null_test_matches_null_keyword(self):
        record = Record.from_pairs([("FILE", "f"), ("advisor", None)])
        assert Predicate("advisor", "=", None).matches(record)
        assert not Predicate("advisor", "!=", None).matches(record)

    def test_not_null_test(self):
        record = Record.from_pairs([("FILE", "f"), ("advisor", "person$1")])
        assert Predicate("advisor", "!=", None).matches(record)

    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            Predicate("a", "~", 1)

    def test_render(self):
        assert Predicate("title", "=", "DB").render() == "(title = 'DB')"
        assert Predicate("credits", ">=", 3).render() == "(credits >= 3)"


class TestConjunction:
    def test_all_must_match(self, record):
        clause = Conjunction(
            [Predicate("FILE", "=", "course"), Predicate("credits", "=", 4)]
        )
        assert clause.matches(record)

    def test_one_failure_fails(self, record):
        clause = Conjunction(
            [Predicate("FILE", "=", "course"), Predicate("credits", "=", 99)]
        )
        assert not clause.matches(record)

    def test_empty_conjunction_matches_everything(self, record):
        assert Conjunction([]).matches(record)

    def test_file_names(self):
        clause = Conjunction([Predicate("FILE", "=", "x"), Predicate("a", "=", 1)])
        assert clause.file_names() == {"x"}

    def test_render_single(self):
        assert Conjunction([Predicate("a", "=", 1)]).render() == "(a = 1)"

    def test_render_multi(self):
        clause = Conjunction([Predicate("a", "=", 1), Predicate("b", "<", 2)])
        assert clause.render() == "((a = 1) AND (b < 2))"


class TestQuery:
    def test_disjunction(self, record):
        query = Query(
            [
                Conjunction([Predicate("credits", "=", 99)]),
                Conjunction([Predicate("title", "=", "DB")]),
            ]
        )
        assert query.matches(record)

    def test_no_clause_matches(self, record):
        query = Query([Conjunction([Predicate("credits", "=", 99)])])
        assert not query.matches(record)

    def test_single_helper(self, record):
        assert Query.single("credits", "=", 4).matches(record)

    def test_file_names_all_pinned(self):
        query = Query(
            [
                Conjunction([Predicate("FILE", "=", "a")]),
                Conjunction([Predicate("FILE", "=", "b")]),
            ]
        )
        assert query.file_names() == {"a", "b"}

    def test_file_names_open_clause_clears(self):
        query = Query(
            [
                Conjunction([Predicate("FILE", "=", "a")]),
                Conjunction([Predicate("x", "=", 1)]),
            ]
        )
        assert query.file_names() == set()

    def test_render_dnf(self):
        query = Query(
            [
                Conjunction([Predicate("a", "=", 1), Predicate("b", "=", 2)]),
                Conjunction([Predicate("c", "=", 3)]),
            ]
        )
        assert query.render() == "(((a = 1) AND (b = 2)) OR (c = 3))"

    def test_iteration(self):
        query = Query.conjunction([Predicate("a", "=", 1)])
        assert len(query) == 1
        assert len(list(query)[0]) == 1
