"""Kernel value semantics: comparison, rendering, parsing."""

import pytest

from repro.abdm import values


class TestDomains:
    def test_integer_domain(self):
        assert values.domain_of(3) == "integer"

    def test_float_domain(self):
        assert values.domain_of(3.5) == "float"

    def test_string_domain(self):
        assert values.domain_of("x") == "string"

    def test_null_domain(self):
        assert values.domain_of(None) == "null"

    def test_boolean_rejected(self):
        with pytest.raises(TypeError):
            values.domain_of(True)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            values.domain_of([1])


class TestComparability:
    def test_numbers_mix(self):
        assert values.comparable(1, 2.5)

    def test_strings_compare(self):
        assert values.comparable("a", "b")

    def test_cross_domain_incomparable(self):
        assert not values.comparable(1, "1")

    def test_null_incomparable(self):
        assert not values.comparable(None, 1)
        assert not values.comparable("x", None)


class TestEquality:
    def test_null_equals_null(self):
        assert values.values_equal(None, None)

    def test_null_not_equal_value(self):
        assert not values.values_equal(None, 0)
        assert not values.values_equal("", None)

    def test_int_float_equality(self):
        assert values.values_equal(3, 3.0)

    def test_cross_domain_never_equal(self):
        assert not values.values_equal(1, "1")


class TestCompare:
    @pytest.mark.parametrize(
        "left,op,right,expected",
        [
            (1, "=", 1, True),
            (1, "!=", 2, True),
            (1, "<", 2, True),
            (2, "<=", 2, True),
            (3, ">", 2, True),
            (3, ">=", 4, False),
            ("apple", "<", "banana", True),
            ("b", ">=", "b", True),
        ],
    )
    def test_basic_relations(self, left, op, right, expected):
        assert values.compare(left, right, op) is expected

    def test_null_ordering_is_false(self):
        for op in ("<", "<=", ">", ">="):
            assert not values.compare(None, 1, op)
            assert not values.compare(1, None, op)

    def test_null_equality_operators(self):
        assert values.compare(None, None, "=")
        assert not values.compare(None, None, "!=")
        assert values.compare(1, None, "!=")

    def test_cross_domain_ordering_is_false(self):
        assert not values.compare(1, "x", "<")

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            values.compare(1, 2, "<>")


class TestRenderParse:
    @pytest.mark.parametrize("value", [0, -5, 42, 3.25, "hello", "", None])
    def test_roundtrip(self, value):
        assert values.parse_literal(values.render(value)) == value

    def test_string_quoting(self):
        assert values.render("it's") == "'it''s'"
        assert values.parse_literal("'it''s'") == "it's"

    def test_null_token(self):
        assert values.render(None) == "NULL"
        assert values.parse_literal("NULL") is None

    def test_bad_literal(self):
        with pytest.raises(ValueError):
            values.parse_literal("not a literal at all!")
