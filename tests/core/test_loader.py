"""The functional and network database loaders."""

import pytest

from repro import MLDS
from repro.errors import SchemaError
from repro.university import UNIVERSITY_DAPLEX


@pytest.fixture()
def system():
    mlds = MLDS(backend_count=2)
    mlds.define_functional_database(UNIVERSITY_DAPLEX)
    return mlds


class TestFunctionalLoader:
    def test_base_entity_mints_keys(self, system):
        loader = system.functional_loader("university")
        first = loader.create("person", name="A", age=1)
        second = loader.create("person", name="B", age=2)
        assert first == "person$1" and second == "person$2"

    def test_subtype_requires_dbkey(self, system):
        loader = system.functional_loader("university")
        with pytest.raises(SchemaError):
            loader.create("student", major="cs")

    def test_base_entity_rejects_dbkey(self, system):
        loader = system.functional_loader("university")
        with pytest.raises(SchemaError):
            loader.create("person", dbkey="person$9", name="A")

    def test_unknown_type_rejected(self, system):
        with pytest.raises(SchemaError):
            system.functional_loader("university").create("ghost")

    def test_values_mapping_and_kwargs_merge(self, system):
        loader = system.functional_loader("university")
        key = loader.create("person", values={"name": "A"}, age=3)
        session = system.open_codasyl_session("university")
        session.execute("MOVE 'A' TO name IN person")
        found = session.execute("FIND ANY person USING name IN person")
        assert found.dbkey == key and found.values["age"] == 3

    def test_multivalued_load_creates_duplicate_records(self, system):
        loader = system.functional_loader("university")
        key = loader.create("person", name="E", age=9)
        loader.create("employee", dbkey=key, salary=1.0, phones=[111, 222])
        assert system.kds.controller.record_count() == 3  # 1 person + 2 employee

    def test_loader_and_store_share_key_counters(self, system):
        loader = system.functional_loader("university")
        loader.create("person", name="A", age=1)
        session = system.open_codasyl_session("university")
        session.execute("MOVE 'B' TO name IN person")
        session.execute("MOVE 2 TO age IN person")
        stored = session.execute("STORE person")
        assert stored.dbkey == "person$2"  # no collision with the loader


class TestNetworkLoader:
    NET = """
SCHEMA NAME IS shop;
RECORD NAME IS bin;
    tag TYPE IS CHARACTER 5;
RECORD NAME IS part;
    pname TYPE IS CHARACTER 10;
SET NAME IS holds;
    OWNER IS bin;
    MEMBER IS part;
    INSERTION IS MANUAL;
    RETENTION IS OPTIONAL;
    SET SELECTION IS BY APPLICATION;
"""

    def test_memberships_wired(self):
        mlds = MLDS(backend_count=2)
        mlds.define_network_database(self.NET)
        loader = mlds.network_loader("shop")
        bin_key = loader.create("bin", tag="b1")
        loader.create("part", pname="bolt", memberships={"holds": bin_key})
        session = mlds.open_codasyl_session("shop")
        session.execute("MOVE 'b1' TO tag IN bin")
        session.execute("FIND ANY bin USING tag IN bin")
        part = session.execute("FIND FIRST part WITHIN holds")
        assert part.values["pname"] == "bolt"

    def test_loader_store_share_counters(self):
        mlds = MLDS(backend_count=2)
        mlds.define_network_database(self.NET)
        loader = mlds.network_loader("shop")
        loader.create("bin", tag="b1")
        session = mlds.open_codasyl_session("shop")
        session.execute("MOVE 'b2' TO tag IN bin")
        stored = session.execute("STORE bin")
        assert stored.dbkey == "bin$2"
