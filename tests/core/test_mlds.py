"""The MLDS facade and the LIL's schema-search behaviour."""

import pytest

from repro import MLDS
from repro.errors import SchemaError
from repro.university import UNIVERSITY_DAPLEX

NET_SCHEMA = """
SCHEMA NAME IS tiny;
RECORD NAME IS item;
    label TYPE IS CHARACTER 10;
SET NAME IS system_item;
    OWNER IS SYSTEM;
    MEMBER IS item;
    INSERTION IS AUTOMATIC;
    RETENTION IS FIXED;
    SET SELECTION IS BY APPLICATION;
"""


@pytest.fixture()
def system():
    return MLDS(backend_count=2)


class TestDatabaseDefinition:
    def test_define_functional_from_text(self, system):
        schema = system.define_functional_database(UNIVERSITY_DAPLEX)
        assert schema.name == "university"
        assert system.kds.database("university").model == "functional"

    def test_define_network_from_text(self, system):
        schema = system.define_network_database(NET_SCHEMA)
        assert schema.name == "tiny"
        assert system.kds.database("tiny").model == "network"

    def test_duplicate_names_rejected_across_models(self, system):
        system.define_network_database(NET_SCHEMA)
        with pytest.raises(SchemaError):
            system.define_network_database(NET_SCHEMA)

    def test_database_names(self, system):
        system.define_network_database(NET_SCHEMA)
        system.define_functional_database(UNIVERSITY_DAPLEX)
        assert system.database_names() == ["tiny", "university"]

    def test_schema_lookup_errors(self, system):
        with pytest.raises(SchemaError):
            system.functional_schema("ghost")
        with pytest.raises(SchemaError):
            system.network_schema("ghost")


class TestLILRouting:
    def test_network_database_gets_network_adapter(self, system):
        system.define_network_database(NET_SCHEMA)
        session = system.open_codasyl_session("tiny")
        assert session.source_model == "network"
        assert session.schema.name == "tiny"

    def test_functional_database_gets_transformed_adapter(self, system):
        system.define_functional_database(UNIVERSITY_DAPLEX)
        session = system.open_codasyl_session("university")
        assert session.source_model == "functional"
        assert session.schema.name == "university_net"
        assert session.schema.has_set("person_student")

    def test_network_searched_before_functional(self, system):
        # A network DB and a functional DB: each name routes to its model.
        system.define_network_database(NET_SCHEMA)
        system.define_functional_database(UNIVERSITY_DAPLEX)
        assert system.open_codasyl_session("tiny").source_model == "network"
        assert system.open_codasyl_session("university").source_model == "functional"

    def test_unknown_database_rejected(self, system):
        with pytest.raises(SchemaError):
            system.open_codasyl_session("ghost")

    def test_transformation_cached(self, system):
        system.define_functional_database(UNIVERSITY_DAPLEX)
        first = system.transformation("university")
        assert system.transformation("university") is first

    def test_sessions_are_independent(self, system):
        system.define_functional_database(UNIVERSITY_DAPLEX)
        loader = system.functional_loader("university")
        loader.create("person", name="Solo", age=50)
        a = system.open_codasyl_session("university", user="a")
        b = system.open_codasyl_session("university", user="b")
        a.execute("MOVE 'Solo' TO name IN person")
        a.execute("FIND ANY person USING name IN person")
        assert a.cit.run_unit is not None
        assert b.cit.run_unit is None  # independent currency
        assert b.uwa.get("person", "name") is None  # independent UWA


class TestSharedKernel:
    def test_two_databases_share_one_kernel(self, system):
        system.define_network_database(NET_SCHEMA)
        system.define_functional_database(UNIVERSITY_DAPLEX)
        system.network_loader("tiny").create("item", label="x")
        system.functional_loader("university").create("person", name="Ann", age=1)
        assert system.kds.record_count() == 2

    def test_repr(self, system):
        system.define_network_database(NET_SCHEMA)
        assert "1 network" in repr(system)


class TestDirectoryBackedKernel:
    def test_mlds_with_clustered_store(self):
        from repro.abdm import ClusteredStore, Directory
        from repro.university import UNIVERSITY_DAPLEX

        def factory():
            directory = Directory()
            directory.add_values(
                "major",
                ["computer science", "mathematics", "physics", "engineering"],
            )
            return ClusteredStore(directory)

        system = MLDS(backend_count=2, store_factory=factory)
        system.define_functional_database(UNIVERSITY_DAPLEX)
        loader = system.functional_loader("university")
        p = loader.create("person", name="A", age=1)
        loader.create("student", dbkey=p, major="physics", gpa=3.0)
        session = system.open_codasyl_session("university")
        session.execute("MOVE 'physics' TO major IN student")
        assert session.execute("FIND ANY student USING major IN student").ok
