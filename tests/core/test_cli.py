"""The interactive MLDS shell (line-in / text-out, no terminal needed)."""

import pytest

from repro import MLDS
from repro.cli import MLDSShell
from repro.university import generate_university, load_university


@pytest.fixture()
def shell():
    mlds = MLDS(backend_count=2)
    load_university(mlds, generate_university(persons=20, courses=8, seed=3))
    return MLDSShell(mlds)


class TestCommands:
    def test_help(self, shell):
        assert ".open codasyl" in shell.handle_line(".help")

    def test_databases(self, shell):
        assert shell.handle_line(".databases") == "university"

    def test_databases_empty(self):
        assert "no databases" in MLDSShell(MLDS(backend_count=1)).handle_line(".databases")

    def test_schema_functional_shows_transformed(self, shell):
        output = shell.handle_line(".schema university")
        assert "transformed network view" in output
        assert "SET NAME IS person_student;" in output

    def test_schema_unknown(self, shell):
        assert "no database" in shell.handle_line(".schema ghost")

    def test_quit(self, shell):
        assert shell.handle_line(".quit") == "bye"
        assert shell.done

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.handle_line(".frob")

    def test_blank_and_comment_lines(self, shell):
        assert shell.handle_line("") == ""
        assert shell.handle_line("-- a comment") == ""


class TestSessions:
    def test_prompt_follows_session(self, shell):
        assert shell.prompt == "mlds> "
        shell.handle_line(".open codasyl university")
        assert shell.prompt == "codasyl:university> "
        shell.handle_line(".open daplex university")
        assert shell.prompt == "daplex:university> "
        shell.handle_line(".close")
        assert shell.prompt == "mlds> "

    def test_statement_without_session(self, shell):
        assert "no session open" in shell.handle_line("GET")

    def test_open_usage_errors(self, shell):
        assert "usage" in shell.handle_line(".open codasyl")
        assert "usage" in shell.handle_line(".open cobol university")
        # SQL sessions only open on relational databases.
        assert "error:" in shell.handle_line(".open sql university")

    def test_open_unknown_database_reports_error(self, shell):
        assert "error:" in shell.handle_line(".open codasyl ghost")


class TestCodasylFlow:
    def test_find_and_get(self, shell):
        shell.handle_line(".open codasyl university")
        shell.handle_line("MOVE 'fall' TO semester IN course")
        output = shell.handle_line("FIND ANY course USING semester IN course")
        assert output.startswith("ok")
        output = shell.handle_line("GET")
        assert "title" in output

    def test_error_rendered_not_raised(self, shell):
        shell.handle_line(".open codasyl university")
        assert shell.handle_line("ERASE course").startswith("error:")

    def test_cit_and_uwa(self, shell):
        shell.handle_line(".open codasyl university")
        shell.handle_line("MOVE 'fall' TO semester IN course")
        shell.handle_line("FIND ANY course USING semester IN course")
        cit = shell.handle_line(".cit")
        assert "run-unit" in cit and "course" in cit
        uwa = shell.handle_line(".uwa")
        assert "semester = 'fall'" in uwa

    def test_cit_without_session(self, shell):
        assert "no CODASYL session" in shell.handle_line(".cit")
        shell.handle_line(".open daplex university")
        assert "no CODASYL session" in shell.handle_line(".cit")

    def test_log(self, shell):
        shell.handle_line(".open codasyl university")
        assert "(no requests yet)" in shell.handle_line(".log")
        shell.handle_line("MOVE 'fall' TO semester IN course")
        shell.handle_line("FIND ANY course USING semester IN course")
        assert "RETRIEVE" in shell.handle_line(".log 1")

    def test_log_without_session(self, shell):
        assert "no session" in shell.handle_line(".log")


class TestDaplexFlow:
    def test_query_renders_table(self, shell):
        shell.handle_line(".open daplex university")
        output = shell.handle_line("FOR EACH p IN person PRINT name(p);")
        assert "name(p)" in output

    def test_update_reports_touched(self, shell):
        shell.handle_line(".open daplex university")
        output = shell.handle_line(
            "FOR A NEW p IN person BEGIN LET name(p) = 'Cli User'; END;"
        )
        assert "1 entity(ies) affected" in output

    def test_empty_result(self, shell):
        shell.handle_line(".open daplex university")
        output = shell.handle_line(
            "FOR EACH p IN person SUCH THAT name(p) = 'Nobody At All' PRINT p;"
        )
        assert output == "(no output)"

    def test_parse_error_rendered(self, shell):
        shell.handle_line(".open daplex university")
        assert shell.handle_line("FOR EACH broken").startswith("error:")


class TestDliFlow:
    @pytest.fixture()
    def hier_shell(self):
        mlds = MLDS(backend_count=2)
        mlds.define_hierarchical_database(
            "DATABASE depot;\nSEGMENT bin ROOT (tag CHAR(5));\n"
            "SEGMENT part UNDER bin (pname CHAR(10));"
        )
        return MLDSShell(mlds)

    def test_open_and_prompt(self, hier_shell):
        hier_shell.handle_line(".open dli depot")
        assert hier_shell.prompt == "dli:depot> "

    def test_calls_render_status(self, hier_shell):
        hier_shell.handle_line(".open dli depot")
        hier_shell.handle_line("FLD tag = 'b1'")
        assert "status" in hier_shell.handle_line("ISRT bin")
        output = hier_shell.handle_line("GU bin(tag = 'b1')")
        assert "bin[" in output and "b1" in output

    def test_not_found_status(self, hier_shell):
        hier_shell.handle_line(".open dli depot")
        assert "'GE'" in hier_shell.handle_line("GU bin(tag = 'zz')")

    def test_schema_renders_segments(self, hier_shell):
        output = hier_shell.handle_line(".schema depot")
        assert "SEGMENT part UNDER bin" in output

    def test_sql_over_hierarchical_via_shell(self, hier_shell):
        hier_shell.handle_line(".open dli depot")
        hier_shell.handle_line("FLD tag = 'b1'")
        hier_shell.handle_line("ISRT bin")
        hier_shell.handle_line(".open sql depot")
        assert hier_shell.prompt == "sql:depot> "
        output = hier_shell.handle_line("SELECT tag FROM bin")
        assert "b1" in output


class TestPersistenceCommands:
    def test_save_and_load(self, shell, tmp_path):
        path = tmp_path / "snap.json"
        assert "saved" in shell.handle_line(f".save {path}")
        shell.handle_line(".open codasyl university")
        assert "loaded" in shell.handle_line(f".load {path}")
        # The session was closed and the system replaced.
        assert shell.prompt == "mlds> "
        assert shell.handle_line(".databases") == "university"

    def test_usage_errors(self, shell):
        assert "usage" in shell.handle_line(".save")
        assert "usage" in shell.handle_line(".load")


class TestExecCommand:
    def test_exec_transaction_file(self, shell, tmp_path):
        path = tmp_path / "txn.dml"
        path.write_text(
            "MOVE 'fall' TO semester IN course\n"
            "FIND ANY course USING semester IN course\nGET\n"
        )
        shell.handle_line(".open codasyl university")
        assert "executed 3 statement(s)" in shell.handle_line(f".exec {path}")

    def test_exec_without_session(self, shell, tmp_path):
        path = tmp_path / "txn.dml"
        path.write_text("GET")
        assert "no session" in shell.handle_line(f".exec {path}")

    def test_exec_usage(self, shell):
        assert "usage" in shell.handle_line(".exec")
