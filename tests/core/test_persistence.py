"""Snapshot persistence: save and restore a whole MLDS."""

import json

import pytest

from repro import MLDS
from repro.errors import MLDSError
from repro.persistence import FORMAT_VERSION, load_mlds, save_mlds
from repro.university import generate_university, load_university

REL_DDL = """
DATABASE registrar;
CREATE TABLE marks (sid INT, score FLOAT, PRIMARY KEY (sid));
"""

NET_DDL = """
SCHEMA NAME IS depot;
RECORD NAME IS crate;
    label TYPE IS CHARACTER 8;
"""


@pytest.fixture()
def populated(tmp_path):
    mlds = MLDS(backend_count=3)
    load_university(mlds, generate_university(persons=20, courses=8, seed=9))
    mlds.define_relational_database(REL_DDL)
    sql = mlds.open_sql_session("registrar")
    sql.execute("INSERT INTO marks VALUES (1, 3.5)")
    mlds.define_network_database(NET_DDL)
    mlds.network_loader("depot").create("crate", label="c-1")
    path = tmp_path / "snapshot.json"
    save_mlds(mlds, path)
    return mlds, path


class TestRoundTrip:
    def test_record_counts_preserved(self, populated):
        original, path = populated
        restored = load_mlds(path)
        assert restored.kds.record_count() == original.kds.record_count()

    def test_exact_backend_distribution(self, populated):
        original, path = populated
        restored = load_mlds(path)
        assert restored.kds.controller.distribution() == original.kds.controller.distribution()

    def test_databases_restored(self, populated):
        original, path = populated
        restored = load_mlds(path)
        assert restored.database_names() == original.database_names()

    def test_record_contents_identical(self, populated):
        original, path = populated
        restored = load_mlds(path)
        def dump(mlds):
            return [
                sorted(tuple(r.pairs()) for r in b.store.all_records())
                for b in mlds.kds.controller.backends
            ]
        assert dump(restored) == dump(original)

    def test_sessions_work_after_restore(self, populated):
        _, path = populated
        restored = load_mlds(path)
        session = restored.open_codasyl_session("university")
        assert session.execute("FIND FIRST person WITHIN system_person").ok
        sql = restored.open_sql_session("registrar")
        assert sql.execute("SELECT COUNT(*) FROM marks").rows[0]["COUNT(*)"] == 1
        daplex = restored.open_daplex_session("university")
        assert daplex.execute("FOR EACH p IN person PRINT name(p);").rows

    def test_key_counters_survive(self, populated):
        """STORE after restore must not mint a colliding database key."""
        original, path = populated
        restored = load_mlds(path)
        session = restored.open_codasyl_session("university")
        session.execute("MOVE 'Post Restore' TO name IN person")
        session.execute("MOVE 1 TO age IN person")
        stored = session.execute("STORE person")
        # 20 persons were loaded; the next key is person$21.
        assert stored.dbkey == "person$21"
        sql = restored.open_sql_session("registrar")
        sql.execute("INSERT INTO marks VALUES (2, 2.0)")
        loader = restored.network_loader("depot")
        assert loader.create("crate", label="c-2") == "crate$2"

    def test_timing_model_restored(self, populated):
        original, path = populated
        restored = load_mlds(path)
        assert restored.kds.controller.timing == original.kds.controller.timing

    def test_pruned_retrieve_right_after_restore(self, populated):
        """Regression: load_mlds bypasses Backend.execute, so stale (empty)
        pruning summaries must not make a pruned broadcast skip backends
        that do hold restored records."""
        original, path = populated
        restored = load_mlds(path, pruning=True)
        from repro.abdl.ast import RetrieveRequest
        from repro.abdm.predicate import Query

        request = RetrieveRequest(Query.single("FILE", "=", "person"))
        expected = original.kds.execute(request).result.count
        assert expected > 0
        assert restored.kds.execute(request).result.count == expected

    def test_restore_rebuilds_summaries_not_reuses_them(self, populated):
        """Every backend's summary reflects its restored slice."""
        _, path = populated
        restored = load_mlds(path, pruning=True)
        from repro.abdm.predicate import Query

        query = Query.single("FILE", "=", "person")
        for backend in restored.kds.controller.backends:
            holds = any(
                r.file_name == "person" for r in backend.store.all_records()
            )
            if holds:
                assert backend.summary().may_match(query)

    def test_load_accepts_engine_and_pruning_knobs(self, populated):
        original, path = populated
        restored = load_mlds(path, engine="threads", workers=2, pruning=True)
        try:
            assert restored.kds.record_count() == original.kds.record_count()
            assert restored.kds.controller.pruning
        finally:
            restored.kds.shutdown()

    def test_placement_counters_survive(self, populated):
        """Inserts after a restore land on the same backends as without it."""
        original, path = populated
        restored = load_mlds(path)
        sql_original = original.open_sql_session("registrar")
        sql_restored = restored.open_sql_session("registrar")
        sql_original.execute("INSERT INTO marks VALUES (7, 1.0)")
        sql_restored.execute("INSERT INTO marks VALUES (7, 1.0)")
        assert (
            restored.kds.controller.distribution()
            == original.kds.controller.distribution()
        )


class TestFormatGuards:
    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": FORMAT_VERSION + 1}))
        with pytest.raises(MLDSError):
            load_mlds(path)

    def test_backend_mismatch_rejected(self, populated, tmp_path):
        _, path = populated
        snapshot = json.loads(path.read_text())
        snapshot["backends"].append([])
        snapshot["backend_count"] = len(snapshot["backends"]) - 1
        bad = tmp_path / "mismatch.json"
        bad.write_text(json.dumps(snapshot))
        with pytest.raises(MLDSError):
            load_mlds(bad)

    def test_snapshot_is_json(self, populated):
        _, path = populated
        snapshot = json.loads(path.read_text())
        assert snapshot["format"] == FORMAT_VERSION
        assert set(snapshot) >= {"functional", "network", "relational", "backends"}


class TestHierarchicalPersistence:
    def test_hierarchical_round_trip(self, tmp_path):
        mlds = MLDS(backend_count=2)
        mlds.define_hierarchical_database(
            "DATABASE depot;\nSEGMENT bin ROOT (tag CHAR(5));\n"
            "SEGMENT part UNDER bin (pname CHAR(10));"
        )
        dl1 = mlds.open_dli_session("depot")
        dl1.run("FLD tag = 'b1'")
        dl1.execute("ISRT bin")
        dl1.run("FLD pname = 'bolt'")
        dl1.execute("ISRT bin(tag = 'b1') part")
        path = tmp_path / "hier.json"
        save_mlds(mlds, path)
        restored = load_mlds(path)
        session = restored.open_dli_session("depot")
        assert session.execute("GU bin(tag = 'b1') part").fields["pname"] == "bolt"
        # Key and sequence counters survive: a new insert extends cleanly.
        session.run("FLD pname = 'nut'")
        result = session.execute("ISRT bin(tag = 'b1') part")
        assert result.dbkey == "part$2"
        # Hierarchic order keeps the original first.
        session.execute("GU bin(tag = 'b1')")
        first = session.execute("GNP part")
        assert first.fields["pname"] == "bolt"
